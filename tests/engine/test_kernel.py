"""Unit tests for the event kernel and the batched query driver."""

from __future__ import annotations

import pytest

from repro.engine.driver import BatchOutcome, QueryDriver, RetrieveOp, SearchOp
from repro.engine.kernel import EventKernel, QueryContext, RetrieveContext
from repro.engine.local import local_matches
from repro.network.centralized import CentralizedProtocol
from repro.network.gnutella import GnutellaProtocol
from repro.network.messages import Message, MessageType, query_message
from repro.network.peers import Peer
from repro.network.simulator import NetworkSimulator
from repro.network.stats import NetworkStats
from repro.storage.query import Query
from repro.storage.repository import LocalRepository
from repro.xmlkit.parser import parse


def make_kernel():
    simulator = NetworkSimulator(seed=1)
    peers = {"a": Peer(peer_id="a"), "b": Peer(peer_id="b")}
    stats = NetworkStats()
    return EventKernel(simulator=simulator, peers=peers, stats=stats), simulator, peers, stats


def make_context(**overrides):
    defaults = dict(query=Query("c"), origin_id="a")
    defaults.update(overrides)
    return QueryContext(**defaults)


class TestDeliveryAndAccounting:
    def test_message_delivered_after_link_latency(self):
        kernel, simulator, peers, _ = make_kernel()
        seen = []
        kernel.register(MessageType.QUERY,
                        lambda peer, message, context: seen.append((peer, simulator.now)))
        message = query_message("a", "b", "<q/>")
        kernel.send(message)
        assert not seen
        simulator.run()
        assert len(seen) == 1
        peer, at = seen[0]
        assert peer is peers["b"]
        assert at == pytest.approx(simulator.link_latency("a", "b"))

    def test_copies_charge_stats_and_context_once_delivered_once(self):
        kernel, simulator, _, stats = make_kernel()
        deliveries = []
        kernel.register(MessageType.QUERY_HIT,
                        lambda peer, message, context: deliveries.append(message))
        context = make_context()
        hit = Message(type=MessageType.QUERY_HIT, sender="b", recipient="a", payload_bytes=10)
        kernel.send(hit, context=context, copies=3)
        simulator.run()
        assert stats.messages_by_type["query-hit"] == 3
        assert context.messages_sent == 3
        assert context.bytes_sent == 3 * hit.size_bytes
        assert len(deliveries) == 1

    def test_delivery_to_offline_peer_is_dropped_but_completes(self):
        kernel, simulator, peers, _ = make_kernel()
        seen = []
        kernel.register(MessageType.QUERY,
                        lambda peer, message, context: seen.append(message))
        peers["b"].online = False
        context = make_context()
        kernel.send(query_message("a", "b", "<q/>"), context=context)
        kernel.run_until_complete([context])
        assert not seen
        assert context.done

    def test_virtual_node_is_always_reachable(self):
        kernel, simulator, _, _ = make_kernel()
        seen = []
        kernel.add_virtual_node("server")
        kernel.register(MessageType.QUERY,
                        lambda peer, message, context: seen.append(peer))
        kernel.send(query_message("a", "server", "<q/>"))
        simulator.run()
        assert seen == [None]

    def test_latency_override_controls_delivery_time(self):
        kernel, simulator, _, _ = make_kernel()
        times = []
        kernel.register(MessageType.QUERY,
                        lambda peer, message, context: times.append(simulator.now))
        kernel.send(query_message("a", "b", "<q/>"), latency_ms=123.0)
        simulator.run()
        assert times == [pytest.approx(123.0)]


class TestCompletion:
    def test_finish_if_idle_completes_messageless_query(self):
        kernel, simulator, _, _ = make_kernel()
        context = make_context()
        kernel.finish_if_idle(context)
        assert context.done
        assert context.latency_ms == 0.0

    def test_cascade_completes_only_when_quiescent(self):
        kernel, simulator, _, _ = make_kernel()
        context = make_context()

        def forward(peer, message, context_):
            if message.ttl > 1:
                copy = query_message(message.recipient, "a" if message.recipient == "b" else "b",
                                     "<q/>", ttl=message.ttl - 1)
                kernel.send(copy, context=context_)

        kernel.register(MessageType.QUERY, forward)
        kernel.send(query_message("a", "b", "<q/>", ttl=3), context=context)
        kernel.run_until_complete([context])
        assert context.done
        # a->b, b->a, a->b: three in-flight messages total.
        assert context.messages_sent == 3
        assert context.latency_ms == pytest.approx(3 * kernel.simulator.link_latency("a", "b"))

    def test_run_until_complete_leaves_unrelated_events_queued(self):
        kernel, simulator, _, _ = make_kernel()
        fired = []
        simulator.schedule(10_000.0, lambda: fired.append("late"))
        context = make_context()
        kernel.register(MessageType.QUERY, lambda peer, message, context_: None)
        kernel.send(query_message("a", "b", "<q/>"), context=context)
        kernel.run_until_complete([context])
        assert context.done
        assert not fired
        assert simulator.pending_events() == 1

    def test_step_returns_false_on_empty_queue(self):
        simulator = NetworkSimulator(seed=0)
        assert simulator.step() is False
        simulator.schedule(1.0, lambda: None)
        assert simulator.step() is True
        assert simulator.step() is False

    def test_starved_context_completed_at_drain_time(self):
        """A context whose delivery was lost is completed at the time
        the queue drained, not left with a bogus zero completion."""
        kernel, simulator, _, _ = make_kernel()
        context = make_context()
        context.pending += 1  # an in-flight message whose event was lost
        simulator.schedule(40.0, lambda: None)
        kernel.run_until_complete([context])
        assert context.done
        assert context.starved
        assert context.completed_at == simulator.now == 40.0

    def test_quiesced_context_is_not_starved(self):
        kernel, simulator, _, _ = make_kernel()
        context = make_context()
        kernel.register(MessageType.QUERY, lambda peer, message, context_: None)
        kernel.send(query_message("a", "b", "<q/>"), context=context)
        kernel.run_until_complete([context])
        assert context.done and not context.starved


class TestLocalMatches:
    def make_repository(self):
        repository = LocalRepository(owner="a")
        for name in ("Observer", "Visitor"):
            document = parse(f"<pattern><name>{name}</name></pattern>").root
            repository.publish("patterns", document, {"name": [name]}, title=name)
        return repository

    def test_constrained_query_uses_index_intersection(self):
        repository = self.make_repository()
        matched = local_matches(repository, Query.keyword("patterns", "observer"))
        assert [stored.title for stored in matched] == ["Observer"]

    def test_empty_query_browses_community(self):
        repository = self.make_repository()
        assert len(local_matches(repository, Query("patterns"))) == 2
        assert local_matches(repository, Query("patterns"), limit=1)

    def test_rebuilt_index_answers_identically(self):
        repository = self.make_repository()
        before = [stored.resource_id
                  for stored in local_matches(repository, Query.keyword("patterns", "visitor"))]
        repository.rebuild_index()
        after = [stored.resource_id
                 for stored in local_matches(repository, Query.keyword("patterns", "visitor"))]
        assert before == after and before


class TestQueryDriver:
    def build_network(self):
        network = GnutellaProtocol(seed=9, default_ttl=8, degree=3)
        for index in range(12):
            network.create_peer(f"peer-{index:02d}")
        network.build_overlay()
        document = parse("<pattern><name>Observer</name></pattern>").root
        peer = network.peer("peer-05")
        result = peer.repository.publish("patterns", document, {"name": ["Observer"]},
                                         title="Observer")
        network.publish("peer-05", "patterns", result.resource_id, {"name": ["Observer"]})
        return network

    def test_batch_keeps_queries_in_flight_together(self):
        network = self.build_network()
        driver = QueryDriver(network)
        requests = [(f"peer-{index:02d}", Query.keyword("patterns", "observer"))
                    for index in range(8)]
        outcome = driver.run_batch(requests, interarrival_ms=5.0)
        assert len(outcome.responses) == 8
        assert outcome.failed == 0
        assert all(response.result_count >= 1 for response in outcome.responses)
        assert len(network.stats.queries) == 8

    def test_offline_origin_fails_softly(self):
        network = self.build_network()
        network.set_online("peer-03", False)
        driver = QueryDriver(network)
        requests = [("peer-02", Query.keyword("patterns", "observer")),
                    ("peer-03", Query.keyword("patterns", "observer"))]
        outcome = driver.run_batch(requests)
        assert outcome.failed == 1
        assert outcome.responses[1].result_count == 0
        assert outcome.responses[0].result_count >= 1

    def test_negative_interarrival_rejected(self):
        network = self.build_network()
        with pytest.raises(ValueError):
            QueryDriver(network).run_batch([], interarrival_ms=-1.0)

    def test_mixed_batch_runs_downloads_alongside_searches(self):
        network = self.build_network()
        resource_id = network.peer("peer-05").repository.documents.objects_in("patterns")[0].resource_id
        ops = [
            SearchOp("peer-01", Query.keyword("patterns", "observer")),
            RetrieveOp(requester_id="peer-02", resource_id=resource_id,
                       provider_id="peer-05"),
            SearchOp("peer-03", Query.keyword("patterns", "observer")),
        ]
        outcome = QueryDriver(network).run_mixed(ops, interarrival_ms=5.0)
        assert len(outcome.responses) == 2
        assert len(outcome.retrieves) == 1
        assert outcome.retrieves[0] is not None
        assert outcome.retrieves[0].transfer_bytes > 0
        assert outcome.retrieve_failures == 0
        assert network.peer("peer-02").repository.documents.contains(resource_id)
        assert network.stats.downloads == 1

    def test_retrieve_op_resolves_provider_from_replica_registry(self):
        network = self.build_network()
        resource_id = network.peer("peer-05").repository.documents.objects_in("patterns")[0].resource_id
        ops = [RetrieveOp(requester_id="peer-02", resource_id=resource_id)]
        outcome = QueryDriver(network).run_mixed(ops)
        assert outcome.retrieves[0] is not None
        assert outcome.retrieves[0].provider_id == "peer-05"
        # The download left a replica behind, with provenance recorded.
        assert network.replicas.provenance(resource_id, "peer-02") == "replica"
        assert network.replicas.provenance(resource_id, "peer-05") == "original"
        assert network.replication_degree(resource_id) == 2

    def test_retrieve_of_unknown_resource_fails_softly_in_batch(self):
        network = self.build_network()
        ops = [RetrieveOp(requester_id="peer-02", resource_id="no-such-object")]
        outcome = QueryDriver(network).run_mixed(ops)
        assert outcome.retrieves == [None]
        assert outcome.retrieve_failures == 1

    def test_offline_requester_download_fails_softly(self):
        network = self.build_network()
        resource_id = network.peer("peer-05").repository.documents.objects_in("patterns")[0].resource_id
        network.set_online("peer-02", False)
        ops = [RetrieveOp(requester_id="peer-02", resource_id=resource_id)]
        outcome = QueryDriver(network).run_mixed(ops)
        assert outcome.retrieves == [None]
        assert outcome.retrieve_failures == 1

    def test_starved_search_is_counted_on_outcome(self):
        """A search whose messages are lost (queue drained mid-flight)
        completes at the drain time and surfaces in ``starved``."""
        network = self.build_network()

        class LossyNetwork:
            """Wrapper whose start_search leaks one pending message."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def start_search(self, origin_id, query, **kwargs):
                context = self._inner.start_search(origin_id, query, **kwargs)
                context.pending += 1  # a delivery that will never happen
                return context

        driver = QueryDriver(LossyNetwork(network))
        outcome = driver.run_batch([("peer-01", Query.keyword("patterns", "observer"))])
        assert outcome.starved == 1
        assert len(outcome.responses) == 1
        # The latency reflects the drain time, not a clamped zero.
        assert outcome.responses[0].latency_ms > 0

    def test_batch_outcome_merge_accumulates(self):
        first = BatchOutcome(responses=[1], retrieves=[None], failed=1,
                             retrieve_failures=1, starved=2)
        second = BatchOutcome(responses=[2, 3], retrieves=[], failed=0,
                              retrieve_failures=2, starved=1)
        merged = first.merge(second)
        assert merged is first
        assert merged.responses == [1, 2, 3]
        assert merged.failed == 1 and merged.retrieve_failures == 3 and merged.starved == 3

    def test_centralized_batch_costs_two_messages_each(self):
        network = CentralizedProtocol(seed=2)
        for index in range(6):
            network.create_peer(f"peer-{index:02d}")
        document = parse("<pattern><name>Observer</name></pattern>").root
        peer = network.peer("peer-00")
        stored = peer.repository.publish("patterns", document, {"name": ["Observer"]},
                                         title="Observer")
        network.publish("peer-00", "patterns", stored.resource_id, {"name": ["Observer"]})
        network.stats.reset()
        driver = QueryDriver(network)
        requests = [(f"peer-{index:02d}", Query.keyword("patterns", "observer"))
                    for index in range(1, 5)]
        outcome = driver.run_batch(requests, interarrival_ms=1.0)
        assert all(response.messages_sent == 2 for response in outcome.responses)
        assert network.stats.total_messages == 8


class TestRetrieveOnKernel:
    """The download path is an event cascade on the shared clock."""

    def build_network(self, *, attachments=()):
        network = GnutellaProtocol(seed=9, default_ttl=8, degree=3)
        for index in range(8):
            network.create_peer(f"peer-{index:02d}")
        network.build_overlay()
        document = parse("<pattern><name>Observer</name></pattern>").root
        metadata = {"name": ["Observer"]}
        if attachments:
            metadata["__attachments__"] = list(attachments)
        peer = network.peer("peer-05")
        result = peer.repository.publish("patterns", document, metadata,
                                         title="Observer",
                                         attachment_uris=list(attachments))
        network.publish("peer-05", "patterns", result.resource_id, metadata)
        return network, result.resource_id

    def test_start_retrieve_returns_inflight_context(self):
        network, resource_id = self.build_network()
        context = network.start_retrieve("peer-01", "peer-05", resource_id)
        assert isinstance(context, RetrieveContext)
        assert not context.done
        network.kernel.run_until_complete([context])
        assert context.done and context.succeeded
        result = network.finish_retrieve(context)
        assert result.transfer_bytes > 0
        assert result.latency_ms > 0

    def test_retrieve_does_not_mutate_clock_outside_events(self):
        """The clock after a retrieve equals the arrival time of its
        last transfer event — there is no accounting-style jump."""
        network, resource_id = self.build_network()
        context = network.start_retrieve("peer-01", "peer-05", resource_id)
        network.kernel.run_until_complete([context])
        assert network.simulator.now == context.completed_at

    def test_attachments_transfer_as_separate_events(self):
        uris = ("file://observer/diagram.png", "file://observer/sample.mp3")
        network, resource_id = self.build_network(attachments=uris)
        result = network.retrieve("peer-01", "peer-05", resource_id)
        assert result.attachments_transferred == 2
        store = network.peer("peer-01").repository.attachments
        assert all(store.has(uri) for uri in uris)
        # Request + response + one transfer per attachment.
        assert network.stats.messages_by_type["download-request"] == 1
        assert network.stats.messages_by_type["download-response"] == 3

    def test_requester_churning_mid_transfer_drops_replica(self):
        """If the requester goes offline before the response arrives,
        nothing replicates and the sync wrapper reports the failure."""
        network, resource_id = self.build_network()
        context = network.start_retrieve("peer-01", "peer-05", resource_id)
        network.simulator.schedule(0.5, lambda: network.set_online("peer-01", False))
        network.kernel.run_until_complete([context])
        assert context.done and not context.succeeded
        with pytest.raises(Exception):
            network.finish_retrieve(context)
        assert not network.peer("peer-01").repository.documents.contains(resource_id)
        assert network.stats.downloads == 0

    def test_provider_churning_before_request_arrival_fails(self):
        network, resource_id = self.build_network()
        context = network.start_retrieve("peer-01", "peer-05", resource_id)
        network.simulator.schedule(0.5, lambda: network.set_online("peer-05", False))
        network.kernel.run_until_complete([context])
        assert context.done and context.stored is None


class TestTimerAffinity:
    """Recurring timers carry an optional shard-affinity hint."""

    def test_every_without_affinity_behaves_as_before(self):
        kernel, simulator, _, _ = make_kernel()
        fired = []
        kernel.every(10.0, lambda: fired.append(simulator.now))
        simulator.run(until_ms=35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_every_with_affinity_fires_identically_on_single_queue(self):
        # The hint routes execution under a sharded simulator; on the
        # single-queue simulator it must change nothing observable.
        kernel, simulator, _, _ = make_kernel()
        fired = []
        timer = kernel.every(10.0, lambda: fired.append(simulator.now), affinity="a")
        assert timer.affinity == "a"
        simulator.run(until_ms=35.0)
        assert fired == [10.0, 20.0, 30.0]
        timer.cancel()
        simulator.run(until_ms=60.0)
        assert len(fired) == 3

    def test_affinity_timer_first_delay_override(self):
        kernel, simulator, _, _ = make_kernel()
        fired = []
        kernel.every(10.0, lambda: fired.append(simulator.now),
                     first_delay_ms=3.0, affinity="b")
        simulator.run(until_ms=25.0)
        assert fired == [3.0, 13.0, 23.0]
