"""Unit tests for the sharded simulator, its barrier and the partitioner."""

from __future__ import annotations

import pytest

from repro.engine.kernel import EventKernel, ExchangeContext
from repro.engine.partition import (
    cross_shard_edges,
    hash_assignment,
    shard_of,
    shard_sizes,
    topology_assignment,
)
from repro.engine.sharded import ShardedSimulator
from repro.network.messages import Message, MessageType
from repro.network.peers import Peer
from repro.network.simulator import (LatencyModel, NetworkSimulator,
                                     SimulationTruncated)
from repro.network.stats import NetworkStats
from repro.network.topology import Topology, build_topology


def make_sharded_kernel(*, shards=2, base_ms=20.0, jitter_ms=10.0, seed=1,
                        peer_ids=("a", "b", "c", "d")):
    """Kernel on a sharded simulator with peers split across shards."""
    assignment = {peer_id: index % shards for index, peer_id in enumerate(peer_ids)}
    simulator = ShardedSimulator(
        latency=LatencyModel(base_ms=base_ms, jitter_ms=jitter_ms, seed=seed),
        seed=seed, shards=shards, assignment=assignment)
    peers = {peer_id: Peer(peer_id=peer_id) for peer_id in peer_ids}
    kernel = EventKernel(simulator=simulator, peers=peers, stats=NetworkStats())
    return kernel, simulator, peers


def ping(sender, recipient):
    return Message(type=MessageType.PING, sender=sender, recipient=recipient)


class TestPartition:
    def test_hash_assignment_is_stable_and_in_range(self):
        ids = [f"peer-{index:04d}" for index in range(100)]
        assignment = hash_assignment(ids, 4)
        assert assignment == hash_assignment(ids, 4)
        assert set(assignment.values()) <= {0, 1, 2, 3}
        assert all(shard_of(peer_id, 4) == shard for peer_id, shard in assignment.items())

    def test_single_shard_maps_everything_to_zero(self):
        assert shard_of("anything", 1) == 0

    def test_topology_assignment_is_balanced_and_deterministic(self):
        ids = [f"peer-{index:04d}" for index in range(40)]
        topology = build_topology(ids, kind="power-law", degree=4, seed=3)
        assignment = topology_assignment(topology, 4)
        assert assignment == topology_assignment(topology, 4)
        sizes = shard_sizes(assignment, 4)
        assert sum(sizes) == 40
        assert max(sizes) - min(sizes) <= 1

    def test_topology_assignment_cuts_fewer_edges_than_hashing(self):
        # Locality is the point of the BFS growth: on a ring the
        # partition should cut only the few edges between segments.
        ids = [f"peer-{index:04d}" for index in range(64)]
        topology = build_topology(ids, kind="ring", seed=0)
        bfs_cut = cross_shard_edges(topology, topology_assignment(topology, 4))
        hash_cut = cross_shard_edges(topology, hash_assignment(ids, 4))
        assert bfs_cut <= 8 < hash_cut

    def test_disconnected_leftovers_go_to_lightest_shard(self):
        topology = Topology({"a": {"b"}, "b": {"a"}, "x": set(), "y": set()})
        assignment = topology_assignment(topology, 2)
        assert sorted(shard_sizes(assignment, 2)) == [2, 2]

    def test_edges_iterates_each_edge_once_sorted(self):
        topology = Topology()
        topology.add_edge("b", "a")
        topology.add_edge("b", "c")
        assert list(topology.edges()) == [("a", "b"), ("b", "c")]


class TestShardedRouting:
    def test_message_events_run_on_recipient_shard(self):
        kernel, simulator, _ = make_sharded_kernel()
        seen = []
        kernel.register(MessageType.PING, lambda peer, msg, ctx: seen.append(msg.recipient))
        kernel.send(ping("a", "c"))  # both shard 0
        kernel.send(ping("a", "b"))  # cross 0 -> 1
        simulator.run()
        assert sorted(seen) == ["b", "c"]
        assert simulator.events_per_shard[0] >= 1
        assert simulator.events_per_shard[1] >= 1

    def test_cross_shard_sends_from_handlers_park_in_outbox(self):
        kernel, simulator, _ = make_sharded_kernel()

        def relay(peer, message, context):
            if message.recipient == "a":
                kernel.send(ping("a", "b"))  # shard 0 -> shard 1, mid-event

        kernel.register(MessageType.PING, relay)
        kernel.send(ping("b", "a"))
        simulator.run()
        assert simulator.cross_shard_messages >= 1
        assert simulator.windows >= 2
        assert simulator.pending_events() == 0

    def test_control_events_stay_on_control_queue(self):
        kernel, simulator, _ = make_sharded_kernel()
        fired = []
        simulator.schedule(5.0, fired.append, "control")
        simulator.run()
        assert fired == ["control"]
        assert simulator.control_events == 1
        assert simulator.events_per_shard == [0, 0]

    def test_post_keyed_routes_to_key_shard(self):
        kernel, simulator, _ = make_sharded_kernel()
        fired = []
        simulator.post_keyed("b", 5.0, fired.append, "on-b-shard")
        simulator.run()
        assert fired == ["on-b-shard"]
        assert simulator.events_per_shard[simulator.shard_of_node("b")] == 1

    def test_single_queue_simulator_ignores_affinity_hint(self):
        simulator = NetworkSimulator(seed=1)
        fired = []
        simulator.post_keyed("anything", 5.0, fired.append, "x")
        simulator.run()
        assert fired == ["x"]

    def test_assign_pins_new_node_and_rejects_bad_shard(self):
        _, simulator, _ = make_sharded_kernel()
        simulator.assign("late-joiner", 1)
        assert simulator.shard_of_node("late-joiner") == 1
        with pytest.raises(ValueError):
            simulator.assign("x", 7)


class TestConservativeBarrier:
    def test_execution_order_matches_single_queue_exactly(self):
        """The determinism argument, pinned at the event level: the
        windowed merge pops the same (time, sequence) order the
        single-queue simulator would, cascades included."""

        def cascade(make_kernel):
            kernel, simulator, _ = make_kernel()
            trace = []

            def handler(peer, message, context):
                trace.append((round(simulator.now, 9), message.sender,
                              message.recipient))
                if message.hops < 3:
                    target = {"a": "b", "b": "c", "c": "d", "d": "a"}[message.recipient]
                    forwarded = message.forwarded(message.recipient, target)
                    forwarded.type = MessageType.PING
                    kernel.send(forwarded)

            kernel.register(MessageType.PING, handler)
            for origin, target in (("a", "b"), ("c", "d"), ("b", "a")):
                kernel.send(ping(origin, target))
            simulator.run()
            return trace

        def sharded():
            return make_sharded_kernel(shards=2)

        def plain():
            simulator = NetworkSimulator(
                latency=LatencyModel(base_ms=20.0, jitter_ms=10.0, seed=1), seed=1)
            peers = {peer_id: Peer(peer_id=peer_id) for peer_id in "abcd"}
            return EventKernel(simulator=simulator, peers=peers,
                               stats=NetworkStats()), simulator, peers

        assert cascade(sharded) == cascade(plain)

    def test_recurring_timer_fires_exactly_at_window_boundaries(self):
        # Lookahead is 20ms, so windows close at multiples of the base
        # latency; a timer whose interval equals the lookahead fires
        # exactly on every boundary and must neither be skipped nor run
        # twice.
        kernel, simulator, _ = make_sharded_kernel(base_ms=20.0, jitter_ms=0.0)
        fired = []
        timer = kernel.every(20.0, lambda: fired.append(simulator.now), affinity="b")
        simulator.run(until_ms=100.0)
        assert fired == [20.0, 40.0, 60.0, 80.0, 100.0]
        timer.cancel()
        simulator.run(until_ms=200.0)
        assert len(fired) == 5

    def test_schedule_at_clamps_to_now_on_sharded_clock(self):
        _, simulator, _ = make_sharded_kernel()
        simulator.advance(50.0)
        fired = []
        handle = simulator.schedule_at(10.0, fired.append, "past")
        assert handle.time == 50.0  # clamped to now, not scheduled into the past
        simulator.run()
        assert fired == ["past"]

    def test_lookahead_violation_is_detected_not_silent(self):
        kernel, simulator, _ = make_sharded_kernel(base_ms=20.0, jitter_ms=0.0)

        def rogue(peer, message, context):
            if message.recipient == "a":
                # A protocol bug: cross-shard reply cheaper than one link.
                kernel.send(ping("a", "b"), latency_ms=1.0)

        kernel.register(MessageType.PING, rogue)
        kernel.send(ping("b", "a"))
        with pytest.raises(RuntimeError, match="lookahead violated"):
            simulator.run()

    def test_degenerate_latency_model_falls_back_to_single_queue(self):
        kernel, simulator, _ = make_sharded_kernel(base_ms=0.0, jitter_ms=5.0)
        assert simulator.lookahead_ms == 0.0
        seen = []
        kernel.register(MessageType.PING, lambda peer, msg, ctx: seen.append(msg.recipient))
        kernel.send(ping("a", "b"))
        simulator.run()
        assert seen == ["b"]
        assert simulator.windows == 0  # no windowed execution happened

    def test_run_until_ms_advances_clock_like_single_queue(self):
        _, sharded_sim, _ = make_sharded_kernel()
        plain_sim = NetworkSimulator(seed=1)
        for simulator in (sharded_sim, plain_sim):
            simulator.run(until_ms=123.0)
            assert simulator.now == 123.0


class TestCrossShardInFlight:
    def test_departed_destination_drops_in_flight_cross_shard_message(self):
        # The delivery crosses a barrier while its destination departs:
        # the message must be dropped on arrival (no handler call) and
        # still decrement the exchange's pending count to completion.
        kernel, simulator, peers = make_sharded_kernel()
        handled = []
        kernel.register(MessageType.PING, lambda peer, msg, ctx: handled.append(msg))
        context = ExchangeContext()
        kernel.send(ping("a", "b"), context=context)     # cross-shard, in flight
        def depart():
            peers["b"].online = False

        simulator.schedule(1.0, depart)                  # departs before delivery
        kernel.run_until_complete([context])
        assert handled == []
        assert context.done and context.pending == 0 and not context.starved

    def test_cancelled_entry_parked_in_outbox_never_runs(self):
        kernel, simulator, _ = make_sharded_kernel()
        fired = []
        handles = []

        def relay(peer, message, context):
            if message.recipient == "a":
                # Cross-shard schedule from inside an event: parks in the
                # outbox until the barrier.
                handles.append(simulator.schedule(
                    25.0, fired.append, ping("a", "b"), None))

        kernel.register(MessageType.PING, relay)
        kernel.send(ping("b", "a"))
        # Run just the first delivery, then cancel the parked entry.
        simulator.step()
        assert handles and simulator.pending_events() == 1
        handles[0].cancel()
        assert simulator.pending_events() == 0
        simulator.run()
        assert fired == []


class TestTruncationIsLoud:
    def test_max_events_cap_with_leftover_work_raises(self):
        _, simulator, _ = make_sharded_kernel()
        for tick in range(10):
            simulator.schedule(float(tick + 1), lambda: None)
        with pytest.raises(SimulationTruncated) as excinfo:
            simulator.run(max_events=5)
        assert excinfo.value.processed == 5

    def test_max_events_cap_without_leftover_work_returns_normally(self):
        _, simulator, _ = make_sharded_kernel()
        for tick in range(5):
            simulator.schedule(float(tick + 1), lambda: None)
        assert simulator.run(max_events=5) == 5

    def test_max_events_cap_ignores_events_beyond_horizon(self):
        _, simulator, _ = make_sharded_kernel()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(1_000.0, lambda: None)
        assert simulator.run(until_ms=10.0, max_events=1) == 1
        assert simulator.now == 10.0
