"""CLI contract: exit codes, output formats, baseline workflow."""

from pathlib import Path

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
RED = str(FIXTURES / "network" / "det001_red.py")
GREEN = str(FIXTURES / "network" / "det001_green.py")

RED_SOURCE = "def f():\n    s = {1, 2}\n    return [v for v in s]\n"


class TestExitCodes:
    def test_clean_tree_exits_zero(self):
        assert main([GREEN, "--no-baseline"]) == 0

    def test_findings_exit_one(self):
        assert main([RED, "--no-baseline"]) == 1

    def test_no_paths_is_a_usage_error(self, capsys):
        assert main([]) == 2
        assert "no paths given" in capsys.readouterr().err

    def test_list_rules_prints_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "KERN001"):
            assert rule_id in out


class TestOutputFormats:
    def test_text_format_is_path_line_col_rule(self, capsys):
        main([RED, "--no-baseline"])
        out = capsys.readouterr().out
        assert "det001_red.py:" in out
        assert " DET001 " in out

    def test_github_format_emits_error_annotations(self, capsys):
        """CI consumes ``::error file=...,line=...`` workflow commands."""
        main([RED, "--no-baseline", "--format", "github"])
        out = capsys.readouterr().out
        first = out.splitlines()[0]
        assert first.startswith("::error file=")
        assert ",line=" in first and ",col=" in first
        assert "title=DET001" in first


class TestBaselineWorkflow:
    def _write_red_module(self, tmp_path):
        package = tmp_path / "network"
        package.mkdir()
        bad = package / "bad.py"
        bad.write_text(RED_SOURCE, encoding="utf-8")
        return bad

    def test_write_then_pass_then_regress(self, tmp_path, monkeypatch, capsys):
        bad = self._write_red_module(tmp_path)
        monkeypatch.chdir(tmp_path)

        assert main([str(bad)]) == 1
        assert main([str(bad), "--write-baseline"]) == 0
        capsys.readouterr()

        # The baselined site no longer fails the gate...
        assert main([str(bad)]) == 0
        # ...but a brand-new finding still does.
        bad.write_text(RED_SOURCE + "\ndef g():\n    t = {3}\n    return list(t)\n",
                       encoding="utf-8")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "return list(t)" not in out  # message cites the rule, not source
        assert "DET001" in out

    def test_reasonless_baseline_is_rejected(self, tmp_path, monkeypatch, capsys):
        bad = self._write_red_module(tmp_path)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "detlint-baseline.txt"
        main([str(bad), "--write-baseline"])
        text = baseline.read_text(encoding="utf-8")
        baseline.write_text(text.replace("TODO: justify", ""), encoding="utf-8")
        assert main([str(bad)]) == 2
        assert "reason" in capsys.readouterr().err

    def test_stale_entries_warn_but_do_not_fail(self, tmp_path, monkeypatch, capsys):
        bad = self._write_red_module(tmp_path)
        monkeypatch.chdir(tmp_path)
        main([str(bad), "--write-baseline"])
        bad.write_text("def f():\n    return 1\n", encoding="utf-8")
        assert main([str(bad)]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_no_baseline_flag_ignores_the_file(self, tmp_path, monkeypatch):
        bad = self._write_red_module(tmp_path)
        monkeypatch.chdir(tmp_path)
        main([str(bad), "--write-baseline"])
        assert main([str(bad)]) == 0
        assert main([str(bad), "--no-baseline"]) == 1

    def test_pyproject_configures_the_baseline_path(self, tmp_path, monkeypatch):
        bad = self._write_red_module(tmp_path)
        monkeypatch.chdir(tmp_path)
        custom = tmp_path / "accepted.txt"
        main([str(bad), "--baseline", str(custom), "--write-baseline"])
        (tmp_path / "pyproject.toml").write_text(
            f'[tool.detlint]\nbaseline = "{custom.name}"\n', encoding="utf-8"
        )
        assert main([str(bad)]) == 0
