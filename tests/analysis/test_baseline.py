"""Baseline semantics: reasoned entries, multiset matching, staleness."""

from collections import Counter

import pytest

from repro.analysis.baseline import (
    BaselineError,
    format_baseline,
    load_baseline,
    match_baseline,
)
from repro.analysis.detlint import Finding


def make_finding(path="src/repro/network/mod.py", rule="DET001",
                 snippet="for peer in peers:", line=10):
    return Finding(path=path, line=line, col=4, rule=rule,
                   message="unsorted iteration", snippet=snippet)


class TestLoadBaseline:
    def test_parses_entries_and_ignores_comments(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            "# header comment\n"
            "\n"
            "a.py\tDET001\tfor x in s:\tlegacy site\n"
            "a.py\tDET001\tfor x in s:\tlegacy site\n"
            "b.py\tDET004\tt = time.time()\twall-clock report field\n",
            encoding="utf-8",
        )
        entries = load_baseline(baseline)
        assert entries[("a.py", "DET001", "for x in s:")] == 2
        assert entries[("b.py", "DET004", "t = time.time()")] == 1

    def test_reason_is_mandatory(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("a.py\tDET001\tfor x in s:\t\n", encoding="utf-8")
        with pytest.raises(BaselineError, match="reason"):
            load_baseline(baseline)

    def test_malformed_line_is_rejected(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("a.py\tDET001\n", encoding="utf-8")
        with pytest.raises(BaselineError, match="4 tab-separated"):
            load_baseline(baseline)


class TestMatchBaseline:
    def test_matched_findings_are_consumed(self, tmp_path):
        finding = make_finding()
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(format_baseline([finding], reason="accepted"),
                            encoding="utf-8")
        new, stale = match_baseline([finding], load_baseline(baseline))
        assert new == []
        assert stale == []

    def test_multiset_matching_counts_duplicate_sites(self, tmp_path):
        first, second = make_finding(line=10), make_finding(line=20)
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(format_baseline([first, second], reason="accepted"),
                            encoding="utf-8")
        entries = load_baseline(baseline)
        # Two findings share a fingerprint -> the baseline carries it twice.
        assert entries[first.fingerprint] == 2
        new, stale = match_baseline([first, second], entries)
        assert new == [] and stale == []
        # Only one entry would leave the second finding uncovered.
        new, _ = match_baseline([first, second],
                                entries - Counter({first.fingerprint: 1}))
        assert new == [second]

    def test_unmatched_finding_is_new(self):
        new, stale = match_baseline([make_finding()], {})
        assert len(new) == 1
        assert stale == []

    def test_fixed_site_reports_stale_entry(self, tmp_path):
        gone = make_finding(snippet="removed_line()")
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(format_baseline([gone], reason="accepted"),
                            encoding="utf-8")
        new, stale = match_baseline([], load_baseline(baseline))
        assert new == []
        assert stale == [gone.fingerprint]

    def test_line_moves_do_not_invalidate_entries(self, tmp_path):
        """The fingerprint is the stripped source line, not its number."""
        original = make_finding(line=10)
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(format_baseline([original], reason="accepted"),
                            encoding="utf-8")
        moved = make_finding(line=99)
        new, stale = match_baseline([moved], load_baseline(baseline))
        assert new == [] and stale == []


class TestFormatBaseline:
    def test_round_trips_through_load(self, tmp_path):
        findings = [make_finding(), make_finding(rule="DET004",
                                                 snippet="t = time.time()")]
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(format_baseline(findings, reason="accepted"),
                            encoding="utf-8")
        new, stale = match_baseline(findings, load_baseline(baseline))
        assert new == [] and stale == []

    def test_default_reason_is_a_todo_marker(self):
        text = format_baseline([make_finding()])
        assert "TODO" in text
