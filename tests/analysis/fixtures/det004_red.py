"""DET004 red: wall-clock reads in simulation code."""

import time
from datetime import datetime


def stamp() -> tuple[float, float, str]:
    return time.time(), time.perf_counter(), datetime.now().isoformat()


def drift() -> float:
    # monotonic is still the *wall* clock for simulation purposes: it
    # advances with host time, not with processed events.
    return time.monotonic() - time.monotonic_ns() / 1e9
