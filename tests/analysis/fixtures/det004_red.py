"""DET004 red: wall-clock reads in simulation code."""

import time
from datetime import datetime


def stamp() -> tuple[float, float, str]:
    return time.time(), time.perf_counter(), datetime.now().isoformat()
