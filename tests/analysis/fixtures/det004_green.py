"""DET004 green: virtual time comes from the simulator clock."""


class Simulator:
    now: float = 0.0


def stamp(simulator: Simulator) -> float:
    return simulator.now
