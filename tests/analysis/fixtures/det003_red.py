"""DET003 red: the ambient global random stream, and an unseeded Random."""

import random


def jitter() -> float:
    rng = random.Random()        # entropy-seeded
    return random.random() + rng.random()
