"""DET001 red: every construct the set-iteration rule must catch."""

from dataclasses import dataclass, field


@dataclass
class State:
    leaves: set[str] = field(default_factory=set)
    tables: dict[str, set[str]] = field(default_factory=dict)


def reattach(state: State) -> list[str]:
    orphans = list(state.leaves)            # materialization in set order
    for leaf in state.leaves:               # bare for-loop
        orphans.append(leaf)
    ordered = [leaf for leaf in state.leaves]   # list comprehension
    for member in state.tables.pop("a", set()):  # dict-of-set value
        ordered.append(member)
    local: set[str] = set()
    for item in local | state.leaves:       # set algebra
        ordered.append(item)
    return ordered
