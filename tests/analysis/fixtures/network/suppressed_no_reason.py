"""A reasonless suppression suppresses nothing and is itself flagged."""

from dataclasses import dataclass, field


@dataclass
class State:
    members: set[str] = field(default_factory=set)


def tally(state: State) -> list[str]:
    out = []
    for member in state.members:  # detlint: ignore[DET001]
        out.append(member)
    return out
