"""KERN001 red: raw scheduling, heap access, and an affinity-less timer."""


def misbehave(simulator, kernel, peer_id: str) -> None:
    simulator.schedule(10.0, print, peer_id)        # bypasses _route/outbox
    simulator.schedule_at(50.0, print, peer_id)     # same, absolute form
    simulator._queue.append(None)                   # direct heap access
    kernel.every(100.0, print, peer_id)             # timer without affinity
