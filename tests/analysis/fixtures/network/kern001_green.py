"""KERN001 green: routed sends and shard-affine timers."""


def behave(simulator, kernel, peer_id: str) -> None:
    simulator.post(10.0, print, peer_id)
    simulator.post_keyed(peer_id, 10.0, print, peer_id)
    kernel.every(100.0, print, peer_id, affinity=peer_id)
