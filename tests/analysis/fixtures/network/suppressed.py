"""Suppression round-trip: a reasoned ignore silences exactly its rule."""

from dataclasses import dataclass, field


@dataclass
class State:
    members: set[str] = field(default_factory=set)


def tally(state: State) -> dict[str, int]:
    counts: dict[str, int] = {}
    # detlint: ignore[DET001] -- every member gets the same count; the
    # write order cannot reach any decision.
    for member in state.members:
        counts[member] = 1
    for member in state.members:  # detlint: ignore[DET001] -- same-line form, same argument
        counts[member] += 1
    return counts
