"""KERN002 red: raw process creation in protocol code."""

import multiprocessing
import os
from multiprocessing import Pool


def fan_out(payloads):
    ctx = multiprocessing.get_context("fork")
    with Pool(4) as pool:
        return pool.map(len, payloads)


def fork_worker():
    pid = os.fork()
    return pid
