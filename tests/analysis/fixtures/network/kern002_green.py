"""KERN002 green: protocol code delegates process fan-out to the
sanctioned runners instead of creating processes itself."""


def fan_out(run_population, population):
    # workloads.scale owns the pool: start method, crash surfacing.
    return run_population(population, shards=4, parallel=True)


def fork_free(os_module):
    return os_module.getpid()
