"""DET001 green: sorted iteration and order-insensitive reducers pass."""

from dataclasses import dataclass, field


@dataclass
class State:
    leaves: set[str] = field(default_factory=set)
    tables: dict[str, set[str]] = field(default_factory=dict)


def reattach(state: State) -> list[str]:
    orphans = sorted(state.leaves)                    # sorted materialization
    for leaf in sorted(state.leaves):                 # sorted for-loop
        orphans.append(leaf)
    count = sum(1 for leaf in state.leaves if leaf)   # order-insensitive reducer
    biggest = max(state.leaves, default="")           # plain-name arg, no iteration flagged
    present = "x" in state.leaves                     # membership, not iteration
    mirrored = {leaf for leaf in state.leaves}        # set -> set stays order-free
    return orphans + [str(count), biggest, str(present), *sorted(mirrored)]
