"""DET002 green: crc32 is the stable-hash bar."""

from zlib import crc32


def shard_of(node_id: str, shards: int) -> int:
    return crc32(node_id.encode("utf-8")) % shards
