"""DET002 red: builtin hash() reaching a routing decision."""


def shard_of(node_id: str, shards: int) -> int:
    return hash(node_id) % shards
