"""DET003 green: injected, explicitly seeded streams."""

import random


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()
