"""Fixture-driven contract tests for every detlint rule.

Each rule has a minimal red fixture (must flag, with pinned counts) and
a green fixture (must stay silent), plus the historical pre-PR6
``superpeer.py`` — the cross-process nondeterminism bug the linter was
built to catch — asserted red.  The fixtures live under
``tests/analysis/fixtures`` and are excluded from ruff: they are
deliberately-bad linter inputs.
"""

from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import RULES, analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

#: red fixture -> exact rule counts it must produce (pinned, not >=,
#: so a rule that silently widens or narrows fails here first)
RED_EXPECTATIONS = {
    "network/det001_red.py": {"DET001": 5},
    "det002_red.py": {"DET002": 1},
    "det003_red.py": {"DET003": 2},
    "det004_red.py": {"DET004": 5},
    "network/kern001_red.py": {"KERN001": 4},
    "network/kern002_red.py": {"KERN002": 3},
}

GREEN_FIXTURES = [
    "network/det001_green.py",
    "det002_green.py",
    "det003_green.py",
    "det004_green.py",
    "network/kern001_green.py",
    "network/kern002_green.py",
]


def findings_for(relative: str):
    return analyze_paths([str(FIXTURES / relative)])


class TestRuleFixtures:
    @pytest.mark.parametrize("fixture", sorted(RED_EXPECTATIONS))
    def test_red_fixture_flags(self, fixture):
        findings = findings_for(fixture)
        assert dict(Counter(f.rule for f in findings)) == RED_EXPECTATIONS[fixture]

    @pytest.mark.parametrize("fixture", GREEN_FIXTURES)
    def test_green_fixture_is_clean(self, fixture):
        assert findings_for(fixture) == []

    def test_every_rule_has_a_red_fixture(self):
        """The catalogue and the fixture suite must not drift apart."""
        covered = set()
        for expected in RED_EXPECTATIONS.values():
            covered.update(expected)
        covered.update({"DETLINT"})  # exercised by suppressed_no_reason.py
        assert covered == set(RULES)

    def test_findings_carry_rule_metadata(self):
        for finding in findings_for("network/det001_red.py"):
            assert finding.rule in RULES
            assert finding.snippet  # fingerprint material
            assert finding.line > 0


class TestHistoricalSuperpeerFixture:
    """The pre-PR6 ``superpeer.py`` must stay red forever.

    Its unsorted orphan-leaf re-attachment produced different peer
    assignments in different *processes* (PYTHONHASHSEED salts the
    ``set[str]`` order) — the class of bug repeat-twice in-process
    determinism tests structurally cannot see.
    """

    FIXTURE = "network/superpeer_pre_pr6.py"

    def test_flags_det001(self):
        findings = findings_for(self.FIXTURE)
        det001 = [f for f in findings if f.rule == "DET001"]
        assert det001, "the historical bug must be flagged"

    def test_flags_the_orphan_reattachment_line(self):
        # Locate by snippet, not line number: the fixture carries an
        # explanatory header that shifts the original line numbers.
        findings = findings_for(self.FIXTURE)
        assert any(
            "orphans = list(" in f.snippet for f in findings if f.rule == "DET001"
        )


class TestSuppressions:
    def test_reasoned_suppressions_silence_findings(self):
        assert findings_for("network/suppressed.py") == []

    def test_reasonless_suppression_is_itself_a_finding(self):
        findings = findings_for("network/suppressed_no_reason.py")
        rules = Counter(f.rule for f in findings)
        # The reasonless comment does not suppress (DET001 survives) and
        # is flagged as malformed (DETLINT).
        assert rules["DET001"] == 1
        assert rules["DETLINT"] == 1

    def test_suppression_only_covers_its_own_rule(self):
        source = (
            "import random\n"
            "def f():\n"
            "    s = {1, 2}\n"
            "    # detlint: ignore[DET003] -- wrong rule for the next line\n"
            "    return [v for v in s]\n"
        )
        findings = analyze_source(source, "network/mod.py")
        assert [f.rule for f in findings] == ["DET001"]


class TestScoping:
    RED_BODY = "def f():\n    s = {1, 2}\n    return [v for v in s]\n"

    def test_det001_keys_off_protocol_path_segments(self):
        assert analyze_source(self.RED_BODY, "network/mod.py") != []
        assert analyze_source(self.RED_BODY, "engine/mod.py") != []
        assert analyze_source(self.RED_BODY, "xmlkit/mod.py") == []

    def test_scope_all_applies_rules_everywhere(self):
        assert analyze_source(self.RED_BODY, "xmlkit/mod.py", scope_all=True) != []

    def test_det004_exempts_benchmarks(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert analyze_source(source, "src/repro/workloads/mod.py") != []
        assert analyze_source(source, "benchmarks/test_bench_mod.py") == []


class TestOrderInsensitiveReducers:
    """Genexps feeding commutative reducers are exempt from DET001."""

    @pytest.mark.parametrize("reducer", ["sum", "min", "max", "any", "all",
                                         "len", "set", "frozenset", "sorted"])
    def test_reducer_over_set_is_clean(self, reducer):
        source = f"def f():\n    s = {{1, 2}}\n    return {reducer}(v for v in s)\n"
        assert analyze_source(source, "network/mod.py") == []

    def test_list_materialization_is_flagged(self):
        source = "def f():\n    s = {1, 2}\n    return list(s)\n"
        assert [f.rule for f in analyze_source(source, "network/mod.py")] == ["DET001"]

    def test_sorted_iteration_is_clean(self):
        source = "def f():\n    s = {1, 2}\n    return [v for v in sorted(s)]\n"
        assert analyze_source(source, "network/mod.py") == []


class TestCrossFileRegistry:
    """Set-typed attributes declared in one module are tracked when
    iterated from another — the whole point of the two-pass design."""

    def test_attribute_declared_elsewhere_is_flagged(self, tmp_path):
        package = tmp_path / "network"
        package.mkdir()
        (package / "state.py").write_text(
            "class PeerState:\n    leaves: set[str]\n", encoding="utf-8"
        )
        (package / "proto.py").write_text(
            "def handle(state):\n    return [leaf for leaf in state.leaves]\n",
            encoding="utf-8",
        )
        findings = analyze_paths([str(package)])
        assert [(Path(f.path).name, f.rule) for f in findings] == [("proto.py", "DET001")]

    def test_without_declaration_no_finding(self, tmp_path):
        package = tmp_path / "network"
        package.mkdir()
        (package / "proto.py").write_text(
            "def handle(state):\n    return [leaf for leaf in state.leaves]\n",
            encoding="utf-8",
        )
        assert analyze_paths([str(package)]) == []


class TestCurrentTreeIsClean:
    def test_src_passes_with_checked_in_baseline(self, monkeypatch):
        """The acceptance criterion: the gate is green on the real tree.

        Run from the repo root with relative paths — baseline
        fingerprints are repo-relative, exactly as CI invokes the gate.
        """
        from repro.analysis.__main__ import main

        repo_root = Path(__file__).resolve().parents[2]
        assert (repo_root / "pyproject.toml").is_file()
        monkeypatch.chdir(repo_root)
        assert main(["src", "--baseline", "detlint-baseline.txt"]) == 0
