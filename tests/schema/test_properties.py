"""Property-based tests for the schema substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.schema.builder import SchemaBuilder, schema_to_xsd
from repro.schema.instance import InstanceSynthesizer, build_instance, extract_values
from repro.schema.parser import parse_schema_text
from repro.schema.validator import validate

field_names = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=10)
type_names = st.sampled_from(["string", "integer", "decimal", "boolean", "date", "anyURI"])


@st.composite
def field_specs(draw):
    return {
        "name": draw(field_names),
        "type_name": draw(type_names),
        "searchable": draw(st.booleans()),
        "optional": draw(st.booleans()),
        "repeated": draw(st.booleans()),
    }


@st.composite
def schema_builders(draw):
    root = draw(field_names)
    specs = draw(st.lists(field_specs(), min_size=1, max_size=8,
                          unique_by=lambda spec: spec["name"]))
    builder = SchemaBuilder(root)
    for spec in specs:
        builder.field(spec["name"], spec["type_name"], searchable=spec["searchable"],
                      optional=spec["optional"], repeated=spec["repeated"])
    return builder


@settings(max_examples=40, deadline=None)
@given(schema_builders())
def test_generated_schema_roundtrips_through_xsd(builder):
    """build → serialize to XSD → reparse preserves the field inventory."""
    schema = builder.build()
    reparsed = parse_schema_text(schema_to_xsd(schema))
    original = [(f.path, f.searchable, f.optional, f.repeated) for f in schema.fields()]
    again = [(f.path, f.searchable, f.optional, f.repeated) for f in reparsed.fields()]
    assert original == again


@settings(max_examples=30, deadline=None)
@given(schema_builders(), st.integers(min_value=0, max_value=2 ** 16))
def test_synthesized_instances_always_validate(builder, seed):
    """Random instances generated from a schema validate against it."""
    schema = parse_schema_text(schema_to_xsd(builder.build()))
    instance = InstanceSynthesizer(schema, seed=seed).synthesize()
    report = validate(schema, instance)
    assert report.is_valid, report.summary()


@settings(max_examples=30, deadline=None)
@given(schema_builders(), st.data())
def test_build_then_extract_recovers_values(builder, data):
    """extract_values(build_instance(values)) recovers the provided values."""
    schema = builder.build()
    values = {}
    for info in schema.fields():
        if info.type_name.endswith("string"):
            text = data.draw(st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=20))
        else:
            text = "1"
        values[info.path] = text.strip() or "x"
    instance = build_instance(schema, values)
    extracted = extract_values(schema, instance)
    for path, value in values.items():
        assert extracted[path] == [value]
