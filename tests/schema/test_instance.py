"""Tests for instance construction, extraction and synthesis."""

import pytest

from repro.schema.errors import SchemaError
from repro.schema.instance import (
    InstanceSynthesizer,
    build_instance,
    extract_values,
    instance_skeleton,
)
from repro.schema.validator import validate
from repro.xmlkit.serializer import serialize


class TestBuildInstance:
    def test_simple_values(self, mp3_schema):
        instance = build_instance(mp3_schema, {
            "title": "So What", "artist": "Miles Davis", "album": "Kind of Blue",
            "genre": "jazz", "bitrate": "192",
        })
        assert instance.child_text("title") == "So What"
        assert instance.tag == "mp3"

    def test_nested_paths(self, pattern_schema):
        instance = build_instance(pattern_schema, {
            "name": "Observer",
            "category": "behavioral",
            "intent": "notify dependents",
            "solution/structure": "subject holds observers",
            "solution/participants": ["Subject", "Observer"],
        })
        solution = instance.find("solution")
        assert solution.find("structure").text == "subject holds observers"
        assert len(solution.find_all("participants")) == 2

    def test_repeated_values_from_sequence(self, mp3_schema):
        instance = build_instance(mp3_schema, {"title": ["a"], "artist": "x",
                                                "album": "y", "genre": "jazz", "bitrate": "128"})
        assert instance.child_text("title") == "a"

    def test_unknown_path_rejected(self, mp3_schema):
        with pytest.raises(SchemaError):
            build_instance(mp3_schema, {"composer": "Bach"})

    def test_missing_required_fields_created_empty(self, mp3_schema):
        instance = build_instance(mp3_schema, {"title": "x"})
        assert instance.find("artist") is not None
        assert instance.child_text("artist") == ""

    def test_optional_missing_fields_omitted(self, mp3_schema):
        instance = build_instance(mp3_schema, {
            "title": "x", "artist": "y", "album": "z", "genre": "rock", "bitrate": "128",
        })
        assert instance.find("year") is None

    def test_serializable(self, mp3_schema):
        instance = build_instance(mp3_schema, {"title": "x", "artist": "y", "album": "z",
                                               "genre": "rock", "bitrate": "128"})
        assert "<title>x</title>" in serialize(instance, xml_declaration=False)


class TestExtractValues:
    def test_roundtrip(self, pattern_schema):
        values = {
            "name": "Observer", "category": "behavioral", "intent": "notify dependents",
            "solution/structure": "subject notifies observers",
            "solution/participants": ["Subject", "Observer", "ConcreteObserver"],
        }
        instance = build_instance(pattern_schema, values)
        extracted = extract_values(pattern_schema, instance)
        assert extracted["name"] == ["Observer"]
        assert extracted["solution/participants"] == ["Subject", "Observer", "ConcreteObserver"]

    def test_skeleton_contains_every_field(self, mp3_schema):
        skeleton = instance_skeleton(mp3_schema)
        names = {child.local_name for child in skeleton.children}
        assert {"title", "artist", "album", "genre", "bitrate"} <= names


class TestSynthesizer:
    def test_synthesized_instances_validate(self, mp3_schema):
        synthesizer = InstanceSynthesizer(mp3_schema, seed=3)
        for instance in synthesizer.corpus(20):
            report = validate(mp3_schema, instance)
            assert report.is_valid, report.summary()

    def test_pattern_schema_synthesis_validates(self, pattern_schema):
        synthesizer = InstanceSynthesizer(pattern_schema, seed=5)
        for instance in synthesizer.corpus(10):
            assert validate(pattern_schema, instance).is_valid

    def test_deterministic_for_same_seed(self, mp3_schema):
        a = InstanceSynthesizer(mp3_schema, seed=9).synthesize()
        b = InstanceSynthesizer(mp3_schema, seed=9).synthesize()
        assert serialize(a) == serialize(b)

    def test_overrides_pin_values(self, mp3_schema):
        instance = InstanceSynthesizer(mp3_schema, seed=1).synthesize(
            overrides={"artist": "Miles Davis"}
        )
        assert instance.child_text("artist") == "Miles Davis"

    def test_enumerated_fields_use_allowed_values(self, mp3_schema):
        genres = {info.path: info.enumeration for info in mp3_schema.fields()}["genre"]
        instance = InstanceSynthesizer(mp3_schema, seed=2).synthesize()
        assert instance.child_text("genre") in genres
