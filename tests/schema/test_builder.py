"""Tests for the programmatic schema builder (the schema-tool substitute)."""

import pytest

from repro.schema.builder import SchemaBuilder, schema_to_xsd
from repro.schema.errors import SchemaError
from repro.schema.parser import parse_schema_text
from repro.schema.validator import validate
from repro.schema.instance import build_instance


class TestBuilder:
    def test_simple_fields(self):
        schema = SchemaBuilder("note").field("title", searchable=True).field("body").build()
        assert schema.root_element().name == "note"
        assert [info.path for info in schema.fields()] == ["title", "body"]
        assert [info.path for info in schema.searchable_fields()] == ["title"]

    def test_typed_fields(self):
        schema = (
            SchemaBuilder("song")
            .field("title")
            .field("bitrate", "positiveInteger")
            .field("released", "date", optional=True)
            .field("file", "anyURI", attachment=True)
            .build()
        )
        by_path = {info.path: info for info in schema.fields()}
        assert by_path["bitrate"].type_name.endswith("positiveInteger")
        assert by_path["released"].optional
        assert by_path["file"].attachment

    def test_enumeration_creates_simple_type(self):
        schema = SchemaBuilder("mp3").field("genre", enumeration=["rock", "jazz"]).build()
        assert schema.fields()[0].enumeration == ["rock", "jazz"]
        assert len(schema.simple_types) == 1

    def test_groups(self):
        builder = SchemaBuilder("pattern")
        builder.field("name")
        builder.group("solution").field("structure").field("participants", repeated=True).end()
        schema = builder.build()
        paths = [info.path for info in schema.fields()]
        assert "solution/structure" in paths
        assert "solution/participants" in paths

    def test_repeated_and_optional(self):
        schema = SchemaBuilder("x").field("tag", repeated=True, optional=True).build()
        info = schema.fields()[0]
        assert info.repeated and info.optional

    def test_empty_builder_rejected(self):
        with pytest.raises(SchemaError):
            SchemaBuilder("x").build()

    def test_empty_root_name_rejected(self):
        with pytest.raises(SchemaError):
            SchemaBuilder("  ")

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            SchemaBuilder("x").field("y", "madeUpType").build()

    def test_empty_group_rejected(self):
        builder = SchemaBuilder("x")
        group = builder.group("g")
        with pytest.raises(SchemaError):
            group.end()


class TestXsdRoundTrip:
    def test_to_xsd_reparses(self):
        builder = SchemaBuilder("pattern")
        builder.field("name", searchable=True)
        builder.field("category", enumeration=["creational", "structural"], searchable=True)
        builder.group("solution").field("structure").field("participants", repeated=True).end()
        builder.field("diagram", "anyURI", attachment=True, optional=True)
        xsd = builder.to_xsd()

        reparsed = parse_schema_text(xsd)
        assert [info.path for info in reparsed.fields()] == [
            "name", "category", "solution/structure", "solution/participants", "diagram",
        ]
        by_path = {info.path: info for info in reparsed.fields()}
        assert by_path["name"].searchable
        assert by_path["diagram"].attachment
        assert by_path["category"].enumeration == ["creational", "structural"]

    def test_roundtrip_preserves_searchable_set(self, mp3_xsd):
        schema = parse_schema_text(mp3_xsd)
        again = parse_schema_text(schema_to_xsd(schema))
        original = [info.path for info in schema.searchable_fields()]
        reparsed = [info.path for info in again.searchable_fields()]
        assert original == reparsed

    def test_built_schema_validates_instances(self):
        builder = SchemaBuilder("molecule")
        builder.field("name", searchable=True).field("formula", searchable=True)
        builder.field("weight", "decimal")
        schema = parse_schema_text(builder.to_xsd())
        good = build_instance(schema, {"name": "water", "formula": "H2O", "weight": "18.015"})
        assert validate(schema, good).is_valid
        bad = build_instance(schema, {"name": "water", "formula": "H2O", "weight": "heavy"})
        assert not validate(schema, bad).is_valid

    def test_documentation_survives_roundtrip(self):
        xsd = SchemaBuilder("x").field("y", documentation="the y field").to_xsd()
        assert parse_schema_text(xsd).fields()[0].documentation == "the y field"
