"""Tests for instance validation against parsed schemas."""


from repro.schema.parser import parse_schema_text
from repro.schema.validator import validate
from repro.xmlkit.parser import parse


def check(schema_text, instance_text):
    schema = parse_schema_text(schema_text)
    document = parse(instance_text, check_namespaces=False, keep_whitespace_text=False)
    return validate(schema, document)


MP3_SCHEMA = """
<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.repro/extensions">
  <element name="mp3">
    <complexType>
      <sequence>
        <element name="title" type="xsd:string" up2p:searchable="true"/>
        <element name="artist" type="xsd:string" up2p:searchable="true"/>
        <element name="genre" type="genreType"/>
        <element name="bitrate" type="xsd:positiveInteger"/>
        <element name="year" type="xsd:gYear" minOccurs="0"/>
        <element name="tag" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
      </sequence>
    </complexType>
  </element>
  <simpleType name="genreType">
    <restriction base="xsd:string">
      <enumeration value="rock"/>
      <enumeration value="jazz"/>
      <enumeration value="classical"/>
    </restriction>
  </simpleType>
</schema>
"""


class TestValidInstances:
    def test_minimal_valid(self):
        report = check(MP3_SCHEMA,
                       "<mp3><title>t</title><artist>a</artist><genre>jazz</genre><bitrate>192</bitrate></mp3>")
        assert report.is_valid
        assert report.summary() == "valid"

    def test_optional_and_repeated_fields(self):
        report = check(MP3_SCHEMA,
                       "<mp3><title>t</title><artist>a</artist><genre>rock</genre>"
                       "<bitrate>128</bitrate><year>1999</year><tag>live</tag><tag>remaster</tag></mp3>")
        assert report.is_valid

    def test_community_object_against_fig3_schema(self, community_schema_xsd):
        report = check(community_schema_xsd,
                       "<community><name>MP3s</name><description>songs</description>"
                       "<keywords>music</keywords><category>media</category>"
                       "<security>none</security><protocol>Gnutella</protocol>"
                       "<schema>http://x/mp3.xsd</schema><displaystyle></displaystyle>"
                       "<createstyle></createstyle><searchstyle></searchstyle></community>")
        assert report.is_valid


class TestInvalidInstances:
    def test_wrong_root(self):
        report = check(MP3_SCHEMA, "<song><title>t</title></song>")
        assert not report.is_valid
        assert report.errors[0].code == "unexpected-root"

    def test_missing_required_field(self):
        report = check(MP3_SCHEMA, "<mp3><title>t</title><genre>jazz</genre><bitrate>192</bitrate></mp3>")
        assert any(error.code == "occurrence-violation" and "artist" in error.path
                   for error in report.errors)

    def test_unexpected_element(self):
        report = check(MP3_SCHEMA,
                       "<mp3><title>t</title><artist>a</artist><genre>jazz</genre>"
                       "<bitrate>192</bitrate><rating>5</rating></mp3>")
        assert any(error.code == "unexpected-element" for error in report.errors)

    def test_enumeration_violation(self):
        report = check(MP3_SCHEMA,
                       "<mp3><title>t</title><artist>a</artist><genre>polka</genre><bitrate>192</bitrate></mp3>")
        assert any(error.code == "facet-violation" for error in report.errors)

    def test_datatype_violation(self):
        report = check(MP3_SCHEMA,
                       "<mp3><title>t</title><artist>a</artist><genre>jazz</genre><bitrate>fast</bitrate></mp3>")
        assert any("bitrate" in error.path for error in report.errors)

    def test_out_of_order_sequence(self):
        report = check(MP3_SCHEMA,
                       "<mp3><artist>a</artist><title>t</title><genre>jazz</genre><bitrate>192</bitrate></mp3>")
        assert any(error.code == "sequence-order" for error in report.errors)

    def test_protocol_enumeration_fig3(self, community_schema_xsd):
        report = check(community_schema_xsd,
                       "<community><name>x</name><description/><keywords/><category/>"
                       "<security/><protocol>Freenet</protocol><schema/>"
                       "<displaystyle/><createstyle/><searchstyle/></community>")
        assert not report.is_valid
        assert any("protocol" in error.path for error in report.errors)

    def test_multiple_errors_all_reported(self):
        report = check(MP3_SCHEMA, "<mp3><genre>polka</genre><bitrate>fast</bitrate></mp3>")
        assert len(report.errors) >= 3

    def test_repeated_field_beyond_bounds(self):
        schema = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="list">
            <complexType>
              <sequence>
                <element name="item" type="xsd:string" maxOccurs="2"/>
              </sequence>
            </complexType>
          </element>
        </schema>
        """
        report = check(schema, "<list><item>1</item><item>2</item><item>3</item></list>")
        assert any(error.code == "occurrence-violation" for error in report.errors)

    def test_children_under_simple_type(self):
        report = check(MP3_SCHEMA,
                       "<mp3><title><b>bold</b></title><artist>a</artist>"
                       "<genre>jazz</genre><bitrate>192</bitrate></mp3>")
        assert any(error.code == "unexpected-children" for error in report.errors)


class TestAttributesAndChoice:
    SCHEMA = """
    <schema xmlns="http://www.w3.org/2001/XMLSchema">
      <element name="contact">
        <complexType>
          <choice>
            <element name="email" type="xsd:string"/>
            <element name="phone" type="xsd:string"/>
          </choice>
          <attribute name="kind" type="xsd:string" use="required"/>
        </complexType>
      </element>
    </schema>
    """

    def test_choice_accepts_one_branch(self):
        report = check(self.SCHEMA, "<contact kind='personal'><email>x@y</email></contact>")
        assert report.is_valid

    def test_choice_rejects_both_branches(self):
        report = check(self.SCHEMA,
                       "<contact kind='p'><email>x@y</email><phone>123</phone></contact>")
        assert any(error.code == "choice-violation" for error in report.errors)

    def test_choice_rejects_neither_branch(self):
        report = check(self.SCHEMA, "<contact kind='p'/>")
        assert any(error.code == "choice-violation" for error in report.errors)

    def test_missing_required_attribute(self):
        report = check(self.SCHEMA, "<contact><email>x@y</email></contact>")
        assert any(error.code == "missing-attribute" for error in report.errors)

    def test_undeclared_attribute(self):
        report = check(self.SCHEMA, "<contact kind='p' extra='1'><email>x</email></contact>")
        assert any(error.code == "unexpected-attribute" for error in report.errors)

    def test_nested_paths_in_errors(self):
        schema = """
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="pattern">
            <complexType>
              <sequence>
                <element name="solution">
                  <complexType>
                    <sequence>
                      <element name="structure" type="xsd:string"/>
                    </sequence>
                  </complexType>
                </element>
              </sequence>
            </complexType>
          </element>
        </schema>
        """
        report = check(schema, "<pattern><solution><wrong>x</wrong></solution></pattern>")
        assert any(error.path.startswith("pattern/solution") for error in report.errors)
