"""Tests for the built-in XML Schema datatypes."""

import pytest

from repro.schema.datatypes import (
    builtin_type_names,
    check_builtin,
    get_builtin,
    is_builtin,
    strip_prefix,
)


class TestRegistry:
    def test_core_types_present(self):
        names = builtin_type_names()
        for name in ("string", "anyURI", "integer", "boolean", "date", "decimal"):
            assert name in names

    def test_is_builtin_with_and_without_prefix(self):
        assert is_builtin("string")
        assert is_builtin("xsd:string")
        assert is_builtin("xs:anyURI")
        assert not is_builtin("protocolTypes")

    def test_get_builtin_returns_none_for_unknown(self):
        assert get_builtin("madeUpType") is None

    def test_strip_prefix(self):
        assert strip_prefix("xsd:string") == "string"
        assert strip_prefix("string") == "string"


class TestLexicalChecks:
    @pytest.mark.parametrize("value", ["anything at all", "", "42", "<>&"])
    def test_string_accepts_everything(self, value):
        assert check_builtin("string", value)

    @pytest.mark.parametrize("value,ok", [
        ("42", True), ("-7", True), ("+3", True), ("3.5", False), ("abc", False), ("", False),
    ])
    def test_integer(self, value, ok):
        assert check_builtin("integer", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("0", True), ("17", True), ("-1", False),
    ])
    def test_non_negative_integer(self, value, ok):
        assert check_builtin("nonNegativeInteger", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("1", True), ("0", False), ("-2", False),
    ])
    def test_positive_integer(self, value, ok):
        assert check_builtin("positiveInteger", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("127", True), ("-128", True), ("128", False), ("200", False),
    ])
    def test_byte_bounds(self, value, ok):
        assert check_builtin("byte", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("3.14", True), ("-0.5", True), (".5", True), ("1e5", False), ("abc", False),
    ])
    def test_decimal(self, value, ok):
        assert check_builtin("decimal", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("6.02e23", True), ("INF", True), ("-INF", True), ("NaN", True), ("1.5", True), ("x", False),
    ])
    def test_float(self, value, ok):
        assert check_builtin("float", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("true", True), ("false", True), ("1", True), ("0", True), ("yes", False), ("", False),
    ])
    def test_boolean(self, value, ok):
        assert check_builtin("boolean", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("2002-02-14", True), ("2002-2-14", False), ("14-02-2002", False), ("2002-02-14Z", True),
    ])
    def test_date(self, value, ok):
        assert check_builtin("date", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("2002-02-14T12:30:00", True), ("2002-02-14T12:30:00Z", True),
        ("2002-02-14 12:30:00", False), ("12:30:00", False),
    ])
    def test_datetime(self, value, ok):
        assert check_builtin("dateTime", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("1999", True), ("02", False), ("-0044", True),
    ])
    def test_gyear(self, value, ok):
        assert check_builtin("gYear", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("P1Y2M3DT4H5M6S", True), ("PT30M", True), ("P", False), ("1Y", False),
    ])
    def test_duration(self, value, ok):
        assert check_builtin("duration", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("http://example.org/a.xsd", True), ("up2p:community.xsd", True),
        ("relative/path.xsd", True), ("has space", False), ("", True),
    ])
    def test_anyuri(self, value, ok):
        assert check_builtin("anyURI", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("community", True), ("_x", True), ("ns:name", False), ("9lives", False),
    ])
    def test_ncname(self, value, ok):
        assert check_builtin("NCName", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("en", True), ("en-CA", True), ("english language", False),
    ])
    def test_language(self, value, ok):
        assert check_builtin("language", value) is ok

    @pytest.mark.parametrize("value,ok", [
        ("cafebabe", True), ("CAFEBABE", True), ("abc", False), ("zz", False),
    ])
    def test_hexbinary(self, value, ok):
        assert check_builtin("hexBinary", value) is ok

    def test_token_collapses_whitespace(self):
        assert check_builtin("token", "a b c")
        assert not check_builtin("token", "a  b")
        assert not check_builtin("token", " padded ")

    def test_normalized_string(self):
        assert check_builtin("normalizedString", "no tabs here")
        assert not check_builtin("normalizedString", "tab\there")

    def test_unknown_type_is_lenient(self):
        # The prototype tolerated unknown type names; we preserve that.
        assert check_builtin("madeUpType", "whatever")
