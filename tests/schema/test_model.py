"""Tests for the schema component model."""

import pytest

from repro.schema.errors import SchemaError
from repro.schema.model import (
    ComplexType,
    ElementDeclaration,
    Facets,
    Occurrence,
    Particle,
    Schema,
    SimpleType,
)


class TestOccurrence:
    def test_defaults(self):
        occurrence = Occurrence()
        assert occurrence.allows(1)
        assert not occurrence.allows(0)
        assert not occurrence.allows(2)

    def test_optional(self):
        occurrence = Occurrence.parse("0", "1")
        assert occurrence.is_optional
        assert occurrence.allows(0)
        assert occurrence.allows(1)

    def test_unbounded(self):
        occurrence = Occurrence.parse("1", "unbounded")
        assert occurrence.is_repeated
        assert occurrence.allows(500)
        assert not occurrence.allows(0)

    def test_explicit_range(self):
        occurrence = Occurrence.parse("2", "4")
        assert not occurrence.allows(1)
        assert occurrence.allows(3)
        assert not occurrence.allows(5)

    def test_invalid_range_rejected(self):
        with pytest.raises(SchemaError):
            Occurrence.parse("3", "2")

    def test_defaults_from_missing_attributes(self):
        assert Occurrence.parse(None, None) == Occurrence(1, 1)
        assert Occurrence.parse("", "") == Occurrence(1, 1)


class TestFacets:
    def test_enumeration(self):
        facets = Facets(enumeration=["Napster", "Gnutella", "FastTrack", ""])
        assert facets.problems("Gnutella") == []
        assert facets.problems("") == []
        assert facets.problems("Freenet")

    def test_pattern(self):
        facets = Facets(pattern=r"[A-Z]{3}-\d+")
        assert facets.problems("ABC-42") == []
        assert facets.problems("abc-42")

    def test_length_bounds(self):
        facets = Facets(min_length=2, max_length=4)
        assert facets.problems("abc") == []
        assert facets.problems("a")
        assert facets.problems("abcde")

    def test_exact_length(self):
        facets = Facets(length=3)
        assert facets.problems("abc") == []
        assert facets.problems("ab")

    def test_numeric_bounds(self):
        facets = Facets(min_inclusive=0, max_inclusive=100)
        assert facets.problems("50") == []
        assert facets.problems("-1")
        assert facets.problems("101")
        assert facets.problems("not-a-number")

    def test_exclusive_bounds(self):
        facets = Facets(min_exclusive=0, max_exclusive=10)
        assert facets.problems("5") == []
        assert facets.problems("0")
        assert facets.problems("10")

    def test_is_empty(self):
        assert Facets().is_empty()
        assert not Facets(enumeration=["a"]).is_empty()


class TestSimpleType:
    def test_builtin_base(self):
        simple = SimpleType(name="year", base="integer", facets=Facets(min_inclusive=1900))
        assert simple.problems("1999") == []
        assert simple.problems("abc")
        assert simple.problems("1850")

    def test_chained_base_through_schema(self):
        schema = Schema()
        schema.add_simple_type(SimpleType(name="shortString", base="string",
                                          facets=Facets(max_length=5)))
        derived = SimpleType(name="code", base="shortString", facets=Facets(pattern="[a-z]+"))
        assert derived.problems("abc", schema) == []
        assert derived.problems("toolongvalue", schema)
        assert derived.problems("ABC", schema)


def build_pattern_schema() -> Schema:
    """A small hand-built schema used by the model tests."""
    schema = Schema()
    schema.add_simple_type(SimpleType(name="categoryType", base="string",
                                      facets=Facets(enumeration=["creational", "structural", "behavioral"])))
    solution = ElementDeclaration(
        name="solution",
        complex_type=ComplexType(name=None, particle=Particle(items=[
            ElementDeclaration(name="structure"),
            ElementDeclaration(name="participants", occurrence=Occurrence(1, None)),
        ])),
    )
    root_type = ComplexType(name=None, particle=Particle(items=[
        ElementDeclaration(name="name", type_name="xsd:string", searchable=True),
        ElementDeclaration(name="category", type_name="categoryType", searchable=True),
        ElementDeclaration(name="intent", type_name="xsd:string", searchable=True),
        solution,
        ElementDeclaration(name="diagram", type_name="xsd:anyURI", attachment=True,
                           occurrence=Occurrence(0, 1)),
    ]))
    schema.add_element(ElementDeclaration(name="pattern", complex_type=root_type))
    return schema


class TestSchema:
    def test_root_element(self):
        schema = build_pattern_schema()
        assert schema.root_element().name == "pattern"

    def test_empty_schema_has_no_root(self):
        with pytest.raises(SchemaError):
            Schema().root_element()

    def test_duplicate_registrations_rejected(self):
        schema = build_pattern_schema()
        with pytest.raises(SchemaError):
            schema.add_element(ElementDeclaration(name="pattern"))
        with pytest.raises(SchemaError):
            schema.add_simple_type(SimpleType(name="categoryType", base="string"))

    def test_fields_flatten_nested_groups(self):
        schema = build_pattern_schema()
        paths = [info.path for info in schema.fields()]
        assert paths == ["name", "category", "intent", "solution/structure",
                         "solution/participants", "diagram"]

    def test_field_flags(self):
        schema = build_pattern_schema()
        by_path = {info.path: info for info in schema.fields()}
        assert by_path["name"].searchable
        assert by_path["diagram"].attachment
        assert by_path["diagram"].optional
        assert by_path["solution/participants"].repeated
        assert by_path["category"].enumeration == ["creational", "structural", "behavioral"]

    def test_searchable_fields_subset(self):
        schema = build_pattern_schema()
        assert [info.path for info in schema.searchable_fields()] == ["name", "category", "intent"]

    def test_searchable_fallback_when_nothing_marked(self):
        schema = Schema()
        schema.add_element(ElementDeclaration(
            name="note",
            complex_type=ComplexType(name=None, particle=Particle(items=[
                ElementDeclaration(name="body"),
            ])),
        ))
        assert [info.path for info in schema.searchable_fields()] == ["body"]

    def test_attachment_fields(self):
        schema = build_pattern_schema()
        assert [info.path for info in schema.attachment_fields()] == ["diagram"]

    def test_field_by_path(self):
        schema = build_pattern_schema()
        assert schema.field_by_path("solution/structure") is not None
        assert schema.field_by_path("nope") is None

    def test_describe_mentions_flags(self):
        description = build_pattern_schema().describe()
        assert "root element: pattern" in description
        assert "searchable" in description
        assert "attachment" in description

    def test_field_label_formatting(self):
        schema = Schema()
        schema.add_element(ElementDeclaration(
            name="song",
            complex_type=ComplexType(name=None, particle=Particle(items=[
                ElementDeclaration(name="trackTitle"),
                ElementDeclaration(name="album_name"),
            ])),
        ))
        labels = [info.label for info in schema.fields()]
        assert labels == ["Track Title", "Album name"]

    def test_recursive_type_does_not_loop(self):
        schema = Schema()
        nested = ComplexType(name="node", particle=Particle(items=[
            ElementDeclaration(name="label"),
            ElementDeclaration(name="child", type_name="node", occurrence=Occurrence(0, None)),
        ]))
        schema.add_complex_type(nested)
        schema.add_element(ElementDeclaration(name="tree", type_name="node"))
        paths = [info.path for info in schema.fields()]
        assert "label" in paths
        assert len(paths) < 50
