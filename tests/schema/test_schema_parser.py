"""Tests for parsing XSD documents into the component model."""

import pytest

from repro.schema.errors import SchemaParseError
from repro.schema.parser import parse_schema_file, parse_schema_text


class TestCommunitySchema:
    """The verbatim Fig. 3 schema must parse into the expected model."""

    def test_root_element(self, community_schema_xsd):
        schema = parse_schema_text(community_schema_xsd)
        assert schema.root_element().name == "community"

    def test_all_ten_fields_in_order(self, community_schema_xsd):
        schema = parse_schema_text(community_schema_xsd)
        assert [info.path for info in schema.fields()] == [
            "name", "description", "keywords", "category", "security",
            "protocol", "schema", "displaystyle", "createstyle", "searchstyle",
        ]

    def test_protocol_enumeration(self, community_schema_xsd):
        schema = parse_schema_text(community_schema_xsd)
        protocol = schema.field_by_path("protocol")
        assert protocol.enumeration == ["", "Napster", "Gnutella", "FastTrack"]

    def test_anyuri_fields(self, community_schema_xsd):
        schema = parse_schema_text(community_schema_xsd)
        for path in ("schema", "displaystyle", "createstyle", "searchstyle"):
            assert schema.field_by_path(path).type_name in ("anyURI", "xsd:anyURI")

    def test_named_simple_type_registered(self, community_schema_xsd):
        schema = parse_schema_text(community_schema_xsd)
        assert "protocolTypes" in schema.simple_types
        assert schema.simple_types["protocolTypes"].base in ("string", "xsd:string")


class TestGeneralParsing:
    def test_searchable_and_attachment_annotations(self):
        schema = parse_schema_text("""
        <schema xmlns="http://www.w3.org/2001/XMLSchema"
                xmlns:up2p="http://up2p.repro/extensions">
          <element name="mp3">
            <complexType>
              <sequence>
                <element name="title" type="xsd:string" up2p:searchable="true"/>
                <element name="file" type="xsd:anyURI" up2p:attachment="true" minOccurs="0"/>
              </sequence>
            </complexType>
          </element>
        </schema>
        """)
        fields = {info.path: info for info in schema.fields()}
        assert fields["title"].searchable
        assert not fields["file"].searchable
        assert fields["file"].attachment
        assert fields["file"].optional

    def test_named_complex_type_reference(self):
        schema = parse_schema_text("""
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="entry" type="entryType"/>
          <complexType name="entryType">
            <sequence>
              <element name="key" type="xsd:string"/>
              <element name="value" type="xsd:string"/>
            </sequence>
          </complexType>
        </schema>
        """)
        assert [info.path for info in schema.fields()] == ["key", "value"]

    def test_choice_group(self):
        schema = parse_schema_text("""
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="contact">
            <complexType>
              <choice>
                <element name="email" type="xsd:string"/>
                <element name="phone" type="xsd:string"/>
              </choice>
            </complexType>
          </element>
        </schema>
        """)
        root_type = schema.resolve_complex_type(schema.root_element())
        assert root_type.particle.kind == "choice"

    def test_attributes_parsed(self):
        schema = parse_schema_text("""
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="atom">
            <complexType>
              <sequence>
                <element name="symbol" type="xsd:string"/>
              </sequence>
              <attribute name="id" type="xsd:ID" use="required"/>
              <attribute name="charge" type="xsd:integer" default="0"/>
            </complexType>
          </element>
        </schema>
        """)
        root_type = schema.resolve_complex_type(schema.root_element())
        assert root_type.attribute("id").required
        assert root_type.attribute("charge").default == "0"

    def test_documentation_captured(self):
        schema = parse_schema_text("""
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="pattern">
            <complexType>
              <sequence>
                <element name="intent" type="xsd:string">
                  <annotation><documentation>What the pattern is for</documentation></annotation>
                </element>
              </sequence>
            </complexType>
          </element>
        </schema>
        """)
        assert schema.fields()[0].documentation == "What the pattern is for"

    def test_facets_parsed(self):
        schema = parse_schema_text("""
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="song">
            <complexType>
              <sequence>
                <element name="bitrate" type="bitrateType"/>
              </sequence>
            </complexType>
          </element>
          <simpleType name="bitrateType">
            <restriction base="xsd:integer">
              <minInclusive value="32"/>
              <maxInclusive value="320"/>
            </restriction>
          </simpleType>
        </schema>
        """)
        simple = schema.simple_types["bitrateType"]
        assert simple.facets.min_inclusive == 32
        assert simple.facets.max_inclusive == 320

    def test_parse_schema_file(self, tmp_path, community_schema_xsd):
        path = tmp_path / "community.xsd"
        path.write_text(community_schema_xsd, encoding="utf-8")
        schema = parse_schema_file(path)
        assert schema.root_element().name == "community"


class TestParseErrors:
    def test_not_a_schema_document(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text("<community><name>x</name></community>")

    def test_not_well_formed(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text("<schema><element name='a'>")

    def test_no_global_elements(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text('<schema xmlns="http://www.w3.org/2001/XMLSchema"/>')

    def test_element_without_name(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text("""
            <schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element type="xsd:string"/>
            </schema>
            """)

    def test_element_with_both_type_and_inline(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text("""
            <schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="x" type="xsd:string">
                <complexType><sequence/></complexType>
              </element>
            </schema>
            """)

    def test_unsupported_top_level_construct(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text("""
            <schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="a" type="xsd:string"/>
              <group name="g"/>
            </schema>
            """)

    def test_unsupported_facet(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text("""
            <schema xmlns="http://www.w3.org/2001/XMLSchema">
              <element name="a" type="t"/>
              <simpleType name="t">
                <restriction base="xsd:decimal">
                  <totalDigits value="4"/>
                </restriction>
              </simpleType>
            </schema>
            """)
