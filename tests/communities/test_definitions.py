"""Tests for the bundled community definitions and their corpora."""

import pytest

from repro.communities import ALL_COMMUNITIES
from repro.communities.design_patterns import (
    GOF_PATTERNS,
    generate_pattern_corpus,
    gof_pattern_records,
)
from repro.communities.mp3 import generate_mp3_corpus, narrowed_mp3_community
from repro.schema.instance import build_instance
from repro.schema.parser import parse_schema_text
from repro.schema.validator import validate


@pytest.mark.parametrize("key", sorted(ALL_COMMUNITIES))
class TestEveryCommunity:
    def test_schema_parses(self, key):
        definition = ALL_COMMUNITIES[key]()
        schema = parse_schema_text(definition.schema_xsd)
        assert schema.root_element().name
        assert schema.searchable_fields()

    def test_corpus_instances_validate(self, key):
        definition = ALL_COMMUNITIES[key]()
        schema = parse_schema_text(definition.schema_xsd)
        for record in definition.sample_corpus(15, seed=3):
            instance = build_instance(schema, record)
            report = validate(schema, instance)
            assert report.is_valid, f"{key}: {report.summary()}"

    def test_corpus_sizes_and_determinism(self, key):
        definition = ALL_COMMUNITIES[key]()
        corpus_a = definition.sample_corpus(25, seed=1)
        corpus_b = definition.sample_corpus(25, seed=1)
        assert len(corpus_a) == 25
        assert corpus_a == corpus_b

    def test_definition_metadata(self, key):
        definition = ALL_COMMUNITIES[key]()
        assert definition.name and definition.description and definition.keywords


class TestDesignPatternCorpus:
    def test_all_23_gof_patterns(self):
        records = gof_pattern_records()
        assert len(records) == 23
        names = {record["name"] for record in records}
        assert {"Observer", "Singleton", "Visitor", "Abstract Factory"} <= names
        categories = {record["category"] for record in records}
        assert categories == {"creational", "structural", "behavioral"}

    def test_gof_distribution(self):
        by_category = {}
        for name, category, _, _ in GOF_PATTERNS:
            by_category.setdefault(category, []).append(name)
        assert len(by_category["creational"]) == 5
        assert len(by_category["structural"]) == 7
        assert len(by_category["behavioral"]) == 11

    def test_scaled_corpus_adds_variations(self):
        corpus = generate_pattern_corpus(100, seed=2)
        assert len(corpus) == 100
        names = [record["name"] for record in corpus]
        assert len(set(names)) == 100        # variations get distinct names

    def test_small_corpus_truncates(self):
        assert len(generate_pattern_corpus(5)) == 5


class TestMp3Corpus:
    def test_popularity_skew(self):
        corpus = generate_mp3_corpus(400, seed=1)
        counts = {}
        for record in corpus:
            counts[record["artist"]] = counts.get(record["artist"], 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] > ranked[-1]        # most popular artist clearly ahead

    def test_narrowed_community(self):
        narrowed = narrowed_mp3_community("Miles Davis")
        assert "Miles Davis" in narrowed.name
        corpus = narrowed.sample_corpus(10, seed=1)
        assert corpus and all(record["artist"] == "Miles Davis" for record in corpus)
