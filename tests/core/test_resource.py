"""Tests for shared resources and metadata extraction."""

from repro.core.resource import Resource
from repro.schema.parser import parse_schema_text


class TestResource:
    def test_resource_id_content_addressed(self, sample_mp3_xml):
        a = Resource.from_xml_text("mp3s", sample_mp3_xml)
        b = Resource.from_xml_text("mp3s", sample_mp3_xml)
        c = Resource.from_xml_text("mp3s", sample_mp3_xml.replace("So What", "Freddie Freeloader"))
        assert a.resource_id == b.resource_id
        assert a.resource_id != c.resource_id

    def test_resource_id_community_scoped(self, sample_mp3_xml):
        a = Resource.from_xml_text("mp3s", sample_mp3_xml)
        b = Resource.from_xml_text("other", sample_mp3_xml)
        assert a.resource_id != b.resource_id

    def test_metadata_searchable_only(self, mp3_schema, sample_mp3_xml):
        resource = Resource.from_xml_text("mp3s", sample_mp3_xml)
        metadata = resource.metadata(mp3_schema)
        assert metadata["title"] == ["So What"]
        assert metadata["genre"] == ["jazz"]
        assert "duration" not in metadata

    def test_metadata_all_fields(self, mp3_schema, sample_mp3_xml):
        resource = Resource.from_xml_text("mp3s", sample_mp3_xml)
        metadata = resource.metadata(mp3_schema, searchable_only=False)
        assert "duration" in metadata and "bitrate" in metadata

    def test_attachments_from_schema_fields(self, mp3_schema, sample_mp3_xml):
        resource = Resource.from_xml_text("mp3s", sample_mp3_xml)
        metadata = resource.metadata(mp3_schema)
        assert metadata["__attachments__"] == ["http://peer.local/audio/so-what.mp3"]

    def test_explicit_attachments_merged(self, mp3_schema, sample_mp3_xml):
        resource = Resource.from_xml_text("mp3s", sample_mp3_xml,
                                          attachments=("http://peer.local/cover.jpg",))
        metadata = resource.metadata(mp3_schema)
        assert set(metadata["__attachments__"]) == {
            "http://peer.local/audio/so-what.mp3", "http://peer.local/cover.jpg",
        }

    def test_nested_field_extraction(self, pattern_schema):
        xml = ("<pattern><name>Observer</name><category>behavioral</category>"
               "<intent>notify</intent><keywords>gof</keywords>"
               "<solution><structure>subject list</structure>"
               "<participants>Subject</participants><participants>Observer</participants></solution>"
               "</pattern>")
        resource = Resource.from_xml_text("patterns", xml)
        metadata = resource.metadata(pattern_schema, searchable_only=False)
        assert metadata["solution/participants"] == ["Subject", "Observer"]

    def test_display_title_prefers_explicit(self, mp3_schema, sample_mp3_xml):
        resource = Resource.from_xml_text("mp3s", sample_mp3_xml, title="My Song")
        assert resource.display_title(mp3_schema) == "My Song"

    def test_display_title_falls_back_to_first_field(self, mp3_schema, sample_mp3_xml):
        resource = Resource.from_xml_text("mp3s", sample_mp3_xml)
        assert resource.display_title(mp3_schema) == "So What"

    def test_size_bytes(self, sample_mp3_xml):
        resource = Resource.from_xml_text("mp3s", sample_mp3_xml)
        assert resource.size_bytes() == len(resource.to_xml_text().encode("utf-8"))
        assert "<mp3>" in resource.to_xml_text()

    def test_pretty_serialization(self, sample_mp3_xml):
        resource = Resource.from_xml_text("mp3s", sample_mp3_xml)
        assert "\n" in resource.to_xml_text(pretty_print=True)

    def test_metadata_with_unmarked_schema_uses_all_fields(self):
        schema = parse_schema_text("""
        <schema xmlns="http://www.w3.org/2001/XMLSchema">
          <element name="note">
            <complexType><sequence>
              <element name="subject" type="xsd:string"/>
              <element name="body" type="xsd:string"/>
            </sequence></complexType>
          </element>
        </schema>
        """)
        resource = Resource.from_xml_text("notes", "<note><subject>hi</subject><body>text</body></note>")
        metadata = resource.metadata(schema)
        assert set(metadata) == {"subject", "body"}
