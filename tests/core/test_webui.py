"""Tests for the static web UI renderer."""

import pytest

from repro.core.webui import WebUI
from repro.communities.mp3 import mp3_community


@pytest.fixture()
def populated(two_servents):
    alice, bob = two_servents
    definition = mp3_community()
    app = definition.application_on(alice)
    for record in definition.sample_corpus(4, seed=2):
        app.publish(record)
    return alice, bob, app


class TestPages:
    def test_home_page(self, populated):
        alice, _, app = populated
        html = WebUI(alice).home_page()
        assert html.startswith("<!DOCTYPE html>")
        assert "Servent alice" in html
        assert "MP3 community" in html
        assert "centralized" in html

    def test_communities_page_lists_discovered_communities(self, populated):
        _, bob, app = populated
        html = WebUI(bob).communities_page()
        assert "MP3 community" in html
        assert "join-" in html
        assert "music" in html

    def test_community_page_embeds_generated_forms(self, populated):
        alice, _, app = populated
        html = WebUI(alice).community_page(app.community.community_id)
        assert "up2p-create" in html and "up2p-search" in html
        assert "Locally shared objects (4)" in html
        assert "view-" in html

    def test_community_page_requires_membership(self, populated):
        _, bob, app = populated
        from repro.core.errors import NotAMemberError
        with pytest.raises(NotAMemberError):
            WebUI(bob).community_page(app.community.community_id)

    def test_results_and_view_pages(self, populated):
        alice, bob, app = populated
        bob.join_community(app.community)
        response = bob.search(app.community.community_id, "", max_results=10)
        html = WebUI(bob).results_page(app.community, response)
        assert "download-" in html
        assert f"{response.result_count} results" in html
        view_html = WebUI(alice).view_page(app.shared_objects()[0].resource_id)
        assert "up2p-view" in view_html

    def test_escaping_of_user_content(self, two_servents):
        alice, _ = two_servents
        from repro.core.application import Application
        from repro.schema.builder import SchemaBuilder
        xsd = SchemaBuilder("note").field("body", searchable=True).to_xsd()
        app = Application.generate(alice, "Notes <&> community", xsd,
                                   description="say <anything> & more")
        html = WebUI(alice).communities_page()
        assert "<anything>" not in html
        assert "&lt;anything&gt;" in html


class TestExport:
    def test_export_site(self, populated, tmp_path):
        alice, _, app = populated
        files = WebUI(alice).export_site(tmp_path / "site")
        assert "index.html" in files
        assert "communities.html" in files
        assert any(name.startswith("community-") for name in files)
        assert sum(1 for name in files if name.startswith("view-")) == len(alice.repository.documents)
        for name in files:
            content = (tmp_path / "site" / name).read_text(encoding="utf-8")
            assert content.startswith("<!DOCTYPE html>")
