"""Tests for the default stylesheets (Fig. 1 / Fig. 2 pipeline) and forms."""

import pytest

from repro.core.errors import InvalidObjectError
from repro.core.forms import CreateForm, SearchForm
from repro.core.stylesheets import (
    DEFAULT_CREATE_STYLESHEET,
    DEFAULT_INDEX_FILTER_STYLESHEET,
    DEFAULT_SEARCH_STYLESHEET,
    DEFAULT_VIEW_STYLESHEET,
    StylesheetSet,
    compile_stylesheet,
)
from repro.communities.design_patterns import (
    PATTERN_INDEX_FILTER_STYLESHEET,
    PATTERN_VIEW_STYLESHEET,
    pattern_stylesheets,
)
from repro.storage.query import Operator


class TestDefaultStylesheets:
    """The generative role of XML Schema and XSLT (paper §IV-A)."""

    def test_all_defaults_compile(self):
        for text in (DEFAULT_CREATE_STYLESHEET, DEFAULT_SEARCH_STYLESHEET,
                     DEFAULT_VIEW_STYLESHEET, DEFAULT_INDEX_FILTER_STYLESHEET):
            assert compile_stylesheet(text).templates

    def test_create_form_generated_from_schema(self, mp3_xsd):
        html = StylesheetSet().render_create_form(mp3_xsd)
        assert "up2p-create" in html
        assert 'name="title"' in html
        assert 'name="artist"' in html
        assert "Share" in html

    def test_create_form_works_on_any_community_schema(self, community_schema_xsd, pattern_xsd):
        styles = StylesheetSet()
        for xsd in (community_schema_xsd, pattern_xsd):
            html = styles.render_create_form(xsd)
            assert "<form" in html and "input" in html

    def test_search_form_marks_unsearchable_fields_disabled(self, mp3_xsd):
        html = StylesheetSet().render_search_form(mp3_xsd)
        assert 'name="title"' in html
        assert "not-indexed" in html        # bitrate / duration rows
        assert "searchable" in html

    def test_view_renders_all_attributes(self, sample_mp3_xml):
        html = StylesheetSet().render_view(sample_mp3_xml)
        assert "So What" in html and "Miles Davis" in html and "jazz" in html
        assert "<table" in html

    def test_view_handles_nested_objects(self):
        xml = ("<pattern><name>Observer</name>"
               "<solution><structure>subject notifies</structure></solution></pattern>")
        html = StylesheetSet().render_view(xml)
        assert "nested" in html and "subject notifies" in html

    def test_index_filter_extracts_flat_attributes(self, sample_mp3_xml):
        values = StylesheetSet().extract_indexed_attributes(sample_mp3_xml)
        assert values["title"] == ["So What"]
        assert values["artist"] == ["Miles Davis"]

    def test_custom_pattern_view_stylesheet(self, gof_records):
        styles = pattern_stylesheets()
        from repro.schema.instance import build_instance
        from repro.schema.parser import parse_schema_text
        from repro.communities.design_patterns import pattern_schema_xsd
        from repro.xmlkit.serializer import serialize
        schema = parse_schema_text(pattern_schema_xsd())
        instance = build_instance(schema, gof_records[18])  # Observer
        html = styles.render_view(serialize(instance, xml_declaration=False))
        assert "<h1>Observer</h1>" in html
        assert "Participants" in html
        assert "<li>Subject</li>" in html

    def test_custom_index_filter_limits_fields(self, gof_records):
        styles = StylesheetSet(index_filter=PATTERN_INDEX_FILTER_STYLESHEET,
                               view=PATTERN_VIEW_STYLESHEET)
        from repro.schema.instance import build_instance
        from repro.schema.parser import parse_schema_text
        from repro.communities.design_patterns import pattern_schema_xsd
        from repro.xmlkit.serializer import serialize
        schema = parse_schema_text(pattern_schema_xsd())
        instance = build_instance(schema, gof_records[0])
        values = styles.extract_indexed_attributes(serialize(instance, xml_declaration=False))
        assert set(values) <= {"name", "category", "intent", "keywords",
                               "applicability", "consequences"}
        assert "sample_code" not in values


class TestCreateForm:
    def test_fields_from_schema(self, mp3_schema):
        form = CreateForm.from_schema("MP3s", mp3_schema)
        paths = [field.path for field in form.fields]
        assert "title" in paths and "file" in paths
        by_path = {field.path: field for field in form.fields}
        assert by_path["genre"].input_type == "select"
        assert by_path["bitrate"].input_type == "number"
        assert by_path["file"].input_type == "url"
        assert by_path["year"].required is False

    def test_submit_builds_valid_instance(self, mp3_schema):
        form = CreateForm.from_schema("MP3s", mp3_schema)
        document, report = form.submit(mp3_schema, {
            "title": "Blue in Green", "artist": "Miles Davis", "album": "Kind of Blue",
            "genre": "jazz", "bitrate": "256",
        })
        assert report.is_valid
        assert document.child_text("title") == "Blue in Green"

    def test_submit_strict_raises_on_invalid(self, mp3_schema):
        form = CreateForm.from_schema("MP3s", mp3_schema)
        with pytest.raises(InvalidObjectError):
            form.submit_strict(mp3_schema, {"title": "x", "artist": "y", "album": "z",
                                            "genre": "polka", "bitrate": "192"})

    def test_html_rendering(self, mp3_schema):
        html = CreateForm.from_schema("MP3s", mp3_schema).to_html()
        assert "<select" in html and "<option" in html
        assert 'type="number"' in html
        assert "required" in html


class TestSearchForm:
    def test_only_searchable_fields(self, mp3_schema):
        form = SearchForm.from_schema("MP3s", mp3_schema)
        paths = {field.path for field in form.fields}
        assert paths == {"title", "artist", "album", "genre"}

    def test_submit_builds_query(self, mp3_schema):
        form = SearchForm.from_schema("MP3s", mp3_schema)
        query = form.submit("mp3s", {"artist": "Miles Davis", "title": ""})
        assert len(query.criteria) == 1
        assert query.criteria[0].field_path == "artist"
        assert query.criteria[0].operator == Operator.CONTAINS

    def test_enumerated_fields_use_equals(self, mp3_schema):
        form = SearchForm.from_schema("MP3s", mp3_schema)
        query = form.submit("mp3s", {"genre": "jazz"})
        assert query.criteria[0].operator == Operator.EQUALS

    def test_unknown_fields_ignored(self, mp3_schema):
        form = SearchForm.from_schema("MP3s", mp3_schema)
        query = form.submit("mp3s", {"composer": "Bach"})
        assert query.is_empty

    def test_keyword_query(self, mp3_schema):
        form = SearchForm.from_schema("MP3s", mp3_schema)
        query = form.keyword_query("mp3s", "kind of blue")
        assert query.criteria[0].operator == Operator.ANY

    def test_html_rendering(self, mp3_schema):
        html = SearchForm.from_schema("MP3s", mp3_schema).to_html()
        assert "up2p-search" in html and 'name="artist"' in html
