"""Tests for communities, descriptors and the Fig. 3 bootstrap schema."""

import pytest

from repro.core.community import (
    COMMUNITY_SCHEMA_XSD,
    Community,
    CommunityDescriptor,
    KNOWN_PROTOCOLS,
    ROOT_COMMUNITY_ID,
    community_schema,
    derive_community_id,
    root_community,
)
from repro.core.errors import CommunityError
from repro.core.resource import Resource
from repro.schema.validator import validate


class TestBootstrapSchema:
    """The reproduction of paper Fig. 3."""

    def test_fields_match_figure_3(self):
        schema = community_schema()
        assert [info.path for info in schema.fields()] == [
            "name", "description", "keywords", "category", "security",
            "protocol", "schema", "displaystyle", "createstyle", "searchstyle",
        ]

    def test_protocol_enumeration_matches_figure_3(self):
        schema = community_schema()
        assert schema.field_by_path("protocol").enumeration == list(KNOWN_PROTOCOLS)

    def test_community_objects_validate(self):
        descriptor = CommunityDescriptor(name="MP3s", protocol="Gnutella",
                                         schema_uri="http://x/mp3.xsd")
        report = validate(community_schema(), descriptor.to_xml())
        assert report.is_valid

    def test_schema_text_is_verbatim_xsd(self):
        assert '<enumeration value="Napster"/>' in COMMUNITY_SCHEMA_XSD
        assert '<element name="displaystyle" type="xsd:anyURI"/>' in COMMUNITY_SCHEMA_XSD


class TestCommunityDescriptor:
    def test_requires_name(self):
        with pytest.raises(CommunityError):
            CommunityDescriptor(name="   ")

    def test_rejects_unknown_protocol(self):
        with pytest.raises(CommunityError):
            CommunityDescriptor(name="x", protocol="Freenet")

    def test_xml_roundtrip(self):
        descriptor = CommunityDescriptor(
            name="Design Patterns", description="GoF and more", keywords="patterns gof",
            category="software", security="none", protocol="Gnutella",
            schema_uri="up2p:patterns/schema.xsd", displaystyle="up2p:patterns/view.xsl",
        )
        again = CommunityDescriptor.from_xml_text(descriptor.to_xml_text())
        assert again == descriptor

    def test_from_xml_rejects_wrong_root(self):
        with pytest.raises(CommunityError):
            CommunityDescriptor.from_xml_text("<group><name>x</name></group>")


class TestCommunity:
    def test_community_id_stable(self, mp3_xsd):
        assert derive_community_id("MP3s", mp3_xsd) == derive_community_id("MP3s", mp3_xsd)
        assert derive_community_id("MP3s", mp3_xsd) != derive_community_id("Other", mp3_xsd)

    def test_community_id_ignores_whitespace_differences(self, mp3_xsd):
        assert derive_community_id("MP3s", mp3_xsd) == derive_community_id("MP3s", mp3_xsd.replace("\n", " \n "))

    def test_community_parses_its_schema(self, mp3_xsd):
        community = Community(CommunityDescriptor(name="MP3s"), mp3_xsd)
        assert community.root_element_name == "mp3"
        assert "title" in community.searchable_field_paths()

    def test_bad_schema_rejected(self):
        with pytest.raises(CommunityError):
            Community(CommunityDescriptor(name="broken"), "<not-a-schema/>")

    def test_validate_object(self, mp3_xsd, sample_mp3_document):
        community = Community(CommunityDescriptor(name="MP3s"), mp3_xsd)
        assert community.validate_object(sample_mp3_document).is_valid

    def test_extract_metadata_searchable_only(self, mp3_xsd, sample_mp3_xml):
        community = Community(CommunityDescriptor(name="MP3s"), mp3_xsd)
        resource = Resource.from_xml_text(community.community_id, sample_mp3_xml)
        metadata = community.extract_metadata(resource)
        assert "title" in metadata and "artist" in metadata
        assert "bitrate" not in metadata          # not marked searchable
        assert metadata["__attachments__"] == ["http://peer.local/audio/so-what.mp3"]

    def test_index_filter_fields_override(self, mp3_xsd, sample_mp3_xml):
        community = Community(CommunityDescriptor(name="MP3s"), mp3_xsd,
                              index_filter_fields=("title", "bitrate"))
        resource = Resource.from_xml_text(community.community_id, sample_mp3_xml)
        metadata = community.extract_metadata(resource)
        assert set(metadata) == {"title", "bitrate", "__attachments__"}

    def test_to_resource_and_back(self, mp3_xsd):
        descriptor = CommunityDescriptor(name="MP3s", schema_uri="up2p:mp3.xsd", protocol="Napster")
        community = Community(descriptor, mp3_xsd)
        resource = community.to_resource()
        assert resource.community_id == ROOT_COMMUNITY_ID
        assert resource.title == "MP3s"
        rebuilt = Community.from_resource(resource, mp3_xsd)
        assert rebuilt.descriptor == descriptor
        assert rebuilt.community_id == community.community_id

    def test_with_descriptor(self, mp3_xsd):
        community = Community(CommunityDescriptor(name="MP3s"), mp3_xsd)
        narrowed = community.with_descriptor(description="only Miles Davis")
        assert narrowed.descriptor.description == "only Miles Davis"
        assert narrowed.descriptor.name == "MP3s"


class TestRootCommunity:
    def test_root_community_shares_community_objects(self):
        root = root_community()
        assert root.community_id == ROOT_COMMUNITY_ID
        assert root.root_element_name == "community"

    def test_metaclass_move_community_object_of_root_validates(self):
        """A community object is itself a valid object of the root community —
        the paper's metaclass analogy."""
        root = root_community()
        mp3_community_object = CommunityDescriptor(
            name="MP3s", protocol="Gnutella", schema_uri="up2p:mp3.xsd"
        ).to_xml()
        assert root.validate_object(mp3_community_object).is_valid

    def test_root_community_searchable_fields_include_keywords(self):
        root = root_community()
        assert "keywords" in root.searchable_field_paths()
        assert "name" in root.searchable_field_paths()
