"""Tests for the servent: Create / Search / View / download / communities."""

import pytest

from repro.core.community import ROOT_COMMUNITY_ID
from repro.core.errors import CommunityError, InvalidObjectError, NotAMemberError
from repro.core.resource import Resource
from repro.communities.mp3 import mp3_schema_xsd


@pytest.fixture()
def alice_with_mp3s(two_servents):
    alice, bob = two_servents
    community = alice.create_community(
        "MP3 community", mp3_schema_xsd(),
        description="share music metadata", keywords="music mp3 audio",
    )
    return alice, bob, community


class TestCreateFunction:
    def test_create_object_publishes_and_indexes(self, alice_with_mp3s):
        alice, _, community = alice_with_mp3s
        resource = alice.create_object(community.community_id, {
            "title": "So What", "artist": "Miles Davis", "album": "Kind of Blue",
            "genre": "jazz", "bitrate": "192",
        })
        assert alice.repository.documents.contains(resource.resource_id)
        stats = alice.statistics()
        assert stats["objects"] == 2        # community object + the MP3
        assert stats["index_entries"] > 0

    def test_create_requires_membership(self, two_servents):
        _, bob = two_servents
        with pytest.raises(NotAMemberError):
            bob.create_object("community-unknown", {"title": "x"})

    def test_invalid_object_rejected(self, alice_with_mp3s):
        alice, _, community = alice_with_mp3s
        with pytest.raises(InvalidObjectError):
            alice.create_object(community.community_id, {
                "title": "x", "artist": "y", "album": "z", "genre": "polka", "bitrate": "192",
            })

    def test_non_strict_accepts_invalid(self, alice_with_mp3s):
        alice, _, community = alice_with_mp3s
        with pytest.raises(InvalidObjectError):
            # still rejected at publish because the community validates it
            alice.create_object(community.community_id, {
                "title": "x", "artist": "y", "album": "z", "genre": "polka", "bitrate": "192",
            }, strict=False)

    def test_publish_resource_from_xml(self, alice_with_mp3s, sample_mp3_xml):
        alice, _, community = alice_with_mp3s
        resource = Resource.from_xml_text(community.community_id, sample_mp3_xml)
        result = alice.publish_resource(resource)
        assert alice.repository.documents.contains(result.resource_id)
        assert alice.repository.attachments.has("http://peer.local/audio/so-what.mp3")

    def test_create_form_and_rendering(self, alice_with_mp3s):
        alice, _, community = alice_with_mp3s
        form = alice.create_form(community.community_id)
        assert any(field.path == "title" for field in form.fields)
        assert "up2p-create" in alice.render_create_form(community.community_id)
        assert "up2p-search" in alice.render_search_form(community.community_id)


class TestSearchAndDownload:
    def seed(self, alice, community):
        return alice.create_object(community.community_id, {
            "title": "Blue in Green", "artist": "Miles Davis", "album": "Kind of Blue",
            "genre": "jazz", "bitrate": "256",
            "file": "http://peer.local/audio/big.mp3",
        })

    def test_search_requires_membership(self, alice_with_mp3s):
        _, bob, community = alice_with_mp3s
        with pytest.raises(NotAMemberError):
            bob.search(community.community_id, "miles davis")

    def test_keyword_search(self, alice_with_mp3s):
        alice, bob, community = alice_with_mp3s
        self.seed(alice, community)
        bob.join_community(community)
        response = bob.search(community.community_id, "miles davis")
        assert response.result_count == 1
        assert response.results[0].provider_id == "alice"

    def test_field_search(self, alice_with_mp3s):
        alice, bob, community = alice_with_mp3s
        self.seed(alice, community)
        bob.join_community(community)
        response = bob.search(community.community_id, {"album": "kind of blue"})
        assert response.result_count == 1
        miss = bob.search(community.community_id, {"album": "bitches brew"})
        assert miss.result_count == 0

    def test_browse(self, alice_with_mp3s):
        alice, bob, community = alice_with_mp3s
        self.seed(alice, community)
        bob.join_community(community)
        assert bob.browse(community.community_id).result_count == 1

    def test_download_replicates_and_fetches_attachments(self, alice_with_mp3s):
        alice, bob, community = alice_with_mp3s
        self.seed(alice, community)
        bob.join_community(community)
        result = bob.search(community.community_id, "blue in green").results[0]
        downloaded = bob.download(result)
        assert downloaded.resource.community_id == community.community_id
        assert bob.repository.documents.contains(downloaded.resource_id)
        assert downloaded.retrieve.attachments_transferred == 1
        assert bob.repository.attachments.has("http://peer.local/audio/big.mp3")

    def test_view_downloaded_object(self, alice_with_mp3s):
        alice, bob, community = alice_with_mp3s
        self.seed(alice, community)
        bob.join_community(community)
        result = bob.search(community.community_id, "blue in green").results[0]
        downloaded = bob.download(result)
        html = bob.view(downloaded.resource_id)
        assert "Blue in Green" in html and "Miles Davis" in html

    def test_local_objects_listing(self, alice_with_mp3s):
        alice, _, community = alice_with_mp3s
        self.seed(alice, community)
        assert len(alice.local_objects(community.community_id)) == 1
        assert len(alice.local_objects()) == 2


class TestCommunityOperations:
    def test_create_community_publishes_to_root(self, alice_with_mp3s):
        alice, _, community = alice_with_mp3s
        root_objects = alice.local_objects(ROOT_COMMUNITY_ID)
        assert len(root_objects) == 1
        assert alice.registry.is_joined(community.community_id)
        assert alice.filespace.has(community.descriptor.schema_uri)

    def test_discovery_and_join(self, alice_with_mp3s):
        _, bob, community = alice_with_mp3s
        found = bob.search_communities("music")
        assert any(result.title == "MP3 community" for result in found.results)
        joined = bob.join_community(found.results[0])
        assert joined.community_id == community.community_id
        assert bob.registry.is_joined(community.community_id)
        # Joining downloads the community object, so Bob now also shares it.
        assert len(bob.local_objects(ROOT_COMMUNITY_ID)) == 1

    def test_browse_all_communities(self, alice_with_mp3s):
        _, bob, _ = alice_with_mp3s
        assert bob.search_communities().result_count == 1

    def test_join_requires_root_community_result(self, alice_with_mp3s):
        alice, bob, community = alice_with_mp3s
        alice.create_object(community.community_id, {
            "title": "t", "artist": "a", "album": "b", "genre": "jazz", "bitrate": "128",
        })
        bob.join_community(community)
        mp3_result = bob.search(community.community_id, "t").results[0]
        with pytest.raises(CommunityError):
            bob.join_community(mp3_result)

    def test_join_with_dangling_schema_uri_fails(self, alice_with_mp3s):
        alice, bob, _ = alice_with_mp3s
        # A community whose schema URI was never published to the file space.
        from repro.core.community import Community, CommunityDescriptor
        rogue = Community(CommunityDescriptor(name="Rogue", schema_uri="up2p:rogue/missing.xsd"),
                          mp3_schema_xsd())
        alice.registry.join(rogue)
        alice.peer.join_community(rogue.community_id)
        alice.publish_resource(rogue.to_resource())
        found = [r for r in bob.search_communities("rogue").results if r.title == "Rogue"]
        with pytest.raises(CommunityError):
            bob.join_community(found[0])

    def test_custom_stylesheets_travel_with_community(self, two_servents):
        from repro.communities.design_patterns import design_pattern_community
        alice, bob = two_servents
        definition = design_pattern_community()
        community = definition.create_on(alice)
        # The custom view stylesheet is reachable by URI for joiners.
        assert alice.filespace.has(community.descriptor.schema_uri)
        found = bob.search_communities("patterns").results[0]
        joined = bob.join_community(found)
        assert joined.community_id == community.community_id

    def test_joined_communities_listing(self, alice_with_mp3s):
        alice, _, community = alice_with_mp3s
        names = {c.name for c in alice.joined_communities()}
        assert {"Community", "MP3 community"} <= names

    def test_statistics_include_memberships(self, alice_with_mp3s):
        alice, _, _ = alice_with_mp3s
        assert alice.statistics()["joined_communities"] == 2
