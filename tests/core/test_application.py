"""Tests for the generated application façade."""

import pytest

from repro.core.application import Application
from repro.core.errors import InvalidObjectError
from repro.communities.mp3 import mp3_schema_xsd


class TestGeneratedApplication:
    def test_generate_creates_and_joins_community(self, two_servents):
        alice, _ = two_servents
        application = Application.generate(alice, "MP3 community", mp3_schema_xsd(),
                                           keywords="music mp3")
        assert application.object_name == "mp3"
        assert alice.registry.is_joined(application.community.community_id)

    def test_publish_and_search(self, mp3_application):
        mp3_application.publish({
            "title": "So What", "artist": "Miles Davis", "album": "Kind of Blue",
            "genre": "jazz", "bitrate": "192",
        })
        response = mp3_application.search("so what")
        assert response.result_count == 1
        assert mp3_application.browse().result_count == 1
        assert len(mp3_application.shared_objects()) == 1

    def test_publish_xml(self, mp3_application, sample_mp3_xml):
        resource = mp3_application.publish_xml(sample_mp3_xml)
        assert mp3_application.search({"artist": "miles davis"}).result_count == 1
        assert resource.community_id == mp3_application.community.community_id

    def test_publish_invalid_rejected(self, mp3_application):
        with pytest.raises(InvalidObjectError):
            mp3_application.publish({"title": "x", "artist": "y", "album": "z",
                                     "genre": "polka", "bitrate": "192"})

    def test_generated_pages(self, mp3_application):
        create_html = mp3_application.create_page_html()
        search_html = mp3_application.search_page_html()
        assert "up2p-create" in create_html and 'name="title"' in create_html
        assert "up2p-search" in search_html

    def test_forms_follow_schema(self, mp3_application):
        assert {field.path for field in mp3_application.search_form().fields} == {
            "title", "artist", "album", "genre",
        }
        assert any(field.path == "bitrate" for field in mp3_application.create_form().fields)

    def test_view_resource(self, mp3_application):
        resource = mp3_application.publish({
            "title": "Blue Train", "artist": "John Coltrane", "album": "Blue Train",
            "genre": "jazz", "bitrate": "256",
        })
        html = mp3_application.view(resource.resource_id)
        assert "Blue Train" in html
        assert "John Coltrane" in mp3_application.view_resource(resource)

    def test_second_peer_application_via_join(self, joined_pattern_apps, gof_records):
        alice_app, bob_app = joined_pattern_apps
        alice_app.publish(gof_records[18])           # Observer
        response = bob_app.search("observer")
        assert response.result_count == 1
        downloaded = bob_app.download(response.results[0])
        html = bob_app.view(downloaded.resource_id)
        # Bob joined with the community's custom view stylesheet.
        assert "<h1>Observer</h1>" in html

    def test_case_study_index_filter_applied(self, pattern_application, gof_records):
        pattern_application.publish(gof_records[0])
        servent = pattern_application.servent
        community_id = pattern_application.community.community_id
        indexed_fields = servent.repository.index.fields_for(community_id)
        assert "sample_code" not in indexed_fields
        assert "name" in indexed_fields and "intent" in indexed_fields
