"""Tests for the community registry and the shared file space."""

import pytest

from repro.core.community import Community, CommunityDescriptor, ROOT_COMMUNITY_ID
from repro.core.errors import CommunityError, NotAMemberError
from repro.core.filespace import FileSpace, filespace_for
from repro.core.registry import CommunityRegistry
from repro.communities.mp3 import mp3_schema_xsd
from repro.network.centralized import CentralizedProtocol


def make_community(name="MP3s"):
    return Community(CommunityDescriptor(name=name), mp3_schema_xsd())


class TestRegistry:
    def test_root_joined_by_default(self):
        registry = CommunityRegistry()
        assert registry.is_joined(ROOT_COMMUNITY_ID)
        assert registry.root.name == "Community"
        assert len(registry) == 1

    def test_join_and_leave(self):
        registry = CommunityRegistry()
        community = make_community()
        registry.join(community)
        assert registry.is_joined(community.community_id)
        registry.leave(community.community_id)
        assert not registry.is_joined(community.community_id)
        # Still known even after leaving.
        assert registry.get(community.community_id) is community

    def test_cannot_leave_root(self):
        registry = CommunityRegistry()
        with pytest.raises(CommunityError):
            registry.leave(ROOT_COMMUNITY_ID)

    def test_require_joined(self):
        registry = CommunityRegistry()
        community = make_community()
        registry.register(community)
        with pytest.raises(NotAMemberError) as error:
            registry.require_joined(community.community_id)
        assert "not a member" in str(error.value)
        registry.join(community)
        assert registry.require_joined(community.community_id) is community

    def test_require_joined_unknown_community(self):
        with pytest.raises(NotAMemberError):
            CommunityRegistry().require_joined("community-doesnotexist")

    def test_find_by_name_case_insensitive(self):
        registry = CommunityRegistry()
        community = make_community("Design Patterns")
        registry.register(community)
        assert registry.find_by_name("design patterns") is community
        assert registry.find_by_name("nope") is None

    def test_joined_ids_sorted(self):
        registry = CommunityRegistry()
        registry.join(make_community("B community"))
        registry.join(make_community("A community"))
        assert registry.joined_ids() == sorted(registry.joined_ids())


class TestFileSpace:
    def test_put_get(self):
        space = FileSpace()
        space.put("up2p:mp3/schema.xsd", "<schema/>")
        assert space.get("up2p:mp3/schema.xsd") == "<schema/>"
        assert space.has("up2p:mp3/schema.xsd")
        assert len(space) == 1
        assert space.fetches == 1

    def test_get_missing_returns_none(self):
        assert FileSpace().get("up2p:none") is None

    def test_empty_uri_rejected(self):
        with pytest.raises(ValueError):
            FileSpace().put("  ", "x")

    def test_filespace_shared_per_network(self):
        network = CentralizedProtocol()
        space_a = filespace_for(network)
        space_b = filespace_for(network)
        assert space_a is space_b
        other = filespace_for(CentralizedProtocol())
        assert other is not space_a
