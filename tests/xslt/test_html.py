"""Tests for HTML serialization of result trees."""

from repro.xmlkit.dom import Element
from repro.xmlkit.parser import parse
from repro.xslt.html import render_html, render_page


class TestRenderHtml:
    def test_void_elements_not_closed(self):
        tree = parse('<div><input type="text" name="title"/><br/></div>').root
        html = render_html([tree])
        assert '<input type="text" name="title">' in html
        assert "<br>" in html
        assert "</input>" not in html and "</br>" not in html

    def test_non_void_empty_elements_get_end_tags(self):
        html = render_html([parse("<div><td></td></div>").root])
        assert "<td></td>" in html

    def test_boolean_attributes_minimized(self):
        element = Element("input", {"type": "text", "disabled": "disabled"})
        html = render_html([element])
        assert " disabled" in html and 'disabled="' not in html

    def test_text_escaping(self):
        element = Element("p", text="a < b & c")
        assert render_html([element]) == "<p>a &lt; b &amp; c</p>"

    def test_mixed_nodes_and_strings(self):
        html = render_html(["hello ", Element("b", text="world")])
        assert html == "hello <b>world</b>"

    def test_nested_structure_with_tails(self):
        tree = parse("<p>a<b>c</b>d</p>").root
        assert render_html([tree]) == "<p>a<b>c</b>d</p>"

    def test_tag_case_lowered(self):
        assert render_html([Element("DIV")]) == "<div></div>"


class TestRenderPage:
    def test_page_skeleton(self):
        page = render_page(Element("h1", text="U-P2P"), title="Create")
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>Create</title>" in page
        assert "<h1>U-P2P</h1>" in page

    def test_page_accepts_prerendered_fragment(self):
        page = render_page("<p>already html</p>")
        assert "<p>already html</p>" in page
