"""Tests for XSLT match-pattern evaluation."""

import pytest

from repro.xmlkit.parser import parse
from repro.xslt.patterns import pattern_matches

DOCUMENT = parse("""
<pattern category="behavioral">
  <name>Observer</name>
  <solution>
    <structure>subject and observers</structure>
    <participants>Subject</participants>
    <participants>Observer</participants>
  </solution>
</pattern>
""", keep_whitespace_text=False)

ROOT = DOCUMENT.root
NAME = ROOT.find("name")
SOLUTION = ROOT.find("solution")
STRUCTURE = SOLUTION.find("structure")
FIRST_PARTICIPANT = SOLUTION.find_all("participants")[0]
SECOND_PARTICIPANT = SOLUTION.find_all("participants")[1]


class TestNamePatterns:
    def test_element_name(self):
        assert pattern_matches("name", NAME)
        assert not pattern_matches("name", STRUCTURE)

    def test_wildcard(self):
        assert pattern_matches("*", NAME)
        assert pattern_matches("*", ROOT)

    def test_node(self):
        assert pattern_matches("node()", NAME)

    def test_text_pattern_matches_strings(self):
        assert pattern_matches("text()", "some text")
        assert pattern_matches("node()", "some text")
        assert not pattern_matches("name", "some text")

    def test_root_pattern(self):
        assert pattern_matches("/", ROOT, is_root=True)
        assert not pattern_matches("/", ROOT)
        assert not pattern_matches("name", NAME, is_root=True)


class TestPathPatterns:
    def test_parent_path(self):
        assert pattern_matches("solution/structure", STRUCTURE)
        assert not pattern_matches("pattern/structure", STRUCTURE)

    def test_longer_path(self):
        assert pattern_matches("pattern/solution/structure", STRUCTURE)

    def test_ancestor_path(self):
        assert pattern_matches("pattern//structure", STRUCTURE)
        assert pattern_matches("pattern//participants", FIRST_PARTICIPANT)
        assert not pattern_matches("solution//name", NAME)

    def test_absolute_single_step(self):
        assert pattern_matches("/pattern", ROOT)
        assert not pattern_matches("/name", NAME)

    def test_alternatives(self):
        assert pattern_matches("name | structure", NAME)
        assert pattern_matches("name | structure", STRUCTURE)
        assert not pattern_matches("name | structure", SOLUTION)


class TestPredicates:
    def test_attribute_predicate(self):
        assert pattern_matches("pattern[@category='behavioral']", ROOT)
        assert not pattern_matches("pattern[@category='creational']", ROOT)

    def test_attribute_existence(self):
        assert pattern_matches("pattern[@category]", ROOT)
        assert not pattern_matches("name[@category]", NAME)

    def test_positional_predicate(self):
        assert pattern_matches("participants[1]", FIRST_PARTICIPANT)
        assert not pattern_matches("participants[1]", SECOND_PARTICIPANT)
        assert pattern_matches("participants[2]", SECOND_PARTICIPANT)

    def test_child_value_predicate(self):
        assert pattern_matches("pattern[name='Observer']", ROOT)
        assert not pattern_matches("pattern[name='Visitor']", ROOT)

    def test_predicate_on_path(self):
        assert pattern_matches("solution/participants[2]", SECOND_PARTICIPANT)


class TestEdgeCases:
    def test_empty_pattern_never_matches(self):
        assert not pattern_matches("", NAME)
        assert not pattern_matches("   ", NAME)

    @pytest.mark.parametrize("pattern", ["name", "pattern/name", "pattern//name"])
    def test_patterns_do_not_match_root_marker(self, pattern):
        assert not pattern_matches(pattern, ROOT, is_root=True)
