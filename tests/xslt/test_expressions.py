"""Tests for XPath-expression evaluation in select/test attributes."""

import pytest

from repro.xmlkit.parser import parse
from repro.xslt.errors import XSLTRuntimeError
from repro.xslt.expressions import (
    EvalContext,
    evaluate,
    evaluate_boolean,
    evaluate_string,
    to_boolean,
    to_number,
    to_string,
)

DOCUMENT = parse("""
<community>
  <name>Design Patterns</name>
  <keywords>software patterns gof</keywords>
  <protocol>Gnutella</protocol>
  <members>42</members>
  <empty></empty>
</community>
""", keep_whitespace_text=False)


@pytest.fixture()
def context():
    return EvalContext(node=DOCUMENT.root, position=2, size=5, variables={"who": "alice"})


class TestPrimaries:
    def test_string_literals(self, context):
        assert evaluate("'hello'", context) == "hello"
        assert evaluate('"double"', context) == "double"

    def test_numbers(self, context):
        assert evaluate("42", context) == 42.0
        assert evaluate("-3.5", context) == -3.5

    def test_location_path(self, context):
        assert evaluate_string("name", context) == "Design Patterns"
        assert evaluate_string("missing", context) == ""

    def test_attribute_and_dot(self):
        node = parse("<field name='title'>x</field>").root
        context = EvalContext(node=node)
        assert evaluate_string("@name", context) == "title"
        assert evaluate_string(".", context) == "x"

    def test_variables(self, context):
        assert evaluate_string("$who", context) == "alice"

    def test_undefined_variable_raises(self, context):
        with pytest.raises(XSLTRuntimeError):
            evaluate("$nobody", context)


class TestFunctions:
    def test_concat(self, context):
        assert evaluate_string("concat('a', 'b', name)", context) == "abDesign Patterns"

    def test_name_and_local_name(self, context):
        assert evaluate_string("name()", context) == "community"
        assert evaluate_string("local-name()", context) == "community"
        assert evaluate_string("name(name)", context) == "name"

    def test_position_and_last(self, context):
        assert evaluate("position()", context) == 2.0
        assert evaluate("last()", context) == 5.0

    def test_count(self, context):
        assert evaluate("count(*)", context) == 5.0
        assert evaluate("count(missing)", context) == 0.0

    def test_string_length(self, context):
        assert evaluate("string-length('abc')", context) == 3.0

    def test_normalize_space(self, context):
        assert evaluate_string("normalize-space('  a   b ')", context) == "a b"

    def test_not(self, context):
        assert evaluate("not(missing)", context) is True
        assert evaluate("not(name)", context) is False

    def test_true_false(self, context):
        assert evaluate("true()", context) is True
        assert evaluate("false()", context) is False

    def test_contains_and_starts_with(self, context):
        assert evaluate("contains(keywords, 'patterns')", context) is True
        assert evaluate("contains(keywords, 'music')", context) is False
        assert evaluate("starts-with(protocol, 'Gnu')", context) is True

    def test_substring(self, context):
        assert evaluate_string("substring('abcdef', 2, 3)", context) == "bcd"
        assert evaluate_string("substring('abcdef', 4)", context) == "def"

    def test_translate(self, context):
        assert evaluate_string("translate('abc', 'abc', 'xyz')", context) == "xyz"
        assert evaluate_string("translate('abc', 'b', '')", context) == "ac"

    def test_unknown_function_raises(self, context):
        with pytest.raises(XSLTRuntimeError):
            evaluate("generate-id()", context)


class TestComparisonsAndLogic:
    def test_equality_with_node_set(self, context):
        assert evaluate_boolean("protocol = 'Gnutella'", context)
        assert not evaluate_boolean("protocol = 'Napster'", context)
        assert evaluate_boolean("protocol != 'Napster'", context)

    def test_numeric_comparisons(self, context):
        assert evaluate_boolean("members > 10", context)
        assert evaluate_boolean("members >= 42", context)
        assert not evaluate_boolean("members < 42", context)
        assert evaluate_boolean("count(*) <= 5", context)

    def test_boolean_connectives(self, context):
        assert evaluate_boolean("protocol = 'Gnutella' and members > 10", context)
        assert evaluate_boolean("protocol = 'Napster' or members > 10", context)
        assert not evaluate_boolean("protocol = 'Napster' and members > 10", context)

    def test_existence_tests(self, context):
        assert evaluate_boolean("name", context)
        assert not evaluate_boolean("missing", context)
        assert evaluate_boolean("empty", context)  # element exists even if empty


class TestCoercions:
    def test_to_string(self):
        assert to_string(True) == "true"
        assert to_string(False) == "false"
        assert to_string(3.0) == "3"
        assert to_string(3.5) == "3.5"
        assert to_string([]) == ""

    def test_to_boolean(self):
        assert to_boolean("x") and not to_boolean("")
        assert to_boolean(1.0) and not to_boolean(0.0)
        assert to_boolean(["node"]) and not to_boolean([])

    def test_to_number(self):
        assert to_number("42") == 42.0
        assert to_number(True) == 1.0
        assert to_number("abc") != to_number("abc")  # NaN
