"""Tests for the XSLT transformation engine."""

import pytest

from repro.xmlkit.parser import parse
from repro.xslt.engine import Transformer, transform
from repro.xslt.errors import XSLTParseError, XSLTRuntimeError
from repro.xslt.parser import parse_stylesheet_text

XSL_HEADER = '<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">'


def run(stylesheet_body, source_xml, parameters=None, output="xml"):
    stylesheet = parse_stylesheet_text(
        f'<?xml version="1.0"?>{XSL_HEADER}<xsl:output method="{output}"/>{stylesheet_body}</xsl:stylesheet>'
    )
    source = parse(source_xml, keep_whitespace_text=False)
    return transform(stylesheet, source, parameters)


SOURCE = (
    "<community><name>mp3</name><description>songs</description>"
    "<protocol>Gnutella</protocol><keywords>music audio</keywords></community>"
)


class TestBasicInstructions:
    def test_value_of(self):
        result = run('<xsl:template match="/"><out><xsl:value-of select="community/name"/></out></xsl:template>',
                     SOURCE)
        assert result.to_xml() == "<out>mp3</out>"

    def test_literal_elements_and_text(self):
        result = run('<xsl:template match="/"><p>static text</p></xsl:template>', SOURCE)
        assert result.to_xml() == "<p>static text</p>"

    def test_xsl_text(self):
        result = run('<xsl:template match="/"><out><xsl:text>kept  spaces</xsl:text></out></xsl:template>',
                     SOURCE)
        assert "kept  spaces" in result.to_xml()

    def test_attribute_value_template(self):
        result = run('<xsl:template match="/"><div class="{community/protocol}"/></xsl:template>', SOURCE)
        assert result.root.get("class") == "Gnutella"

    def test_escaped_braces_in_avt(self):
        result = run('<xsl:template match="/"><div class="{{literal}}"/></xsl:template>', SOURCE)
        assert result.root.get("class") == "{literal}"

    def test_xsl_element_and_attribute(self):
        result = run(
            '<xsl:template match="/">'
            '<xsl:element name="row"><xsl:attribute name="id">r1</xsl:attribute>x</xsl:element>'
            "</xsl:template>",
            SOURCE,
        )
        assert result.to_xml() == '<row id="r1">x</row>'

    def test_dynamic_element_name(self):
        result = run(
            '<xsl:template match="/"><xsl:element name="{community/name}">x</xsl:element></xsl:template>',
            SOURCE,
        )
        assert result.root.tag == "mp3"

    def test_copy_of_deep_copies(self):
        result = run('<xsl:template match="/"><wrap><xsl:copy-of select="community/name"/></wrap></xsl:template>',
                     SOURCE)
        assert result.to_xml() == "<wrap><name>mp3</name></wrap>"

    def test_for_each(self):
        result = run(
            '<xsl:template match="/"><list><xsl:for-each select="community/*">'
            '<item><xsl:value-of select="name()"/></item></xsl:for-each></list></xsl:template>',
            SOURCE,
        )
        assert result.to_xml() == (
            "<list><item>name</item><item>description</item>"
            "<item>protocol</item><item>keywords</item></list>"
        )

    def test_for_each_with_sort(self):
        result = run(
            '<xsl:template match="/"><list><xsl:for-each select="community/*">'
            '<xsl:sort select="name()"/>'
            '<i><xsl:value-of select="name()"/></i></xsl:for-each></list></xsl:template>',
            SOURCE,
        )
        names = [child.text for child in result.root.children]
        assert names == sorted(names)

    def test_if_and_choose(self):
        body = (
            '<xsl:template match="/"><out>'
            '<xsl:if test="community/protocol = \'Gnutella\'"><yes/></xsl:if>'
            "<xsl:choose>"
            '<xsl:when test="count(community/*) &gt; 10"><many/></xsl:when>'
            "<xsl:otherwise><few/></xsl:otherwise>"
            "</xsl:choose></out></xsl:template>"
        )
        result = run(body, SOURCE)
        assert result.to_xml() == "<out><yes/><few/></out>"

    def test_variable(self):
        body = (
            '<xsl:template match="/">'
            '<xsl:variable name="proto" select="community/protocol"/>'
            '<out><xsl:value-of select="$proto"/></out></xsl:template>'
        )
        assert run(body, SOURCE).to_xml() == "<out>Gnutella</out>"


class TestTemplates:
    def test_apply_templates_with_match_rules(self):
        body = (
            '<xsl:template match="/"><doc><xsl:apply-templates select="community/*"/></doc></xsl:template>'
            '<xsl:template match="name"><title><xsl:value-of select="."/></title></xsl:template>'
            '<xsl:template match="*"><other name="{name()}"/></xsl:template>'
        )
        result = run(body, SOURCE)
        xml = result.to_xml()
        assert "<title>mp3</title>" in xml
        assert xml.count("<other") == 3

    def test_priority_overrides_default(self):
        body = (
            '<xsl:template match="/"><doc><xsl:apply-templates select="community/name"/></doc></xsl:template>'
            '<xsl:template match="name" priority="2"><high/></xsl:template>'
            '<xsl:template match="community/name"><specific/></xsl:template>'
        )
        assert "<high/>" in run(body, SOURCE).to_xml()

    def test_more_specific_pattern_wins_by_default(self):
        body = (
            '<xsl:template match="/"><doc><xsl:apply-templates select="community/name"/></doc></xsl:template>'
            '<xsl:template match="name"><generic/></xsl:template>'
            '<xsl:template match="community/name"><specific/></xsl:template>'
        )
        assert "<specific/>" in run(body, SOURCE).to_xml()

    def test_builtin_rules_recurse_to_text(self):
        body = '<xsl:template match="name"><got><xsl:value-of select="."/></got></xsl:template>'
        result = run(body, SOURCE)
        text = result.to_xml()
        # Built-in rules copy the text of unmatched elements and apply the
        # explicit rule for <name>.
        assert "<got>mp3</got>" in text
        assert "songs" in text

    def test_named_template_with_params(self):
        body = (
            '<xsl:template match="/"><out>'
            '<xsl:call-template name="greet"><xsl:with-param name="who" select="community/name"/></xsl:call-template>'
            "</out></xsl:template>"
            '<xsl:template name="greet"><xsl:param name="who"/><hello to="{$who}"/></xsl:template>'
        )
        assert run(body, SOURCE).to_xml() == '<out><hello to="mp3"/></out>'

    def test_call_template_unknown_name_raises(self):
        body = '<xsl:template match="/"><xsl:call-template name="nope"/></xsl:template>'
        with pytest.raises(XSLTRuntimeError):
            run(body, SOURCE)

    def test_apply_templates_default_select(self):
        body = (
            '<xsl:template match="community"><c><xsl:apply-templates/></c></xsl:template>'
            '<xsl:template match="*"><f/></xsl:template>'
        )
        result = run(body, SOURCE)
        assert result.to_xml() == "<c><f/><f/><f/><f/></c>"

    def test_modes(self):
        body = (
            '<xsl:template match="/"><out>'
            '<xsl:apply-templates select="community/name" mode="loud"/>'
            '<xsl:apply-templates select="community/name"/>'
            "</out></xsl:template>"
            '<xsl:template match="name" mode="loud"><LOUD/></xsl:template>'
            '<xsl:template match="name"><quiet/></xsl:template>'
        )
        assert run(body, SOURCE).to_xml() == "<out><LOUD/><quiet/></out>"

    def test_recursion_limit(self):
        body = (
            '<xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>'
            '<xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>'
        )
        with pytest.raises(XSLTRuntimeError):
            run(body, SOURCE)


class TestOutputMethods:
    def test_html_output(self):
        body = '<xsl:template match="/"><html><body><br/><p>x</p></body></html></xsl:template>'
        html = run(body, SOURCE, output="html").serialize()
        assert "<br>" in html and "</p>" in html

    def test_text_output(self):
        body = '<xsl:template match="/"><xsl:value-of select="community/name"/></xsl:template>'
        assert run(body, SOURCE, output="text").serialize() == "mp3"

    def test_global_params_passed_at_runtime(self):
        stylesheet = parse_stylesheet_text(
            f'{XSL_HEADER}<xsl:param name="greeting" select="\'hi\'"/>'
            '<xsl:template match="/"><out><xsl:value-of select="$greeting"/></out></xsl:template>'
            "</xsl:stylesheet>"
        )
        source = parse(SOURCE)
        assert Transformer(stylesheet).transform(source).to_xml() == "<out>hi</out>"
        assert Transformer(stylesheet).transform(source, {"greeting": "bonjour"}).to_xml() == "<out>bonjour</out>"

    def test_source_tree_not_mutated(self):
        source = parse(SOURCE)
        stylesheet = parse_stylesheet_text(
            f'{XSL_HEADER}<xsl:template match="/"><x/></xsl:template></xsl:stylesheet>'
        )
        Transformer(stylesheet).transform(source)
        assert source.root.parent is None


class TestStylesheetParsing:
    def test_template_requires_match_or_name(self):
        with pytest.raises(XSLTParseError):
            parse_stylesheet_text(f"{XSL_HEADER}<xsl:template><x/></xsl:template></xsl:stylesheet>")

    def test_rejects_non_stylesheet_root(self):
        with pytest.raises(XSLTParseError):
            parse_stylesheet_text("<community/>")

    def test_rejects_import(self):
        with pytest.raises(XSLTParseError):
            parse_stylesheet_text(
                f'{XSL_HEADER}<xsl:import href="other.xsl"/>'
                '<xsl:template match="/"/></xsl:stylesheet>'
            )

    def test_requires_at_least_one_template(self):
        with pytest.raises(XSLTParseError):
            parse_stylesheet_text(f"{XSL_HEADER}<xsl:output method='html'/></xsl:stylesheet>")

    def test_transform_alias_for_stylesheet(self):
        stylesheet = parse_stylesheet_text(
            '<xsl:transform xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">'
            '<xsl:template match="/"><x/></xsl:template></xsl:transform>'
        )
        assert len(stylesheet.templates) == 1

    def test_unsupported_instruction_raises_at_runtime(self):
        body = '<xsl:template match="/"><xsl:key name="k" match="x" use="y"/></xsl:template>'
        with pytest.raises(XSLTRuntimeError):
            run(body, SOURCE)
