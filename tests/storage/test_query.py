"""Tests for the structured (CMIP-like) query model."""

import pytest

from repro.storage.errors import QueryError
from repro.storage.index import AttributeIndex
from repro.storage.query import Criterion, Operator, Query


@pytest.fixture()
def index():
    index = AttributeIndex()
    index.add("patterns", "r1", {"name": ["Observer"], "category": ["behavioral"],
                                 "intent": ["notify dependents of state changes"]})
    index.add("patterns", "r2", {"name": ["Visitor"], "category": ["behavioral"],
                                 "intent": ["represent operations on an object structure"]})
    index.add("patterns", "r3", {"name": ["Abstract Factory"], "category": ["creational"],
                                 "intent": ["create families of related objects"]})
    return index


class TestConstruction:
    def test_fluent_where(self):
        query = Query("patterns").where("name", "Observer", Operator.EQUALS).where("category", "behavioral")
        assert len(query.criteria) == 2
        assert not query.is_empty

    def test_keyword_constructor(self):
        query = Query.keyword("patterns", "factory")
        assert query.criteria[0].operator == Operator.ANY

    def test_empty_detection(self):
        assert Query("patterns").is_empty
        assert Query("patterns", [Criterion("name", "  ")]).is_empty
        assert not Query("patterns", [Criterion("name", "x")]).is_empty

    def test_describe(self):
        query = Query("patterns").where("name", "Observer", Operator.EQUALS)
        assert "Observer" in query.describe()
        assert "all objects" in Query("patterns").describe()


class TestEvaluation:
    def test_equals_against_index(self, index):
        assert Query("patterns").where("name", "observer", Operator.EQUALS).evaluate(index) == {"r1"}

    def test_contains_against_index(self, index):
        assert Query("patterns").where("intent", "object structure").evaluate(index) == {"r2"}

    def test_any_field(self, index):
        assert Query.keyword("patterns", "factory").evaluate(index) == {"r3"}

    def test_prefix(self, index):
        query = Query("patterns").where("name", "vis", Operator.PREFIX)
        assert query.evaluate(index) == {"r2"}

    def test_conjunction(self, index):
        query = (Query("patterns")
                 .where("category", "behavioral", Operator.EQUALS)
                 .where("intent", "operations"))
        assert query.evaluate(index) == {"r2"}

    def test_conjunction_no_match(self, index):
        query = (Query("patterns")
                 .where("category", "creational", Operator.EQUALS)
                 .where("intent", "notify"))
        assert query.evaluate(index) == set()

    def test_empty_query_matches_nothing_via_index(self, index):
        assert Query("patterns").evaluate(index) == set()

    def test_wrong_community(self, index):
        assert Query.keyword("mp3s", "observer").evaluate(index) == set()


class TestMetadataMatching:
    METADATA = {"name": ["Observer"], "category": ["behavioral"],
                "intent": ["notify dependents of state changes"]}

    def test_contains(self):
        assert Query("p").where("intent", "notify dependents").matches_metadata(self.METADATA)
        assert not Query("p").where("intent", "create factories").matches_metadata(self.METADATA)

    def test_equals(self):
        assert Query("p").where("name", "observer", Operator.EQUALS).matches_metadata(self.METADATA)
        assert not Query("p").where("name", "observer pattern", Operator.EQUALS).matches_metadata(self.METADATA)

    def test_any(self):
        assert Query.keyword("p", "behavioral").matches_metadata(self.METADATA)
        assert not Query.keyword("p", "creational").matches_metadata(self.METADATA)

    def test_missing_field_fails(self):
        assert not Query("p").where("author", "gamma").matches_metadata(self.METADATA)

    def test_prefix(self):
        assert Query("p", [Criterion("name", "obs", Operator.PREFIX)]).matches_metadata(self.METADATA)


class TestWireFormat:
    def test_roundtrip(self):
        query = (Query("patterns", query_id="q-7", origin="alice")
                 .where("name", "Observer", Operator.EQUALS)
                 .where("intent", "state changes"))
        again = Query.from_xml_text(query.to_xml_text())
        assert again.community_id == "patterns"
        assert again.query_id == "q-7"
        assert again.origin == "alice"
        assert [(c.field_path, c.value, c.operator) for c in again.criteria] == [
            ("name", "Observer", Operator.EQUALS),
            ("intent", "state changes", Operator.CONTAINS),
        ]

    def test_wire_size_positive_and_grows(self):
        small = Query.keyword("p", "x")
        large = Query.keyword("p", "a much longer query string with many words")
        assert 0 < small.wire_size_bytes() < large.wire_size_bytes()

    def test_missing_community_rejected(self):
        with pytest.raises(QueryError):
            Query.from_xml_text("<query><criterion field='a'>x</criterion></query>")

    def test_wrong_root_rejected(self):
        with pytest.raises(QueryError):
            Query.from_xml_text("<search community='p'/>")

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Query.from_xml_text(
                "<query community='p'><criterion field='a' operator='regex'>x</criterion></query>"
            )
