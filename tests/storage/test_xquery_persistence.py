"""Tests for the richer query language (XQuery-lite) and disk persistence."""

import pytest

from repro.communities.design_patterns import gof_pattern_records, pattern_schema_xsd
from repro.schema.instance import build_instance
from repro.schema.parser import parse_schema_text
from repro.storage.errors import QueryError, StorageError
from repro.storage.persistence import load_repository, save_repository
from repro.storage.query import Query
from repro.storage.repository import LocalRepository
from repro.storage.xquery import XQueryLite, xquery


@pytest.fixture()
def pattern_repository():
    """A repository loaded with the 23 GoF patterns."""
    schema = parse_schema_text(pattern_schema_xsd())
    repository = LocalRepository(owner="curator")
    for record in gof_pattern_records():
        instance = build_instance(schema, record)
        metadata = {path: [str(value)] if isinstance(value, str) else [str(v) for v in value]
                    for path, value in record.items()}
        repository.publish("patterns", instance, metadata, title=str(record["name"]))
    return repository


class TestXQueryParsing:
    def test_basic_parse(self):
        query = XQueryLite.parse("for $p in pattern where $p/category = 'behavioral' return $p/name")
        assert query.variable == "p"
        assert query.source == "pattern"
        assert query.returns == "$p/name"

    def test_missing_return_rejected(self):
        with pytest.raises(QueryError):
            XQueryLite.parse("for $p in pattern where $p/name = 'Observer'")

    def test_unknown_variable_rejected(self, pattern_repository):
        query = XQueryLite.parse("for $p in pattern where $q/name = 'Observer' return $p/name")
        with pytest.raises(QueryError):
            query.evaluate(pattern_repository, "patterns")

    def test_where_clause_optional(self, pattern_repository):
        results = xquery(pattern_repository, "patterns", "for $p in pattern return $p/name")
        assert len(results) == 23


class TestXQueryEvaluation:
    def test_equality_filter(self, pattern_repository):
        results = xquery(pattern_repository, "patterns",
                         "for $p in pattern where $p/category = 'creational' return $p/name")
        assert sorted(result.as_text() for result in results) == [
            "Abstract Factory", "Builder", "Factory Method", "Prototype", "Singleton",
        ]

    def test_contains_and_conjunction(self, pattern_repository):
        results = xquery(
            pattern_repository, "patterns",
            "for $p in pattern where $p/category = 'behavioral' "
            "and contains($p/intent, 'algorithm') return $p/name",
        )
        names = {result.as_text() for result in results}
        assert "Strategy" in names and "Template Method" in names
        assert "Observer" not in names

    def test_disjunction(self, pattern_repository):
        results = xquery(
            pattern_repository, "patterns",
            "for $p in pattern where $p/name = 'Observer' or $p/name = 'Visitor' return $p/name",
        )
        assert {result.as_text() for result in results} == {"Observer", "Visitor"}

    def test_count_over_nested_elements(self, pattern_repository):
        results = xquery(
            pattern_repository, "patterns",
            "for $p in pattern where count($p/solution/participants) >= 5 return $p/name",
        )
        assert {result.as_text() for result in results} == {"Visitor"}

    def test_return_whole_object(self, pattern_repository):
        results = xquery(pattern_repository, "patterns",
                         "for $p in pattern where $p/name = 'Bridge' return $p")
        assert len(results) == 1
        element = results[0].value
        assert element.local_name == "pattern"
        assert element.child_text("name") == "Bridge"

    def test_source_element_filter(self, pattern_repository):
        assert xquery(pattern_repository, "patterns",
                      "for $m in mp3 return $m/title") == []
        assert len(xquery(pattern_repository, "patterns",
                          "for $x in * return $x/name")) == 23

    def test_agreement_with_index_search(self, pattern_repository):
        """The richer language and the attribute-index search agree on
        queries both can express."""
        index_hits = {stored.resource_id
                      for stored in pattern_repository.search(
                          Query("patterns").where("category", "structural"))}
        xquery_hits = {result.resource_id
                       for result in xquery(pattern_repository, "patterns",
                                            "for $p in pattern where $p/category = 'structural' "
                                            "return $p/name")}
        assert index_hits == xquery_hits

    def test_query_the_index_cannot_answer(self, pattern_repository):
        """Participant lists are not indexed (case-study filter) but the
        document-level language still reaches them — the reason the paper
        lists XML Query as future work."""
        results = xquery(pattern_repository, "patterns",
                         "for $p in pattern where contains($p/solution/participants, 'Memento') "
                         "return $p/name")
        assert {result.as_text() for result in results} == {"Memento"}


class TestPersistence:
    def test_save_and_load_roundtrip(self, pattern_repository, tmp_path):
        saved = save_repository(pattern_repository, tmp_path / "store")
        assert saved == 23
        loaded = load_repository(tmp_path / "store")
        assert loaded.owner == "curator"
        assert len(loaded.documents) == 23
        # Index works after reload without recomputing metadata.
        hits = loaded.search(Query("patterns").where("name", "Observer"))
        assert len(hits) == 1
        assert hits[0].title == "Observer"

    def test_resource_ids_stable_across_reload(self, pattern_repository, tmp_path):
        save_repository(pattern_repository, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        original_ids = {stored.resource_id for stored in pattern_repository.documents}
        reloaded_ids = {stored.resource_id for stored in loaded.documents}
        assert original_ids == reloaded_ids

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            load_repository(tmp_path)

    def test_missing_object_file_rejected(self, pattern_repository, tmp_path):
        save_repository(pattern_repository, tmp_path / "store")
        victim = next((tmp_path / "store" / "patterns").glob("*.xml"))
        victim.unlink()
        with pytest.raises(StorageError):
            load_repository(tmp_path / "store")

    def test_tampered_object_detected(self, pattern_repository, tmp_path):
        save_repository(pattern_repository, tmp_path / "store")
        victim = next(path for path in (tmp_path / "store" / "patterns").glob("*.xml")
                      if "<name>Observer</name>" in path.read_text(encoding="utf-8"))
        victim.write_text(
            victim.read_text(encoding="utf-8").replace("<name>Observer</name>",
                                                       "<name>Tampered</name>"),
            encoding="utf-8",
        )
        with pytest.raises(StorageError):
            load_repository(tmp_path / "store")

    def test_xquery_over_reloaded_repository(self, pattern_repository, tmp_path):
        save_repository(pattern_repository, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        results = xquery(loaded, "patterns",
                         "for $p in pattern where $p/category = 'creational' return $p/name")
        assert len(results) == 5
