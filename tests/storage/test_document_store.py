"""Tests for the content-addressed document store."""

import pytest

from repro.storage.document_store import DocumentStore, resource_id_for
from repro.storage.errors import ObjectNotFoundError
from repro.xmlkit.parser import parse


def doc(text):
    return parse(text).root


class TestResourceIds:
    def test_same_content_same_id(self):
        a = doc("<mp3><title>x</title></mp3>")
        b = doc("<mp3><title>x</title></mp3>")
        assert resource_id_for("c1", a) == resource_id_for("c1", b)

    def test_different_content_different_id(self):
        a = doc("<mp3><title>x</title></mp3>")
        b = doc("<mp3><title>y</title></mp3>")
        assert resource_id_for("c1", a) != resource_id_for("c1", b)

    def test_community_scoped(self):
        a = doc("<mp3><title>x</title></mp3>")
        assert resource_id_for("c1", a) != resource_id_for("c2", a)

    def test_whitespace_insensitive(self):
        a = doc("<mp3><title>x</title></mp3>")
        b = doc("<mp3>\n  <title>x</title>\n</mp3>")
        assert resource_id_for("c1", a) == resource_id_for("c1", b)


class TestStore:
    def test_put_and_get(self):
        store = DocumentStore()
        record = store.put("c1", doc("<mp3><title>x</title></mp3>"), title="x", publisher="alice")
        assert store.get(record.resource_id).title == "x"
        assert store.contains(record.resource_id)
        assert len(store) == 1

    def test_put_is_idempotent(self):
        store = DocumentStore()
        first = store.put("c1", doc("<a><b>1</b></a>"))
        second = store.put("c1", doc("<a><b>1</b></a>"))
        assert first is second
        assert len(store) == 1

    def test_get_missing_raises(self):
        with pytest.raises(ObjectNotFoundError):
            DocumentStore().get("nope")

    def test_delete(self):
        store = DocumentStore()
        record = store.put("c1", doc("<a><b>1</b></a>"))
        store.delete(record.resource_id)
        assert not store.contains(record.resource_id)
        assert store.objects_in("c1") == []
        with pytest.raises(ObjectNotFoundError):
            store.delete(record.resource_id)

    def test_partition_by_community(self):
        store = DocumentStore()
        store.put("mp3s", doc("<mp3><t>a</t></mp3>"))
        store.put("mp3s", doc("<mp3><t>b</t></mp3>"))
        store.put("patterns", doc("<pattern><n>Observer</n></pattern>"))
        assert len(store.objects_in("mp3s")) == 2
        assert len(store.objects_in("patterns")) == 1
        assert store.objects_in("unknown") == []
        assert sorted(store.communities()) == ["mp3s", "patterns"]

    def test_stored_document_is_a_copy(self):
        store = DocumentStore()
        original = doc("<a><b>1</b></a>")
        record = store.put("c1", original)
        original.children[0].text = "mutated"
        assert record.document.children[0].text == "1"

    def test_size_accounting(self):
        store = DocumentStore()
        store.put("c1", doc("<a><b>12345</b></a>"))
        assert store.total_bytes() > 0
        assert store.total_bytes() == sum(record.size_bytes for record in store)

    def test_default_title_from_content(self):
        store = DocumentStore()
        record = store.put("c1", doc("<a><b>Hello World</b></a>"))
        assert "Hello World" in record.title

    def test_metadata_attached(self):
        store = DocumentStore()
        record = store.put("c1", doc("<a><b>x</b></a>"), metadata={"b": ["x"]})
        assert record.metadata == {"b": ["x"]}
