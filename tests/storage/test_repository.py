"""Tests for the per-peer repository façade and attachments."""

import pytest

from repro.storage.attachments import Attachment, AttachmentStore
from repro.storage.errors import ObjectNotFoundError
from repro.storage.query import Query
from repro.storage.repository import LocalRepository
from repro.xmlkit.parser import parse


def doc(text):
    return parse(text).root


class TestAttachments:
    def test_synthesize_deterministic(self):
        a = Attachment.synthesize("http://x/file.mp3", seed=1)
        b = Attachment.synthesize("http://x/file.mp3", seed=1)
        assert a == b
        assert a.size_bytes > 0

    def test_synthesize_respects_explicit_size(self):
        a = Attachment.synthesize("http://x/f", size_bytes=1234)
        assert a.size_bytes == 1234

    def test_store_serve_receive_accounting(self):
        provider = AttachmentStore()
        requester = AttachmentStore()
        attachment = Attachment.synthesize("http://x/song.mp3", size_bytes=1000)
        provider.put(attachment)
        served = provider.serve("http://x/song.mp3")
        requester.receive(served)
        assert provider.bytes_served == 1000
        assert requester.bytes_received == 1000
        assert requester.has("http://x/song.mp3")
        assert requester.total_bytes() == 1000

    def test_missing_attachment_raises(self):
        with pytest.raises(ObjectNotFoundError):
            AttachmentStore().get("http://nope")


class TestRepository:
    def publish_sample(self, repository):
        return repository.publish(
            "patterns",
            doc("<pattern><name>Observer</name><intent>notify dependents</intent></pattern>"),
            {"name": ["Observer"], "intent": ["notify dependents"]},
            title="Observer",
            attachment_uris=["http://repo/observer.png"],
        )

    def test_publish_stores_and_indexes(self):
        repository = LocalRepository(owner="alice")
        result = self.publish_sample(repository)
        assert result.indexed_fields == 2
        assert repository.documents.contains(result.resource_id)
        assert len(result.attachments) == 1
        assert repository.attachments.has("http://repo/observer.png")

    def test_search_by_keyword(self):
        repository = LocalRepository()
        self.publish_sample(repository)
        hits = repository.search(Query.keyword("patterns", "observer"))
        assert len(hits) == 1
        misses = repository.search(Query.keyword("patterns", "visitor"))
        assert misses == []

    def test_empty_query_browses_community(self):
        repository = LocalRepository()
        self.publish_sample(repository)
        assert len(repository.search(Query("patterns"))) == 1
        assert repository.search(Query("other")) == []

    def test_empty_query_result_is_not_aliased_to_the_store(self):
        """Mutating a browse result must never corrupt the document
        store shared by every in-process peer (mutation aliasing)."""
        repository = LocalRepository()
        self.publish_sample(repository)
        first = repository.search(Query("patterns"))
        first.clear()
        again = repository.search(Query("patterns"))
        assert len(again) == 1
        assert len(repository.documents.objects_in("patterns")) == 1

    def test_search_with_compiled_plan_matches_naive(self):
        from repro.storage.plan import compile_query
        from repro.storage.query import Operator

        repository = LocalRepository()
        self.publish_sample(repository)
        for query in (
            Query.keyword("patterns", "observer"),
            Query("patterns").where("name", "Observer", Operator.EQUALS),
            Query("patterns"),  # empty query: the browse path
            Query.keyword("patterns", "visitor"),
        ):
            plan = compile_query(query)
            assert repository.search(query, plan=plan) == repository.search(query)

    def test_retrieve(self):
        repository = LocalRepository()
        result = self.publish_sample(repository)
        stored = repository.retrieve(result.resource_id)
        assert stored.title == "Observer"

    def test_unpublish(self):
        repository = LocalRepository()
        result = self.publish_sample(repository)
        repository.unpublish(result.resource_id)
        assert repository.search(Query.keyword("patterns", "observer")) == []
        with pytest.raises(ObjectNotFoundError):
            repository.retrieve(result.resource_id)

    def test_statistics(self):
        repository = LocalRepository()
        self.publish_sample(repository)
        stats = repository.statistics()
        assert stats["objects"] == 1
        assert stats["communities"] == 1
        assert stats["index_entries"] == 2
        assert stats["attachments"] == 1
        assert stats["document_bytes"] > 0

    def test_publish_same_object_twice_idempotent(self):
        repository = LocalRepository()
        first = self.publish_sample(repository)
        second = self.publish_sample(repository)
        assert first.resource_id == second.resource_id
        assert repository.statistics()["objects"] == 1
