"""Tests for the inverted attribute index."""

from repro.storage.index import AttributeIndex, tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Design Patterns, 2nd Edition!") == ["design", "patterns", "2nd", "edition"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("  ,;  ") == []


class TestIndexing:
    def build(self):
        index = AttributeIndex()
        index.add("patterns", "r1", {"name": ["Observer"], "intent": ["decouple subject from observers"]})
        index.add("patterns", "r2", {"name": ["Abstract Factory"], "intent": ["create families of objects"]})
        index.add("patterns", "r3", {"name": ["Factory Method"], "intent": ["defer creation to subclasses"]})
        index.add("mp3s", "m1", {"title": ["Blue Train"], "artist": ["John Coltrane"]})
        return index

    def test_exact_match_case_insensitive(self):
        index = self.build()
        assert index.exact("patterns", "name", "observer") == {"r1"}
        assert index.exact("patterns", "name", "OBSERVER") == {"r1"}
        assert index.exact("patterns", "name", "Factory") == set()

    def test_keyword_single_token(self):
        index = self.build()
        assert index.keyword("patterns", "name", "factory") == {"r2", "r3"}

    def test_keyword_requires_all_tokens(self):
        index = self.build()
        assert index.keyword("patterns", "name", "abstract factory") == {"r2"}
        assert index.keyword("patterns", "intent", "create families") == {"r2"}
        assert index.keyword("patterns", "intent", "create marshmallows") == set()

    def test_keyword_empty_text(self):
        assert self.build().keyword("patterns", "name", "") == set()

    def test_prefix(self):
        index = self.build()
        assert index.prefix("patterns", "name", "fact") == {"r2", "r3"}
        assert index.prefix("patterns", "name", "obs") == {"r1"}
        assert index.prefix("patterns", "name", "") == set()

    def test_any_field_keyword(self):
        index = self.build()
        assert index.any_field_keyword("patterns", "subclasses") == {"r3"}
        assert index.any_field_keyword("patterns", "factory") == {"r2", "r3"}

    def test_community_isolation(self):
        index = self.build()
        assert index.keyword("mp3s", "title", "blue") == {"m1"}
        assert index.keyword("patterns", "title", "blue") == set()
        assert index.any_field_keyword("mp3s", "observer") == set()

    def test_fields_and_values_for(self):
        index = self.build()
        assert index.fields_for("mp3s") == ["artist", "title"]
        assert index.values_for("patterns", "name") == [
            "abstract factory", "factory method", "observer",
        ]


class TestMaintenance:
    def test_remove(self):
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Observer"]})
        index.add("c", "r2", {"name": ["Observer"]})
        index.remove("r1")
        assert index.exact("c", "name", "Observer") == {"r2"}
        assert index.indexed_objects() == 1

    def test_remove_clears_empty_buckets(self):
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Observer"]})
        index.remove("r1")
        assert index.exact("c", "name", "Observer") == set()
        assert index.entry_count() == 0

    def test_readd_replaces_entries(self):
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Observer"]})
        index.add("c", "r1", {"name": ["Visitor"]})
        assert index.exact("c", "name", "Observer") == set()
        assert index.exact("c", "name", "Visitor") == {"r1"}

    def test_multi_valued_fields(self):
        index = AttributeIndex()
        index.add("c", "r1", {"participants": ["Subject", "Observer"]})
        assert index.exact("c", "participants", "Subject") == {"r1"}
        assert index.exact("c", "participants", "Observer") == {"r1"}

    def test_blank_values_not_indexed(self):
        index = AttributeIndex()
        count = index.add("c", "r1", {"name": ["", "   "]})
        assert count == 0
        assert index.entry_count() == 0

    def test_size_accounting(self):
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Observer"], "intent": ["decouple things"]})
        assert index.entry_count() == 2
        assert index.size_bytes() > 0
        assert len(list(index.entries_for("r1"))) == 2

    def test_entries_carry_tokens_from_add_time(self):
        """Removal relies on the tokens stored on the entry, so they must
        be exactly the tokens the add indexed."""
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Abstract Factory, 2nd"]})
        (entry,) = index.entries_for("r1")
        assert entry.tokens == ("abstract", "factory", "2nd")
        assert entry.value_lower == "abstract factory, 2nd"

    def test_add_remove_round_trip_is_bit_identical(self):
        """Adding then removing an object leaves the index internals —
        every nested dict and posting set — exactly as they were."""
        import copy

        index = AttributeIndex()
        index.add("patterns", "r1", {"name": ["Observer"], "intent": ["decouple subject"]})
        index.add("mp3s", "m1", {"title": ["Blue Train"]})
        snapshot = (
            copy.deepcopy(index._tokens),
            copy.deepcopy(index._values),
            copy.deepcopy(index._entries),
        )
        # The new object introduces a new community, a new field of an
        # existing community, and new tokens of an existing field.
        index.add("genes", "g1", {"symbol": ["BRCA1"]})
        index.add("patterns", "r9", {"name": ["Observer Deluxe"], "category": ["behavioral"]})
        index.remove("g1")
        index.remove("r9")
        assert (index._tokens, index._values, index._entries) == snapshot


class TestLeanLayout:
    """The lean (numeric-id array) layout is observably identical to the
    set layout through the public API, and measurably smaller."""

    CORPUS = {
        f"r{number}": {
            "name": [f"Pattern {number % 7}"],
            "intent": [f"decouple thing {number % 5} from observer {number % 3}"],
            "category": ["behavioral" if number % 2 else "creational"],
        }
        for number in range(50)
    }

    def build(self, layout):
        index = AttributeIndex(layout=layout)
        for resource_id, fields in self.CORPUS.items():
            index.add("patterns", resource_id, fields)
        return index

    def test_unknown_layout_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            AttributeIndex(layout="bitset")

    def test_every_lookup_matches_set_layout(self):
        lean, sets = self.build("lean"), self.build("set")
        probes = [
            ("exact", ("patterns", "category", "Behavioral")),
            ("exact", ("patterns", "name", "pattern 3")),
            ("keyword", ("patterns", "intent", "decouple observer")),
            ("keyword", ("patterns", "intent", "thing 4")),
            ("keyword", ("patterns", "intent", "nonexistent")),
            ("prefix", ("patterns", "intent", "obs")),
            ("prefix", ("patterns", "name", "")),
            ("any_field_keyword", ("patterns", "behavioral decouple")),
            ("any_field_keyword", ("patterns", "")),
        ]
        for method, args in probes:
            assert getattr(lean, method)(*args) == getattr(sets, method)(*args), (method, args)
        assert lean.values_for("patterns", "name") == sets.values_for("patterns", "name")
        assert lean.fields_for("patterns") == sets.fields_for("patterns")
        assert lean.entry_count() == sets.entry_count()

    def test_remove_and_readd_round_trip(self):
        for layout in ("lean", "set"):
            index = self.build(layout)
            before = index.exact("patterns", "category", "behavioral")
            index.remove("r3")
            assert "r3" not in index.exact("patterns", "category", "behavioral")
            index.add("patterns", "r3", self.CORPUS["r3"])
            assert index.exact("patterns", "category", "behavioral") == before

    def test_remove_all_empties_index_and_recycles_ids(self):
        index = self.build("lean")
        for resource_id in self.CORPUS:
            index.remove(resource_id)
        assert index.entry_count() == 0
        assert index._values == {} and index._tokens == {}
        assert not index._ids
        # A fresh add after total removal reuses recycled numeric ids
        # rather than growing the id table forever under churn.
        table_size = len(index._rids)
        index.add("patterns", "r0", self.CORPUS["r0"])
        assert len(index._rids) == table_size

    def test_compiled_plan_evaluates_identically_on_both_layouts(self):
        from repro.storage.plan import compile_query
        from repro.storage.query import Operator, Query
        lean, sets = self.build("lean"), self.build("set")
        queries = [
            Query("patterns").where("category", "behavioral", Operator.EQUALS),
            Query("patterns").where("intent", "decouple observer"),
            Query("patterns").where("category", "behavioral", Operator.EQUALS)
                             .where("intent", "thing 2"),
            Query("patterns").where("intent", "obs", Operator.PREFIX),
            Query.keyword("patterns", "decouple 4"),
        ]
        for query in queries:
            plan = compile_query(query)
            assert plan.evaluate(lean) == plan.evaluate(sets) == query.evaluate(sets) \
                == query.evaluate(lean), query.describe()

    def test_lean_postings_are_measurably_smaller(self):
        lean, sets = self.build("lean"), self.build("set")
        assert lean.posting_bytes() < sets.posting_bytes() / 2

    def test_interned_views_share_structure(self):
        from repro.storage.interning import intern_values, intern_view
        one = intern_view({"name": ["Observer"], "tags": ["a", "b"]})
        two = intern_view({"name": ["Observer"], "tags": ["a", "b"]})
        assert one == two
        assert one["name"] is two["name"]
        assert one["tags"] is two["tags"]
        assert intern_values(["x", "y"]) is intern_values(["x", "y"])
