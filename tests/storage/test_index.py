"""Tests for the inverted attribute index."""

from repro.storage.index import AttributeIndex, tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Design Patterns, 2nd Edition!") == ["design", "patterns", "2nd", "edition"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("  ,;  ") == []


class TestIndexing:
    def build(self):
        index = AttributeIndex()
        index.add("patterns", "r1", {"name": ["Observer"], "intent": ["decouple subject from observers"]})
        index.add("patterns", "r2", {"name": ["Abstract Factory"], "intent": ["create families of objects"]})
        index.add("patterns", "r3", {"name": ["Factory Method"], "intent": ["defer creation to subclasses"]})
        index.add("mp3s", "m1", {"title": ["Blue Train"], "artist": ["John Coltrane"]})
        return index

    def test_exact_match_case_insensitive(self):
        index = self.build()
        assert index.exact("patterns", "name", "observer") == {"r1"}
        assert index.exact("patterns", "name", "OBSERVER") == {"r1"}
        assert index.exact("patterns", "name", "Factory") == set()

    def test_keyword_single_token(self):
        index = self.build()
        assert index.keyword("patterns", "name", "factory") == {"r2", "r3"}

    def test_keyword_requires_all_tokens(self):
        index = self.build()
        assert index.keyword("patterns", "name", "abstract factory") == {"r2"}
        assert index.keyword("patterns", "intent", "create families") == {"r2"}
        assert index.keyword("patterns", "intent", "create marshmallows") == set()

    def test_keyword_empty_text(self):
        assert self.build().keyword("patterns", "name", "") == set()

    def test_prefix(self):
        index = self.build()
        assert index.prefix("patterns", "name", "fact") == {"r2", "r3"}
        assert index.prefix("patterns", "name", "obs") == {"r1"}
        assert index.prefix("patterns", "name", "") == set()

    def test_any_field_keyword(self):
        index = self.build()
        assert index.any_field_keyword("patterns", "subclasses") == {"r3"}
        assert index.any_field_keyword("patterns", "factory") == {"r2", "r3"}

    def test_community_isolation(self):
        index = self.build()
        assert index.keyword("mp3s", "title", "blue") == {"m1"}
        assert index.keyword("patterns", "title", "blue") == set()
        assert index.any_field_keyword("mp3s", "observer") == set()

    def test_fields_and_values_for(self):
        index = self.build()
        assert index.fields_for("mp3s") == ["artist", "title"]
        assert index.values_for("patterns", "name") == [
            "abstract factory", "factory method", "observer",
        ]


class TestMaintenance:
    def test_remove(self):
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Observer"]})
        index.add("c", "r2", {"name": ["Observer"]})
        index.remove("r1")
        assert index.exact("c", "name", "Observer") == {"r2"}
        assert index.indexed_objects() == 1

    def test_remove_clears_empty_buckets(self):
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Observer"]})
        index.remove("r1")
        assert index.exact("c", "name", "Observer") == set()
        assert index.entry_count() == 0

    def test_readd_replaces_entries(self):
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Observer"]})
        index.add("c", "r1", {"name": ["Visitor"]})
        assert index.exact("c", "name", "Observer") == set()
        assert index.exact("c", "name", "Visitor") == {"r1"}

    def test_multi_valued_fields(self):
        index = AttributeIndex()
        index.add("c", "r1", {"participants": ["Subject", "Observer"]})
        assert index.exact("c", "participants", "Subject") == {"r1"}
        assert index.exact("c", "participants", "Observer") == {"r1"}

    def test_blank_values_not_indexed(self):
        index = AttributeIndex()
        count = index.add("c", "r1", {"name": ["", "   "]})
        assert count == 0
        assert index.entry_count() == 0

    def test_size_accounting(self):
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Observer"], "intent": ["decouple things"]})
        assert index.entry_count() == 2
        assert index.size_bytes() > 0
        assert len(list(index.entries_for("r1"))) == 2

    def test_entries_carry_tokens_from_add_time(self):
        """Removal relies on the tokens stored on the entry, so they must
        be exactly the tokens the add indexed."""
        index = AttributeIndex()
        index.add("c", "r1", {"name": ["Abstract Factory, 2nd"]})
        (entry,) = index.entries_for("r1")
        assert entry.tokens == ("abstract", "factory", "2nd")
        assert entry.value_lower == "abstract factory, 2nd"

    def test_add_remove_round_trip_is_bit_identical(self):
        """Adding then removing an object leaves the index internals —
        every nested dict and posting set — exactly as they were."""
        import copy

        index = AttributeIndex()
        index.add("patterns", "r1", {"name": ["Observer"], "intent": ["decouple subject"]})
        index.add("mp3s", "m1", {"title": ["Blue Train"]})
        snapshot = (
            copy.deepcopy(index._tokens),
            copy.deepcopy(index._values),
            copy.deepcopy(index._entries),
        )
        # The new object introduces a new community, a new field of an
        # existing community, and new tokens of an existing field.
        index.add("genes", "g1", {"symbol": ["BRCA1"]})
        index.add("patterns", "r9", {"name": ["Observer Deluxe"], "category": ["behavioral"]})
        index.remove("g1")
        index.remove("r9")
        assert (index._tokens, index._values, index._entries) == snapshot
