"""Pickle round-trips for the types that cross process boundaries.

Process-parallel shard execution ships messages (outbox batches),
stored objects (download replication) and compiled queries between
workers.  These tests pin the transport invariants: a slotted
``Message`` survives with its shared wire form intact (shipped, not
re-rendered), a ``CompiledQuery`` keeps its lazily-measured wire
caches, and a ``StoredObject``'s interned metadata view re-interns in
the receiving process so the identity-sharing memory invariants
survive transport.
"""

from __future__ import annotations

import pickle

from repro.network.messages import Message, MessageType, query_message
from repro.storage import interning
from repro.storage.document_store import DocumentStore
from repro.storage.index import AttributeIndex
from repro.storage.interning import intern_values
from repro.storage.plan import compile_query
from repro.storage.query import Query
from repro.xmlkit.parser import parse


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


class TestMessageRoundTrip:
    def test_all_fields_survive(self):
        message = Message(
            type=MessageType.QUERY_HIT, sender="a", recipient="b",
            message_id="msg-77", ttl=3, hops=4, payload_bytes=120,
            query_xml="<q/>", resource_id="r1", community_id="c1",
            attachment_uri="u", carried_results=(("a", "r1"),),
            payload_object=({"name": ["x"]}, "x"), ack_to="a",
            chunk_index=2, chunk_total=5)
        loaded = roundtrip(message)
        assert loaded == message
        assert loaded.size_bytes == message.size_bytes

    def test_wire_form_is_shipped_not_re_rendered(self):
        """Every hop of one flood shares a single ``query_xml`` string;
        a batched pickle must memoize it — one copy on the wire, one
        shared object after loading — instead of re-serializing per
        message."""
        query_xml = "<query><criterion>observer pattern</criterion></query>"
        first = query_message("p0", "p1", query_xml, community_id="c")
        hops = [first] + [first.forwarded(f"p{i}", f"p{i + 1}") for i in range(1, 40)]
        assert all(hop.query_xml is query_xml for hop in hops)

        payload = pickle.dumps(hops)
        loaded = pickle.loads(payload)
        assert [hop.query_xml for hop in loaded] == [query_xml] * len(hops)
        assert all(hop.query_xml is loaded[0].query_xml for hop in loaded)
        # The batch carries the wire form once: well under the cost of
        # one serialized copy per message.
        assert len(payload) < len(hops) * len(query_xml)

    def test_message_id_and_payload_sizes_preserved(self):
        message = query_message("p0", "p1", "<q>zück</q>")
        loaded = roundtrip(message)
        assert loaded.message_id == message.message_id
        assert loaded.payload_bytes == len("<q>zück</q>".encode("utf-8"))


class TestCompiledQueryRoundTrip:
    def test_compiled_query_survives_with_wire_caches(self):
        compiled = compile_query(Query("patterns").where("name", "factory"))
        # Populate the lazy caches so the pickled state carries them.
        wire_xml, wire_bytes = compiled.wire_xml, compiled.wire_bytes
        loaded = roundtrip(compiled)
        assert loaded.community_id == compiled.community_id
        assert loaded.wire_xml == wire_xml
        assert loaded.wire_bytes == wire_bytes
        assert loaded.cache_key == compiled.cache_key
        metadata = {"name": ("abstract factory",), "intent": ("create families",)}
        assert loaded.matches_metadata(metadata) == compiled.matches_metadata(metadata)

    def test_uncompiled_caches_rebuild_identically(self):
        compiled = compile_query(Query("patterns").where("name", "factory"))
        loaded = roundtrip(compiled)  # caches never touched pre-pickle
        assert loaded.wire_xml == compiled.wire_xml
        assert loaded.wire_bytes == compiled.wire_bytes


class TestInternedViewRoundTrip:
    def make_stored(self):
        store = DocumentStore()
        document = parse(
            "<pattern><name>Observer</name><intent>decouple</intent></pattern>").root
        return store.put("patterns", document,
                         metadata={"name": ["Observer"], "intent": ["decouple"]})

    def test_view_re_interns_in_the_loading_process(self):
        stored = self.make_stored()
        stored.metadata_view()  # populate the cache that must not ship
        loaded = roundtrip(stored)
        # The cached view was dropped in transit...
        assert loaded._metadata_view is None
        view = loaded.metadata_view()
        # ...and the rebuilt one is canonical in *this* process: the
        # value tuples are the interning table's objects, shared with
        # every other holder of equal content.
        for values in view.values():
            assert values is intern_values(tuple(values))
        assert view == stored.metadata_view()

    def test_equal_content_shares_one_tuple_after_loading(self):
        stored = self.make_stored()
        interning.clear()
        first = roundtrip(stored)
        second = roundtrip(stored)
        assert first.metadata_view()["name"] is second.metadata_view()["name"]

    def test_index_posting_bytes_unchanged_by_roundtrip(self):
        index = AttributeIndex()
        for number in range(50):
            index.add("patterns", f"res-{number:04d}",
                      {"name": [f"Pattern {number % 7}"],
                       "intent": ["decouple things", f"variant {number % 3}"]})
        before = index.posting_bytes()
        loaded = roundtrip(index)
        assert loaded.posting_bytes() == before
        assert loaded.entry_count() == index.entry_count()
