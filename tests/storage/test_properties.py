"""Property-based tests for the storage substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.storage.index import AttributeIndex, tokenize
from repro.storage.query import Criterion, Operator, Query

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
values = st.lists(words, min_size=1, max_size=4).map(" ".join)
field_names = st.sampled_from(["name", "intent", "keywords", "category", "author"])
metadata_dicts = st.dictionaries(field_names, st.lists(values, min_size=1, max_size=2),
                                 min_size=1, max_size=4)


@settings(max_examples=60, deadline=None)
@given(st.lists(metadata_dicts, min_size=1, max_size=12))
def test_index_and_metadata_matching_agree(records):
    """Query.evaluate over the index matches exactly the records whose
    metadata dictionaries satisfy Query.matches_metadata."""
    index = AttributeIndex()
    for number, record in enumerate(records):
        index.add("c", f"r{number}", record)
    # Probe with tokens drawn from the corpus itself.
    probes = set()
    for record in records[:4]:
        for field_path, record_values in record.items():
            for value in record_values[:1]:
                tokens = tokenize(value)
                if tokens:
                    probes.add((field_path, tokens[0]))
    for field_path, token in probes:
        query = Query("c", [Criterion(field_path, token, Operator.CONTAINS)])
        from_index = query.evaluate(index)
        from_metadata = {
            f"r{number}" for number, record in enumerate(records)
            if query.matches_metadata(record)
        }
        assert from_index == from_metadata


@settings(max_examples=60, deadline=None)
@given(st.lists(metadata_dicts, min_size=1, max_size=10), st.integers(0, 9))
def test_remove_restores_previous_state(records, victim):
    """Adding then removing an object leaves no trace in the index."""
    index = AttributeIndex()
    for number, record in enumerate(records):
        index.add("c", f"r{number}", record)
    before_count = index.entry_count()
    index.add("c", "victim", {"name": ["unique sentinel value"], "intent": ["to be removed"]})
    index.remove("victim")
    assert index.entry_count() == before_count
    assert index.exact("c", "name", "unique sentinel value") == set()
    del victim


@settings(max_examples=60, deadline=None)
@given(metadata_dicts, words)
def test_exact_match_implies_keyword_match(record, probe):
    """Any exact hit is also a keyword hit for the same value."""
    index = AttributeIndex()
    index.add("c", "r0", record)
    for field_path, record_values in record.items():
        for value in record_values:
            exact = index.exact("c", field_path, value)
            keyword = index.keyword("c", field_path, value)
            assert exact <= keyword
    del probe


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(field_names, values), min_size=1, max_size=5))
def test_query_wire_roundtrip(criteria):
    """Queries survive XML wire serialization unchanged."""
    query = Query("community-x", [Criterion(path, value) for path, value in criteria])
    again = Query.from_xml_text(query.to_xml_text())
    assert again.community_id == query.community_id
    assert [(c.field_path, c.value, c.operator) for c in again.criteria] == [
        (c.field_path, c.value, c.operator) for c in query.criteria
    ]
