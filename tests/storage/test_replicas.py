"""Tests for the replica registry (provenance and replication degree)."""

from repro.storage.replicas import ORIGINAL, REPLICA, ReplicaRegistry


class TestRecording:
    def test_original_and_replica_provenance(self):
        registry = ReplicaRegistry()
        registry.note_original("res-1", "alice", at_ms=0.0)
        registry.note_replica("res-1", "bob", at_ms=125.0)
        assert registry.provenance("res-1", "alice") == ORIGINAL
        assert registry.provenance("res-1", "bob") == REPLICA
        assert registry.provenance("res-1", "carol") is None
        assert registry.provenance("res-2", "alice") is None

    def test_first_entry_wins(self):
        """A publisher re-downloading its own object stays an original;
        a replica later re-announced by publish stays a replica."""
        registry = ReplicaRegistry()
        registry.note_original("res-1", "alice")
        registry.note_replica("res-1", "alice")
        assert registry.provenance("res-1", "alice") == ORIGINAL
        registry.note_replica("res-1", "bob", at_ms=50.0)
        registry.note_original("res-1", "bob")
        assert registry.provenance("res-1", "bob") == REPLICA
        assert registry.entries_for("res-1")[-1].recorded_at_ms == 50.0

    def test_replication_degree_counts_all_copies(self):
        registry = ReplicaRegistry()
        assert registry.replication_degree("res-1") == 0
        registry.note_original("res-1", "alice")
        registry.note_replica("res-1", "bob")
        registry.note_replica("res-1", "carol")
        assert registry.replication_degree("res-1") == 3
        assert registry.replicas_of("res-1") == ["bob", "carol"] or \
            set(registry.replicas_of("res-1")) == {"bob", "carol"}
        assert registry.total_replicas() == 2

    def test_holders_orders_originals_first_deterministically(self):
        registry = ReplicaRegistry()
        registry.note_replica("res-1", "zed")
        registry.note_original("res-1", "mallory")
        registry.note_replica("res-1", "bob")
        assert registry.holders("res-1") == ["mallory", "bob", "zed"]


class TestForgetting:
    def test_drop_removes_one_copy(self):
        registry = ReplicaRegistry()
        registry.note_original("res-1", "alice")
        registry.note_replica("res-1", "bob")
        registry.drop("res-1", "bob")
        assert registry.holders("res-1") == ["alice"]
        registry.drop("res-1", "alice")
        assert registry.replication_degree("res-1") == 0
        assert "res-1" not in registry.resources()

    def test_drop_of_unknown_is_noop(self):
        registry = ReplicaRegistry()
        registry.drop("res-1", "ghost")
        assert len(registry) == 0

    def test_forget_peer_drops_every_copy(self):
        registry = ReplicaRegistry()
        registry.note_original("res-1", "alice")
        registry.note_replica("res-2", "alice")
        registry.note_original("res-2", "bob")
        assert registry.forget_peer("alice") == 2
        assert registry.holders("res-1") == []
        assert registry.holders("res-2") == ["bob"]

    def test_degree_by_resource(self):
        registry = ReplicaRegistry()
        registry.note_original("res-1", "alice")
        registry.note_replica("res-1", "bob")
        registry.note_original("res-2", "carol")
        assert registry.degree_by_resource() == {"res-1": 2, "res-2": 1}
