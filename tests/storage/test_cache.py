"""Unit tests for the query-result cache (storage/cache.py)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.storage.cache import QueryResultCache
from repro.storage.plan import compile_query
from repro.storage.query import Criterion, Operator, Query


@dataclass(frozen=True)
class FakeResult:
    provider_id: str
    resource_id: str


def entry_for(*providers: str) -> tuple:
    return tuple(FakeResult(provider, f"res-{index}") for index, provider in enumerate(providers))


class TestCanonicalKey:
    def test_criterion_order_does_not_matter(self):
        one = Criterion("a", "x", Operator.EQUALS)
        two = Criterion("b", "y", Operator.EQUALS)
        assert compile_query(Query("c", [one, two])).cache_key == (
            compile_query(Query("c", [two, one])).cache_key
        )

    def test_case_and_whitespace_normalize(self):
        first = Query("c", [Criterion("name", "  Observer ", Operator.EQUALS)])
        second = Query("c", [Criterion("name", "observer", Operator.EQUALS)])
        assert compile_query(first).cache_key == compile_query(second).cache_key

    def test_token_order_insensitive_for_keywords(self):
        first = Query.keyword("c", "alpha beta")
        second = Query.keyword("c", "beta alpha")
        assert compile_query(first).cache_key == compile_query(second).cache_key

    def test_distinct_queries_get_distinct_keys(self):
        plans = [
            compile_query(Query("c", [Criterion("name", "observer", Operator.EQUALS)])),
            compile_query(Query("c", [Criterion("name", "factory", Operator.EQUALS)])),
            compile_query(Query("c", [Criterion("name", "observer", Operator.PREFIX)])),
            compile_query(Query("d", [Criterion("name", "observer", Operator.EQUALS)])),
        ]
        assert len({plan.cache_key for plan in plans}) == 4


class TestQueryResultCache:
    def test_put_get_roundtrip(self):
        cache = QueryResultCache(capacity=4, ttl_ms=1_000.0)
        results = entry_for("p1", "p2")
        cache.put("k", results, 42, now=0.0)
        entry = cache.get("k", now=500.0)
        assert entry is not None
        assert entry.results == results
        assert entry.metadata_bytes == 42
        assert cache.hits == 1 and cache.misses == 0

    def test_ttl_expiry_on_get(self):
        cache = QueryResultCache(capacity=4, ttl_ms=1_000.0)
        cache.put("k", entry_for("p1"), 1, now=0.0)
        assert cache.get("k", now=1_000.0) is None
        assert cache.expirations == 1 and cache.misses == 1
        assert len(cache) == 0

    def test_lease_caps_entry_life_below_ttl(self):
        cache = QueryResultCache(capacity=4, ttl_ms=10_000.0)
        cache.put("k", entry_for("p1"), 1, now=0.0, lease_ms=500.0)
        assert cache.get("k", now=600.0) is None

    def test_lru_eviction_order(self):
        cache = QueryResultCache(capacity=2, ttl_ms=1_000.0)
        cache.put("a", entry_for("p1"), 1, now=0.0)
        cache.put("b", entry_for("p2"), 1, now=0.0)
        assert cache.get("a", now=1.0) is not None  # refresh "a"
        cache.put("c", entry_for("p3"), 1, now=2.0)  # evicts "b"
        assert cache.evictions == 1
        assert cache.get("b", now=3.0) is None
        assert cache.get("a", now=3.0) is not None
        assert cache.get("c", now=3.0) is not None

    def test_version_bump_invalidates_older_entries(self):
        cache = QueryResultCache(capacity=4, ttl_ms=1_000.0)
        cache.put("k", entry_for("p1"), 1, now=0.0)
        cache.bump_version()
        assert cache.get("k", now=1.0) is None
        assert cache.invalidations == 1
        cache.put("k", entry_for("p1"), 1, now=1.0)
        assert cache.get("k", now=2.0) is not None

    def test_invalidate_provider_kills_only_matching_entries(self):
        cache = QueryResultCache(capacity=4, ttl_ms=1_000.0)
        cache.put("with", entry_for("gone", "stays"), 1, now=0.0)
        cache.put("without", entry_for("stays"), 1, now=0.0)
        assert cache.invalidate_provider("gone") == 1
        assert cache.get("with", now=1.0) is None
        assert cache.get("without", now=1.0) is not None

    def test_sweep_drops_only_expired(self):
        cache = QueryResultCache(capacity=4, ttl_ms=1_000.0)
        cache.put("old", entry_for("p1"), 1, now=0.0)
        cache.put("new", entry_for("p2"), 1, now=800.0)
        assert cache.sweep(now=1_200.0) == 1
        assert "old" not in cache
        assert "new" in cache

    def test_empty_result_sets_cache_too(self):
        cache = QueryResultCache(capacity=4, ttl_ms=1_000.0)
        cache.put("miss-query", (), 0, now=0.0)
        entry = cache.get("miss-query", now=1.0)
        assert entry is not None
        assert entry.results == ()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=0)
        with pytest.raises(ValueError):
            QueryResultCache(ttl_ms=0.0)

    def test_hit_ratio_and_describe(self):
        cache = QueryResultCache(capacity=4, ttl_ms=1_000.0)
        cache.put("k", entry_for("p1"), 1, now=0.0)
        cache.get("k", now=1.0)
        cache.get("absent", now=1.0)
        assert cache.hit_ratio() == 0.5
        assert "1h/1m" in cache.describe()
