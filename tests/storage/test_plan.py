"""Equivalence suite for compiled query plans.

The compiled fast path is only allowed to exist because it is
observationally identical to the naive one: :meth:`CompiledQuery.evaluate`
must return exactly the ids :meth:`Query.evaluate` returns, and
:meth:`CompiledQuery.matches_metadata` exactly the booleans
:meth:`Query.matches_metadata` returns — for every operator, over
randomized corpora and queries (fixed seeds), and at every handcrafted
edge (blank values, punctuation-only values, "*" field paths, missing
fields).
"""

from __future__ import annotations

import random

import pytest

from repro.storage.index import AttributeIndex
from repro.storage.plan import CompiledQuery, compile_query
from repro.storage.query import Criterion, Operator, Query

VOCABULARY = [
    "observer", "factory", "abstract", "singleton", "visitor", "builder",
    "decouple", "create", "objects", "subject", "families", "defer",
    "Blue", "Train", "Jazz", "2nd", "Edition", "GoF",
]
FIELDS = ["name", "intent", "category", "artist"]


def random_metadata(rng: random.Random) -> dict[str, list[str]]:
    metadata = {}
    for field in rng.sample(FIELDS, rng.randint(1, len(FIELDS))):
        values = [
            " ".join(rng.sample(VOCABULARY, rng.randint(1, 3)))
            for _ in range(rng.randint(1, 2))
        ]
        metadata[field] = values
    return metadata


def random_query(rng: random.Random, community: str) -> Query:
    query = Query(community)
    for _ in range(rng.randint(1, 3)):
        operator = rng.choice(list(Operator))
        field = rng.choice(FIELDS + ["*"])
        if rng.random() < 0.15:
            value = rng.choice(["", "   ", "!!!", "?,;"])  # degenerate values
        elif operator is Operator.PREFIX:
            value = rng.choice(VOCABULARY)[: rng.randint(1, 4)]
        else:
            value = " ".join(rng.sample(VOCABULARY, rng.randint(1, 2)))
        query.where(field, value, operator)
    return query


def build_corpus(seed: int, size: int = 40):
    rng = random.Random(seed)
    index = AttributeIndex()
    corpus = {}
    for number in range(size):
        resource_id = f"r{number:03d}"
        metadata = random_metadata(rng)
        corpus[resource_id] = metadata
        index.add("patterns", resource_id, metadata)
    return rng, index, corpus


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
class TestRandomizedEquivalence:
    def test_evaluate_identical(self, seed):
        rng, index, _ = build_corpus(seed)
        for _ in range(120):
            query = random_query(rng, "patterns")
            plan = compile_query(query)
            assert plan.evaluate(index) == query.evaluate(index), query.describe()

    def test_matches_metadata_identical(self, seed):
        rng, _, corpus = build_corpus(seed)
        for _ in range(40):
            query = random_query(rng, "patterns")
            plan = compile_query(query)
            for metadata in corpus.values():
                assert plan.matches_metadata(metadata) == query.matches_metadata(metadata), \
                    query.describe()

    def test_evaluate_result_is_a_fresh_set(self, seed):
        """The plan intersects live postings but must never leak them."""
        rng, index, _ = build_corpus(seed)
        for _ in range(60):
            query = random_query(rng, "patterns")
            result = compile_query(query).evaluate(index)
            before = query.evaluate(index)
            result.add("sentinel-mutation")
            assert query.evaluate(index) == before


class TestOperatorEdges:
    def build_index(self):
        index = AttributeIndex()
        index.add("patterns", "r1", {"name": ["Observer"], "intent": ["decouple subject"]})
        index.add("patterns", "r2", {"name": ["Abstract Factory"], "intent": ["create families"]})
        return index

    def pairs(self):
        index = self.build_index()
        corpora = [
            {"name": ["Observer"], "intent": ["decouple subject"]},
            {"name": ["Abstract Factory"], "intent": ["create families"]},
            {},
        ]
        return index, corpora

    @pytest.mark.parametrize("operator", list(Operator))
    def test_each_operator_agrees(self, operator):
        index, corpora = self.pairs()
        for field in ("name", "intent", "*", "missing"):
            for value in ("Observer", "abstract factory", "obs", "", "!!!", "  OBSERVER  "):
                query = Query("patterns", [Criterion(field, value, operator)])
                plan = compile_query(query)
                assert plan.evaluate(index) == query.evaluate(index), (operator, field, value)
                for metadata in corpora:
                    assert plan.matches_metadata(metadata) == query.matches_metadata(metadata), \
                        (operator, field, value, metadata)

    def test_conjunction_reordered_cheapest_first(self):
        query = (Query("patterns")
                 .where("*", "observer", Operator.ANY)
                 .where("name", "obs", Operator.PREFIX)
                 .where("intent", "decouple", Operator.CONTAINS)
                 .where("name", "Observer", Operator.EQUALS))
        plan = compile_query(query)
        operators = [criterion.operator for criterion in plan.criteria]
        assert operators == [Operator.EQUALS, Operator.CONTAINS, Operator.PREFIX, Operator.ANY]
        index = self.build_index()
        assert plan.evaluate(index) == query.evaluate(index) == {"r1"}

    def test_blank_criteria_are_dropped(self):
        query = Query("patterns").where("name", "   ").where("name", "Observer", Operator.EQUALS)
        plan = compile_query(query)
        assert len(plan.criteria) == 1
        assert not plan.is_empty
        empty = compile_query(Query("patterns").where("name", " "))
        assert empty.is_empty

    def test_wire_form_cached_and_identical(self):
        query = Query.keyword("patterns", "observer factory")
        plan = compile_query(query)
        assert plan.wire_xml == query.to_xml_text()
        assert plan.wire_bytes == query.wire_size_bytes()
        assert plan.wire_xml is plan.wire_xml  # same object, rendered once

    def test_compiled_query_exposes_source(self):
        query = Query.keyword("patterns", "observer")
        plan = CompiledQuery(query)
        assert plan.source is query
        assert plan.community_id == "patterns"
        assert "observer" in plan.describe()
