"""Tests for the hand-written XML tokenizer."""

import pytest

from repro.xmlkit.errors import XMLParseError
from repro.xmlkit.tokenizer import TokenType, tokenize


def token_types(text):
    return [token.type for token in tokenize(text)]


class TestBasicTokens:
    def test_simple_element(self):
        tokens = tokenize("<a>hello</a>")
        assert [t.type for t in tokens] == [TokenType.START_TAG, TokenType.TEXT, TokenType.END_TAG]
        assert tokens[0].value == "a"
        assert tokens[1].value == "hello"
        assert tokens[2].value == "a"

    def test_empty_tag(self):
        tokens = tokenize("<br/>")
        assert tokens[0].type == TokenType.EMPTY_TAG
        assert tokens[0].value == "br"

    def test_attributes_double_and_single_quotes(self):
        tokens = tokenize("""<e a="1" b='two'/>""")
        assert tokens[0].attributes == {"a": "1", "b": "two"}

    def test_xml_declaration(self):
        tokens = tokenize('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert tokens[0].type == TokenType.DECLARATION
        assert tokens[0].attributes["version"] == "1.0"
        assert tokens[0].attributes["encoding"] == "UTF-8"

    def test_processing_instruction(self):
        tokens = tokenize('<?xml-stylesheet href="a.xsl"?><a/>')
        assert tokens[0].type == TokenType.PROCESSING
        assert tokens[0].value == "xml-stylesheet"

    def test_comment(self):
        tokens = tokenize("<a><!-- a comment --></a>")
        assert tokens[1].type == TokenType.COMMENT
        assert "a comment" in tokens[1].value

    def test_cdata_section(self):
        tokens = tokenize("<a><![CDATA[<not> & parsed]]></a>")
        assert tokens[1].type == TokenType.CDATA
        assert tokens[1].value == "<not> & parsed"

    def test_doctype(self):
        tokens = tokenize("<!DOCTYPE pattern SYSTEM 'pattern.dtd'><pattern/>")
        assert tokens[0].type == TokenType.DOCTYPE
        assert "pattern" in tokens[0].value

    def test_namespaced_tag_name(self):
        tokens = tokenize('<xsd:element name="community"/>')
        assert tokens[0].value == "xsd:element"
        assert tokens[0].attributes == {"name": "community"}


class TestEntities:
    def test_named_entities_in_text(self):
        tokens = tokenize("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</a>")
        assert tokens[1].value == "<tag> & \"q\" 'a'"

    def test_numeric_character_references(self):
        tokens = tokenize("<a>&#65;&#x42;</a>")
        assert tokens[1].value == "AB"

    def test_entities_in_attributes(self):
        tokens = tokenize('<a title="Tom &amp; Jerry"/>')
        assert tokens[0].attributes["title"] == "Tom & Jerry"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            tokenize("<a>&nbsp;</a>")

    def test_bare_ampersand_rejected(self):
        with pytest.raises(XMLParseError):
            tokenize("<a>fish & chips</a>")


class TestErrors:
    def test_unterminated_comment(self):
        with pytest.raises(XMLParseError):
            tokenize("<a><!-- never closed</a>")

    def test_double_hyphen_in_comment(self):
        with pytest.raises(XMLParseError):
            tokenize("<a><!-- bad -- comment --></a>")

    def test_unterminated_cdata(self):
        with pytest.raises(XMLParseError):
            tokenize("<a><![CDATA[oops</a>")

    def test_attribute_missing_equals(self):
        with pytest.raises(XMLParseError):
            tokenize("<a name/>")

    def test_attribute_unquoted_value(self):
        with pytest.raises(XMLParseError):
            tokenize("<a name=value/>")

    def test_duplicate_attribute(self):
        with pytest.raises(XMLParseError):
            tokenize('<a x="1" x="2"/>')

    def test_angle_bracket_in_attribute(self):
        with pytest.raises(XMLParseError):
            tokenize('<a x="a<b"/>')

    def test_malformed_end_tag(self):
        with pytest.raises(XMLParseError):
            tokenize("</a b>")

    def test_bad_name_start(self):
        with pytest.raises(XMLParseError):
            tokenize("<1abc/>")

    def test_error_carries_line_and_column(self):
        # The reported position is the start of the text node containing
        # the bad entity (line 2 here, right after <b>).
        with pytest.raises(XMLParseError) as error:
            tokenize("<a>\n<b>\n&bad;</b></a>")
        assert error.value.line == 2
        assert "bad" in str(error.value)


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("<a>\n  <b/>\n</a>")
        b_token = [t for t in tokens if t.type == TokenType.EMPTY_TAG][0]
        assert b_token.line == 2

    def test_whitespace_only_text_tokens_exist(self):
        types = token_types("<a>\n  <b/>\n</a>")
        assert TokenType.TEXT in types
