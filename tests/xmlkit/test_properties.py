"""Property-based tests for the XML substrate (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlkit.dom import Element
from repro.xmlkit.parser import parse
from repro.xmlkit.serializer import canonical, pretty, serialize

# ----------------------------------------------------------------------
# Strategies: random but well-formed element trees.
# ----------------------------------------------------------------------
names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
texts = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;:!?'<>&\"",
    max_size=40,
)
attribute_values = st.text(
    alphabet=string.ascii_letters + string.digits + " &<\"'",
    max_size=20,
)


@st.composite
def elements(draw, depth=0):
    element = Element(draw(names))
    for attr_name in draw(st.lists(names, max_size=3, unique=True)):
        element.set(attr_name, draw(attribute_values))
    element.text = draw(texts)
    if depth < 3:
        for child in draw(st.lists(elements(depth=depth + 1), max_size=3)):
            element.append(child)
            child.tail = draw(texts)
    return element


# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(elements())
def test_serialize_parse_roundtrip_preserves_structure(element):
    """parse(serialize(tree)) is structurally identical to the tree."""
    reparsed = parse(serialize(element)).root
    assert canonical(element) == canonical(reparsed)


@settings(max_examples=60, deadline=None)
@given(elements())
def test_pretty_and_compact_forms_are_equivalent(element):
    """Pretty-printing never changes the canonical content."""
    compact = parse(serialize(element)).root
    pretty_form = parse(pretty(element)).root
    assert canonical(compact) == canonical(pretty_form)


@settings(max_examples=60, deadline=None)
@given(elements())
def test_copy_is_structurally_equal_and_independent(element):
    clone = element.copy()
    assert canonical(clone) == canonical(element)
    clone.set("mutated", "yes")
    assert "mutated" not in element.attributes


@settings(max_examples=60, deadline=None)
@given(elements())
def test_canonical_is_deterministic(element):
    assert canonical(element) == canonical(element)


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet=string.printable, max_size=60))
def test_arbitrary_text_content_roundtrips(value):
    """Any printable text placed in an element survives a round-trip.

    Two documented normalisations apply: whitespace-only content is
    treated as empty, and characters illegal in XML output are rejected
    up front rather than silently corrupted.
    """
    element = Element("wrapper", text=value)
    try:
        serialized = serialize(element)
    except Exception:
        return
    roundtripped = parse(serialized).root.text
    if value.strip():
        assert roundtripped == value
    else:
        assert roundtripped == ""
