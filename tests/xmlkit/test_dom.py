"""Tests for the element tree (DOM) layer."""

from repro.xmlkit.dom import Document, Element, QName
from repro.xmlkit.parser import parse


class TestElementBasics:
    def test_make_child_and_iteration(self):
        root = Element("community")
        root.make_child("name", text="mp3")
        root.make_child("description", text="songs")
        assert [child.tag for child in root] == ["name", "description"]
        assert len(root) == 2

    def test_get_set_attributes(self):
        element = Element("element", {"name": "title"})
        assert element.get("name") == "title"
        assert element.get("missing") is None
        assert element.get("missing", "x") == "x"
        element.set("type", "xsd:string")
        assert element.has("type")

    def test_get_local_ignores_prefix(self):
        element = Element("element", {"up2p:searchable": "true"})
        assert element.get_local("searchable") == "true"
        assert element.get_local("missing") is None

    def test_namespace_tracking_via_set(self):
        element = Element("schema")
        element.set("xmlns:xsd", "http://www.w3.org/2001/XMLSchema")
        assert element.nsmap["xsd"] == "http://www.w3.org/2001/XMLSchema"

    def test_prefix_and_local_name(self):
        element = Element("xsd:element")
        assert element.prefix == "xsd"
        assert element.local_name == "element"

    def test_find_and_find_all(self):
        root = parse("<a><b>1</b><c/><b>2</b></a>").root
        assert root.find("b").text == "1"
        assert [node.text for node in root.find_all("b")] == ["1", "2"]
        assert root.find("zzz") is None

    def test_child_text(self):
        root = parse("<community><name>mp3</name></community>").root
        assert root.child_text("name") == "mp3"
        assert root.child_text("missing", "fallback") == "fallback"

    def test_text_content_concatenates_descendants(self):
        root = parse("<a>x<b>y</b>z</a>").root
        assert root.text_content() == "xyz"

    def test_iter_filters_by_local_name(self):
        root = parse("<a><b><c/></b><c/></a>").root
        assert len(list(root.iter("c"))) == 2
        assert len(list(root.iter())) == 4

    def test_remove(self):
        root = parse("<a><b/><c/></a>").root
        b = root.find("b")
        root.remove(b)
        assert [child.tag for child in root] == ["c"]
        assert b.parent is None

    def test_depth_and_path(self):
        root = parse("<a><b><c/></b></a>").root
        c = root.children[0].children[0]
        assert c.depth() == 2
        assert c.path_from_root() == "a/b/c"


class TestCopyAndEquality:
    def test_copy_is_deep(self):
        root = parse("<a x='1'><b>t</b></a>").root
        clone = root.copy()
        clone.children[0].text = "changed"
        clone.set("x", "2")
        assert root.children[0].text == "t"
        assert root.get("x") == "1"
        assert clone.parent is None

    def test_structural_equality(self):
        a = parse("<a x='1'><b>t</b></a>").root
        b = parse("<a x='1'><b>t</b></a>").root
        c = parse("<a x='2'><b>t</b></a>").root
        assert a.structurally_equal(b)
        assert not a.structurally_equal(c)

    def test_structural_equality_ignores_namespace_declarations(self):
        a = parse("<a xmlns:x='urn:x'><b/></a>").root
        b = parse("<a><b/></a>").root
        assert a.structurally_equal(b)


class TestQName:
    def test_clark_notation(self):
        assert QName("urn:x", "item").clark() == "{urn:x}item"
        assert QName(None, "item").clark() == "item"

    def test_parse_with_resolver(self):
        resolver = {"xsd": "http://www.w3.org/2001/XMLSchema", "": "urn:default"}.get
        assert QName.parse("xsd:string", resolver) == QName("http://www.w3.org/2001/XMLSchema", "string")
        assert QName.parse("string", resolver) == QName("urn:default", "string")

    def test_parse_without_resolver(self):
        assert QName.parse("plain") == QName(None, "plain")


class TestDocument:
    def test_document_iteration(self):
        document = parse("<a><b/><b/></a>")
        assert isinstance(document, Document)
        assert len(list(document.iter("b"))) == 2
