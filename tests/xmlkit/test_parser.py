"""Tests for the tree-building XML parser."""

import pytest

from repro.xmlkit.errors import XMLParseError
from repro.xmlkit.parser import parse, parse_file


class TestWellFormedDocuments:
    def test_single_root(self):
        document = parse("<community/>")
        assert document.root.tag == "community"
        assert document.root.children == []

    def test_nested_children_in_order(self):
        document = parse("<a><b/><c/><d/></a>")
        assert [child.tag for child in document.root.children] == ["b", "c", "d"]

    def test_text_and_tail(self):
        document = parse("<a>before<b/>after</a>")
        assert document.root.text == "before"
        assert document.root.children[0].tail == "after"

    def test_cdata_becomes_text(self):
        document = parse("<code><![CDATA[if (a < b) {}]]></code>")
        assert document.root.text == "if (a < b) {}"

    def test_declaration_fields(self):
        document = parse('<?xml version="1.1" encoding="ISO-8859-1" standalone="yes"?><a/>')
        assert document.version == "1.1"
        assert document.encoding == "ISO-8859-1"
        assert document.standalone is True

    def test_comments_and_pis_ignored(self):
        document = parse("<!-- c --><?pi data?><a><!-- inner --><b/></a>")
        assert [child.tag for child in document.root.children] == ["b"]

    def test_parent_links(self):
        document = parse("<a><b><c/></b></a>")
        c = document.root.children[0].children[0]
        assert c.parent.tag == "b"
        assert c.parent.parent.tag == "a"

    def test_whitespace_text_dropped_when_requested(self):
        document = parse("<a>\n  <b/>\n</a>", keep_whitespace_text=False)
        assert document.root.text == ""

    def test_namespace_declarations_resolved(self):
        document = parse(
            '<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"><xsd:element/></xsd:schema>'
        )
        assert document.root.namespace == "http://www.w3.org/2001/XMLSchema"
        assert document.root.children[0].namespace == "http://www.w3.org/2001/XMLSchema"

    def test_default_namespace_inherited(self):
        document = parse('<schema xmlns="urn:x"><element/></schema>')
        assert document.root.children[0].namespace == "urn:x"

    def test_community_schema_from_paper_parses(self, community_schema_xsd):
        document = parse(community_schema_xsd, check_namespaces=False)
        names = [element.get("name") for element in document.root.iter("element")]
        assert "community" in names
        assert "protocol" in names

    def test_parse_file(self, tmp_path):
        path = tmp_path / "object.xml"
        path.write_text("<pattern><name>Observer</name></pattern>", encoding="utf-8")
        document = parse_file(path)
        assert document.root.child_text("name") == "Observer"


class TestMalformedDocuments:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "text outside",
            "<a/>trailing text",
            "<a><b></a>",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(XMLParseError):
            parse(text)

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(XMLParseError):
            parse("<xsd:schema><a/></xsd:schema>")

    def test_undeclared_prefix_allowed_when_disabled(self):
        document = parse("<xsd:schema><a/></xsd:schema>", check_namespaces=False)
        assert document.root.local_name == "schema"

    def test_undeclared_attribute_prefix_rejected(self):
        with pytest.raises(XMLParseError):
            parse('<a up2p:searchable="true"/>')

    def test_xml_prefix_is_predeclared(self):
        document = parse('<a xml:lang="en"/>')
        assert document.root.get("xml:lang") == "en"

    def test_declaration_not_first_rejected(self):
        with pytest.raises(XMLParseError):
            parse('<a/><?xml version="1.0"?>')
