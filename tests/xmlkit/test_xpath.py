"""Tests for the XPath subset."""

import pytest

from repro.xmlkit.errors import XPathError
from repro.xmlkit.parser import parse
from repro.xmlkit.xpath import XPath, xpath_find, xpath_find_all

DOCUMENT = """
<library>
  <book year="1994" category="software">
    <title>Design Patterns</title>
    <author>Gamma</author>
    <author>Helm</author>
  </book>
  <book year="1999" category="software">
    <title>Refactoring</title>
    <author>Fowler</author>
  </book>
  <journal year="2001">
    <title>IEEE Internet Computing</title>
  </journal>
</library>
"""


@pytest.fixture()
def library():
    return parse(DOCUMENT, keep_whitespace_text=False)


class TestLocationPaths:
    def test_child_path(self, library):
        titles = xpath_find_all(library, "book/title")
        assert [t.text_content() for t in titles] == ["Design Patterns", "Refactoring"]

    def test_descendant_path(self, library):
        assert len(xpath_find_all(library, "//author")) == 3

    def test_wildcard(self, library):
        assert len(xpath_find_all(library, "*")) == 3

    def test_absolute_path(self, library):
        nodes = xpath_find_all(library.root.children[0], "/library/book")
        assert len(nodes) == 2

    def test_attribute_step(self, library):
        years = xpath_find_all(library, "book/@year")
        assert years == ["1994", "1999"]

    def test_attribute_wildcard(self, library):
        values = xpath_find_all(library, "journal/@*")
        assert values == ["2001"]

    def test_text_step(self, library):
        texts = xpath_find_all(library, "book/title/text()")
        assert texts == ["Design Patterns", "Refactoring"]

    def test_self_and_parent(self, library):
        book = library.root.children[0]
        assert xpath_find_all(book, ".") == [book]
        assert xpath_find_all(book.children[0], "..") == [book]

    def test_union(self, library):
        nodes = xpath_find_all(library, "book/title | journal/title")
        assert len(nodes) == 3

    def test_mixed_descendant_inside_path(self, library):
        assert len(xpath_find_all(library, "book//author")) == 3


class TestPredicates:
    def test_positional(self, library):
        node = xpath_find(library, "book[2]/title")
        assert node.text_content() == "Refactoring"

    def test_last(self, library):
        node = xpath_find(library, "book[last()]/title")
        assert node.text_content() == "Refactoring"

    def test_attribute_equality(self, library):
        node = xpath_find(library, "book[@year='1999']/title")
        assert node.text_content() == "Refactoring"

    def test_attribute_existence(self, library):
        assert len(xpath_find_all(library, "*[@category]")) == 2

    def test_child_value_equality(self, library):
        node = xpath_find(library, "book[author='Fowler']/title")
        assert node.text_content() == "Refactoring"

    def test_child_existence(self, library):
        assert len(xpath_find_all(library, "*[author]")) == 2

    def test_chained_predicates(self, library):
        nodes = xpath_find_all(library, "book[@category='software'][1]")
        assert len(nodes) == 1
        assert nodes[0].get("year") == "1994"


class TestAPI:
    def test_string_value(self, library):
        assert XPath("book/title").string_value(library) == "Design Patterns"
        assert XPath("book/@year").string_value(library) == "1994"
        assert XPath("missing").string_value(library) == ""

    def test_first_none_when_no_match(self, library):
        assert xpath_find(library, "nonexistent") is None

    def test_select_elements_filters_strings(self, library):
        assert XPath("book/@year").select_elements(library) == []

    def test_no_duplicates_in_union(self, library):
        nodes = xpath_find_all(library, "book | book")
        assert len(nodes) == 2

    @pytest.mark.parametrize("expression", ["", "   ", "a[", "a[]"])
    def test_invalid_expressions(self, expression):
        with pytest.raises(XPathError):
            XPath(expression)

    def test_reuse_compiled_expression(self, library):
        expression = XPath("//title")
        assert len(expression.select(library)) == 3
        assert len(expression.select(library)) == 3
