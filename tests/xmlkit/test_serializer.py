"""Tests for XML serialization."""

import pytest

from repro.xmlkit.dom import Element
from repro.xmlkit.errors import XMLSerializeError
from repro.xmlkit.escape import escape_attribute, escape_text, is_valid_name
from repro.xmlkit.parser import parse
from repro.xmlkit.serializer import canonical, pretty, serialize


class TestSerialize:
    def test_roundtrip_simple(self):
        text = "<community><name>mp3 &amp; more</name><protocol>Gnutella</protocol></community>"
        document = parse(text)
        again = parse(serialize(document))
        assert canonical(document) == canonical(again)

    def test_empty_element_self_closes(self):
        assert serialize(Element("br"), xml_declaration=False) == "<br/>"

    def test_declaration_toggle(self):
        element = Element("a")
        assert serialize(element).startswith("<?xml")
        assert not serialize(element, xml_declaration=False).startswith("<?xml")

    def test_attribute_escaping(self):
        element = Element("a", {"title": 'Tom & "Jerry" <3'})
        output = serialize(element, xml_declaration=False)
        assert "&amp;" in output and "&quot;" in output and "&lt;" in output
        assert parse(output).root.get("title") == 'Tom & "Jerry" <3'

    def test_text_escaping_roundtrip(self):
        element = Element("a", text="1 < 2 & 3 > 2")
        assert parse(serialize(element)).root.text == "1 < 2 & 3 > 2"

    def test_illegal_control_character_rejected(self):
        element = Element("a", text="bad \x01 char")
        with pytest.raises(XMLSerializeError):
            serialize(element)


class TestPretty:
    def test_pretty_indents_children(self):
        document = parse("<a><b><c/></b></a>")
        output = pretty(document)
        assert "\n  <b>" in output
        assert "\n    <c/>" in output

    def test_pretty_preserves_inline_text(self):
        document = parse("<a><b>hello world</b></a>")
        output = pretty(document)
        assert "<b>hello world</b>" in output

    def test_pretty_reparses_equal(self, community_schema_xsd):
        document = parse(community_schema_xsd, check_namespaces=False)
        again = parse(pretty(document), check_namespaces=False)
        assert canonical(document) == canonical(again)


class TestCanonical:
    def test_attribute_order_independent(self):
        a = parse('<e b="2" a="1"/>')
        b = parse('<e a="1" b="2"/>')
        assert canonical(a) == canonical(b)

    def test_whitespace_insensitive(self):
        a = parse("<e>\n  <f>x</f>\n</e>")
        b = parse("<e><f>x</f></e>")
        assert canonical(a) == canonical(b)

    def test_content_sensitive(self):
        a = parse("<e><f>x</f></e>")
        b = parse("<e><f>y</f></e>")
        assert canonical(a) != canonical(b)


class TestEscapeHelpers:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute_newlines(self):
        assert "&#10;" in escape_attribute("line1\nline2")

    @pytest.mark.parametrize("name,ok", [
        ("community", True),
        ("xsd:element", True),
        ("_private", True),
        ("with-dash", True),
        ("1number", False),
        ("", False),
        ("spa ce", False),
    ])
    def test_is_valid_name(self, name, ok):
        assert is_valid_name(name) is ok
