"""Tests for popularity distributions, query workloads and scenarios."""

import pytest

from repro.communities.design_patterns import generate_pattern_corpus
from repro.workloads.popularity import ZipfDistribution
from repro.workloads.queries import build_query_workload
from repro.workloads.scenario import ScenarioConfig, build_scenario


class TestZipf:
    def test_probabilities_sum_to_one(self):
        zipf = ZipfDistribution(50, exponent=1.0)
        assert sum(zipf.probability(rank) for rank in range(50)) == pytest.approx(1.0)

    def test_rank_zero_most_popular(self):
        zipf = ZipfDistribution(100, exponent=1.0)
        assert zipf.probability(0) > zipf.probability(1) > zipf.probability(50)

    def test_samples_within_range_and_skewed(self):
        zipf = ZipfDistribution(20, exponent=1.2, seed=4)
        samples = zipf.sample_many(3000)
        assert all(0 <= sample < 20 for sample in samples)
        head = sum(1 for sample in samples if sample < 4)
        assert head / len(samples) > 0.45

    def test_exponent_zero_is_uniformish(self):
        zipf = ZipfDistribution(10, exponent=0.0, seed=1)
        assert zipf.probability(0) == pytest.approx(zipf.probability(9))

    def test_expected_top_share_monotone(self):
        zipf = ZipfDistribution(100, exponent=1.0)
        assert zipf.expected_top_share(10) < zipf.expected_top_share(50) <= 1.0

    def test_pick_requires_matching_length(self):
        zipf = ZipfDistribution(3, seed=2)
        assert zipf.pick(["a", "b", "c"]) in ("a", "b", "c")
        with pytest.raises(ValueError):
            zipf.pick(["a"])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0)
        with pytest.raises(ValueError):
            ZipfDistribution(5, exponent=-1)

    def test_deterministic_with_seed(self):
        assert ZipfDistribution(30, seed=7).sample_many(20) == ZipfDistribution(30, seed=7).sample_many(20)


class TestQueryWorkload:
    def test_workload_size_and_expectations(self):
        corpus = generate_pattern_corpus(40, seed=1)
        workload = build_query_workload("patterns", corpus, count=30, seed=2)
        assert len(workload) == 30
        assert len(workload.expected_matches) == 30
        assert workload.mean_expected_matches() >= 0

    def test_miss_fraction_zero_and_one(self):
        corpus = generate_pattern_corpus(20, seed=1)
        all_miss = build_query_workload("patterns", corpus, count=20, miss_fraction=1.0, seed=3)
        assert all(expected == 0 for expected in all_miss.expected_matches)
        no_miss = build_query_workload("patterns", corpus, count=20, miss_fraction=0.0, seed=3)
        assert sum(no_miss.expected_matches) > 0

    def test_queries_target_community(self):
        corpus = generate_pattern_corpus(10, seed=1)
        workload = build_query_workload("patterns", corpus, count=10, seed=1)
        assert all(query.community_id == "patterns" for query in workload)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            build_query_workload("patterns", [], count=5)

    def test_invalid_miss_fraction(self):
        corpus = generate_pattern_corpus(5, seed=1)
        with pytest.raises(ValueError):
            build_query_workload("patterns", corpus, miss_fraction=1.5)

    def test_deterministic(self):
        corpus = generate_pattern_corpus(20, seed=1)
        a = build_query_workload("patterns", corpus, count=15, seed=9)
        b = build_query_workload("patterns", corpus, count=15, seed=9)
        assert [q.describe() for q in a] == [q.describe() for q in b]


class TestScenario:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(protocol="bittorrent")
        with pytest.raises(ValueError):
            ScenarioConfig(community="unknown")
        with pytest.raises(ValueError):
            ScenarioConfig(peers=1)
        with pytest.raises(ValueError):
            ScenarioConfig(peers=10, publishers=12)
        with pytest.raises(ValueError):
            ScenarioConfig(peers=10, publishers=5, members=3)

    @pytest.mark.parametrize("protocol", ["centralized", "gnutella", "super-peer"])
    def test_small_scenario_end_to_end(self, protocol):
        scenario = build_scenario(ScenarioConfig(
            protocol=protocol, peers=15, members=8, publishers=4,
            corpus_size=20, queries=10, seed=3,
        ))
        assert len(scenario.servents) == 15
        assert len(scenario.applications) == 8
        assert len(scenario.resource_ids) == 20
        counts = scenario.run_queries()
        assert len(counts) == 10
        stats = scenario.network.stats
        assert len(stats.queries) == 10
        # At least the non-miss queries should mostly succeed.
        assert stats.success_rate() >= 0.5

    def test_stats_reset_before_query_phase(self):
        scenario = build_scenario(ScenarioConfig(peers=10, members=5, publishers=3,
                                                 corpus_size=10, queries=5, seed=1))
        assert scenario.network.stats.total_messages == 0


class TestMixedWorkload:
    CONFIG = dict(
        protocol="gnutella", peers=20, members=10, publishers=4,
        corpus_size=20, queries=30, seed=7,
        retrieve_fraction=0.4, popularity_skew=1.2,
        concurrency=5, query_interarrival_ms=10.0,
    )

    def test_new_knobs_validated(self):
        with pytest.raises(ValueError):
            ScenarioConfig(retrieve_fraction=-0.1)
        with pytest.raises(ValueError):
            ScenarioConfig(retrieve_fraction=1.5)
        with pytest.raises(ValueError):
            ScenarioConfig(popularity_skew=-1.0)

    def test_mixed_operations_split_and_determinism(self):
        scenario = build_scenario(ScenarioConfig(**self.CONFIG))
        ops = scenario.mixed_operations()
        assert len(ops) == self.CONFIG["queries"]
        from repro.engine.driver import RetrieveOp, SearchOp
        retrieve_ops = [op for op in ops if isinstance(op, RetrieveOp)]
        search_ops = [op for op in ops if isinstance(op, SearchOp)]
        assert retrieve_ops and search_ops
        # The op sequence is a pure function of the config.
        again = build_scenario(ScenarioConfig(**self.CONFIG)).mixed_operations()
        assert [type(op).__name__ for op in again] == [type(op).__name__ for op in ops]
        assert [op.resource_id for op in retrieve_ops] == \
            [op.resource_id for op in again if isinstance(op, RetrieveOp)]

    def test_zero_fraction_keeps_pure_search_workload(self):
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG, "retrieve_fraction": 0.0}))
        from repro.engine.driver import SearchOp
        assert all(isinstance(op, SearchOp) for op in scenario.mixed_operations())

    def test_run_mixed_workload_replicates_popular_objects(self):
        scenario = build_scenario(ScenarioConfig(**self.CONFIG))
        outcome = scenario.run_mixed_workload()
        assert outcome.downloads_completed > 0
        assert scenario.network.stats.downloads == outcome.downloads_completed
        degrees = scenario.replication_degrees()
        # Downloads concentrate on popular ranks, so the head of the
        # popularity order carries more copies than the tail.
        head = sum(degrees[:5])
        tail = sum(degrees[-5:])
        assert head > tail

    def test_run_mixed_workload_deterministic(self):
        def run_once():
            scenario = build_scenario(ScenarioConfig(**self.CONFIG))
            outcome = scenario.run_mixed_workload()
            return {
                "counts": outcome.result_counts,
                "latencies": [round(value, 9) for value in outcome.latencies_ms],
                "downloads": outcome.downloads_completed,
                "bytes": scenario.network.stats.download_bytes,
                "degrees": scenario.replication_degrees(),
            }
        assert run_once() == run_once()

    def test_mixed_workload_under_churn_fails_softly(self):
        scenario = build_scenario(ScenarioConfig(**{
            **self.CONFIG,
            "churn_session_ms": 2_000.0,
            "churn_absence_ms": 1_000.0,
        }))
        outcome = scenario.run_mixed_workload()
        # Under churn some downloads may fail; the run itself completes
        # and accounts every operation one way or the other.
        total = len(outcome.responses) + len(outcome.retrieves)
        assert total == self.CONFIG["queries"]
