"""Tests for the process-per-shard population runner."""

from __future__ import annotations

import pytest

from repro.workloads.scale import (
    PopulationReport,
    island_config,
    island_sizes,
    run_population,
)


class TestIslandSplit:
    def test_sizes_sum_and_balance(self):
        assert island_sizes(100, 4) == [25, 25, 25, 25]
        assert island_sizes(103, 4) == [26, 26, 26, 25]
        assert island_sizes(10, 1) == [10]

    def test_population_too_small_rejected(self):
        with pytest.raises(ValueError):
            island_sizes(5, 4)

    def test_island_config_scales_roles_to_island_size(self):
        small = island_config(island=0, peers=10, protocol="gnutella",
                              seed=0, queries=4)
        large = island_config(island=1, peers=2_500, protocol="gnutella",
                              seed=0, queries=4)
        assert 1 <= small["publishers"] <= small["members"] <= small["peers"]
        assert 1 <= large["publishers"] <= large["members"] <= large["peers"]
        assert small["seed"] != large["seed"]  # islands draw distinct workloads


class TestRunPopulation:
    def test_parallel_and_sequential_agree_exactly(self):
        """Worker-pool scheduling must be unobservable: the aggregate
        counters are order-independent sums over deterministic islands."""
        kwargs = dict(shards=2, protocol="gnutella", seed=11,
                      queries_per_island=6)
        parallel = run_population(48, parallel=True, **kwargs)
        sequential = run_population(48, parallel=False, **kwargs)
        assert parallel.counters() == sequential.counters()
        assert parallel.messages > 0 and parallel.results > 0

    def test_report_aggregates_and_rates(self):
        report = run_population(40, shards=2, protocol="centralized", seed=3,
                                queries_per_island=4, parallel=False)
        assert isinstance(report, PopulationReport)
        assert report.population == 40 and report.shards == 2
        assert len(report.islands) == 2
        assert report.messages == sum(island.messages for island in report.islands)
        assert report.messages_per_s > 0
        assert report.peak_rss_bytes > 0
        counters = report.counters()
        assert counters["messages"] == report.messages
        assert any(key.startswith("type:") for key in counters)

    def test_worker_crash_surfaces_as_an_error_not_a_hang(self):
        """A worker dying without reporting (OOM kill, segfault) must
        fail the run loudly: the futures pool raises instead of waiting
        forever on the lost task the way ``Pool.map`` does."""
        with pytest.raises(RuntimeError, match="island worker crashed"):
            run_population(24, shards=2, protocol="centralized", seed=1,
                           queries_per_island=2, parallel=True,
                           _hard_crash=True)

    def test_config_overrides_reach_the_islands(self):
        report = run_population(40, shards=2, protocol="gnutella", seed=3,
                                queries_per_island=4, parallel=False,
                                ttl=2, corpus_size=10)
        assert report.results >= 0  # ran to completion with the overrides
        assert all(island.queries == 4 for island in report.islands)
