"""Grouped configuration objects: interchangeable with flat kwargs.

The redesign's contract: ``ScenarioConfig(cache=CacheConfig(...))``
and ``ScenarioConfig(result_caching=..., ...)`` are two spellings of
the same configuration — whole seeded runs must be bit-identical
across them, value validation must fail identically, and mixing a
group with an explicit flat knob of the same group must refuse
loudly rather than silently prefer one.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.network.base import PeerNetwork
from repro.network.gnutella import GnutellaProtocol
from repro.workloads.config import (
    CacheConfig,
    MembershipConfig,
    ReliabilityConfig,
    RoutingConfig,
    resolve_group,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario

PROTOCOL_NAMES = ("centralized", "gnutella", "super-peer", "rendezvous")

BASE = dict(
    peers=30,
    members=12,
    publishers=6,
    corpus_size=40,
    queries=16,
    ttl=6,
    seed=23,
    concurrency=8,
    query_interarrival_ms=20.0,
)


def signature(**overrides):
    scenario = build_scenario(ScenarioConfig(**{**BASE, **overrides}))
    counts = scenario.run_queries(max_results=100)
    stats = scenario.network.stats
    return {
        "counts": counts,
        "total_messages": stats.total_messages,
        "total_bytes": stats.total_bytes,
        "by_type": dict(stats.messages_by_type),
        "bytes_by_type": dict(stats.bytes_by_type),
        "latencies": [round(record.latency_ms, 6) for record in stats.queries],
    }


class TestGroupDataclasses:
    def test_frozen(self):
        for config in (CacheConfig(), MembershipConfig(), ReliabilityConfig(),
                       RoutingConfig()):
            with pytest.raises(dataclasses.FrozenInstanceError):
                config.__class__ and setattr(config, next(iter(
                    field.name for field in dataclasses.fields(config))), 1)

    @pytest.mark.parametrize("bad", (
        lambda: CacheConfig(capacity=0),
        lambda: CacheConfig(ttl_ms=0.0),
        lambda: MembershipConfig(maintenance_interval_ms=0.0),
        lambda: MembershipConfig(heartbeat_lease_intervals=0),
        lambda: MembershipConfig(rendezvous_lease_ms=0.0),
        lambda: ReliabilityConfig(retry_timeout_ms=0.0),
        lambda: ReliabilityConfig(retry_max_attempts=0),
        lambda: ReliabilityConfig(download_chunk_bytes=0),
        lambda: ReliabilityConfig(download_stall_timeout_ms=0.0),
        lambda: RoutingConfig(filter_bits=0),
        lambda: RoutingConfig(filter_bits=100),   # not a multiple of 8
        lambda: RoutingConfig(hash_count=0),
        lambda: RoutingConfig(depth=0),
    ))
    def test_value_validation(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_resolve_group_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="cache must be a CacheConfig"):
            resolve_group(MembershipConfig(), "cache", CacheConfig, {})

    def test_resolve_group_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown CacheConfig fields"):
            resolve_group(None, "cache", CacheConfig, {"nope": 1})


class TestClashRefusal:
    def test_scenario_group_plus_flat_raises(self):
        with pytest.raises(ValueError, match="cache=CacheConfig"):
            ScenarioConfig(cache=CacheConfig(enabled=True), result_caching=True)
        with pytest.raises(ValueError, match="membership=MembershipConfig"):
            ScenarioConfig(membership=MembershipConfig(live=True),
                           maintenance_interval_ms=500.0)
        with pytest.raises(ValueError, match="reliability=ReliabilityConfig"):
            ScenarioConfig(reliability=ReliabilityConfig(reliable_delivery=True),
                           retry_max_attempts=2)
        with pytest.raises(ValueError, match="routing=RoutingConfig"):
            ScenarioConfig(routing=RoutingConfig(informed=True),
                           routing_depth=2)

    def test_network_group_plus_flat_raises(self):
        with pytest.raises(ValueError, match="not both"):
            GnutellaProtocol(cache=CacheConfig(enabled=True),
                             cache_ttl_ms=100.0)
        with pytest.raises(ValueError, match="not both"):
            GnutellaProtocol(reliability=ReliabilityConfig(),
                             download_chunk_bytes=None)

    def test_flat_defaults_do_not_clash_with_groups(self):
        # Untouched flat kwargs coexist with any group spelling.
        config = ScenarioConfig(cache=CacheConfig(enabled=True, ttl_ms=400.0),
                                membership=MembershipConfig(live=True),
                                **BASE)
        assert config.result_caching is True
        assert config.cache_ttl_ms == 400.0
        assert config.live_membership is True


class TestMaterializedSpellings:
    def test_scenario_materializes_both(self):
        config = ScenarioConfig(result_caching=True, cache_ttl_ms=750.0, **BASE)
        assert config.cache == CacheConfig(enabled=True, ttl_ms=750.0)
        assert config.membership == MembershipConfig()
        assert config.reliability == ReliabilityConfig()
        assert config.routing == RoutingConfig()

    def test_network_materializes_both(self):
        network = GnutellaProtocol(
            membership=MembershipConfig(live=False,
                                        maintenance_interval_ms=1_000.0,
                                        heartbeat_lease_intervals=3))
        assert network.maintenance_interval_ms == 1_000.0
        assert network.heartbeat_lease_intervals == 3
        assert network.heartbeat_lease_ms == 3_000.0
        assert network.membership_config.heartbeat_lease_intervals == 3
        assert isinstance(network, PeerNetwork)

    def test_heartbeat_lease_flows_from_scenario_to_network(self):
        scenario = build_scenario(ScenarioConfig(
            protocol="gnutella", heartbeat_lease_intervals=4, **BASE))
        assert scenario.network.heartbeat_lease_intervals == 4
        assert scenario.network.heartbeat_lease_ms == \
            4 * scenario.network.maintenance_interval_ms

    def test_validation_parity_between_spellings(self):
        """Both spellings reject bad values with the same error."""
        with pytest.raises(ValueError, match="at least one entry"):
            ScenarioConfig(cache_capacity=0, **BASE)
        with pytest.raises(ValueError, match="at least one entry"):
            ScenarioConfig(cache=CacheConfig(capacity=0), **BASE)
        with pytest.raises(ValueError, match="maintenance interval"):
            GnutellaProtocol(maintenance_interval_ms=-1.0)
        with pytest.raises(ValueError, match="maintenance interval"):
            GnutellaProtocol(membership=MembershipConfig(
                maintenance_interval_ms=-1.0))


class TestGroupedFlatEquivalence:
    """Whole seeded runs are bit-identical across the two spellings."""

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_default_groups_match_defaults(self, protocol):
        flat = signature(protocol=protocol)
        grouped = signature(protocol=protocol, cache=CacheConfig(),
                            membership=MembershipConfig(),
                            reliability=ReliabilityConfig(),
                            routing=RoutingConfig())
        assert flat == grouped

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_caching_cell_equivalent(self, protocol):
        flat = signature(protocol=protocol, result_caching=True,
                         cache_capacity=64, cache_ttl_ms=800.0,
                         query_repeat_alpha=0.5)
        grouped = signature(protocol=protocol, query_repeat_alpha=0.5,
                            cache=CacheConfig(enabled=True, capacity=64,
                                              ttl_ms=800.0))
        assert flat == grouped

    def test_composed_cell_equivalent(self):
        """One cell composing all four groups at once (live membership,
        caching, reliable chunked downloads, churn) must agree with the
        flat spelling bit-for-bit."""
        knobs_flat = dict(
            protocol="super-peer",
            live_membership=True, maintenance_interval_ms=500.0,
            heartbeat_lease_intervals=3,
            result_caching=True, cache_capacity=64, cache_ttl_ms=450.0,
            reliable_delivery=True, retry_timeout_ms=125.0,
            retry_max_attempts=3, download_chunk_bytes=4_096,
            download_stall_timeout_ms=250.0,
            retrieve_fraction=0.3,
            churn_session_ms=1_500.0, churn_absence_ms=800.0,
        )
        knobs_grouped = dict(
            protocol="super-peer",
            membership=MembershipConfig(live=True,
                                        maintenance_interval_ms=500.0,
                                        heartbeat_lease_intervals=3),
            cache=CacheConfig(enabled=True, capacity=64, ttl_ms=450.0),
            reliability=ReliabilityConfig(reliable_delivery=True,
                                          retry_timeout_ms=125.0,
                                          retry_max_attempts=3,
                                          download_chunk_bytes=4_096,
                                          download_stall_timeout_ms=250.0),
            retrieve_fraction=0.3,
            churn_session_ms=1_500.0, churn_absence_ms=800.0,
        )
        assert signature(**knobs_flat) == signature(**knobs_grouped)

    def test_routing_cell_equivalent(self):
        flat = signature(protocol="gnutella", informed_routing=True,
                         routing_filter_bits=2_048, routing_depth=4)
        grouped = signature(protocol="gnutella",
                            routing=RoutingConfig(informed=True,
                                                  filter_bits=2_048, depth=4))
        assert flat == grouped
