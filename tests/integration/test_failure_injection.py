"""Failure-injection integration tests: churn, malformed input, missing peers."""

import pytest

from repro.communities.design_patterns import design_pattern_community, gof_pattern_records
from repro.communities.mp3 import mp3_community
from repro.core.application import Application
from repro.core.errors import InvalidObjectError
from repro.core.servent import Servent
from repro.network.churn import ChurnModel
from repro.network.errors import PeerOfflineError, UnknownPeerError
from repro.network.gnutella import GnutellaProtocol
from repro.storage.errors import ObjectNotFoundError
from repro.xmlkit.errors import XMLParseError


class TestMalformedInput:
    def test_malformed_xml_object_rejected(self, mp3_application):
        with pytest.raises(XMLParseError):
            mp3_application.publish_xml("<mp3><title>unterminated")

    def test_schema_violating_object_rejected(self, mp3_application):
        with pytest.raises(InvalidObjectError):
            mp3_application.publish_xml(
                "<mp3><title>ok</title><artist>ok</artist><album>ok</album>"
                "<genre>not-a-genre</genre><bitrate>192</bitrate></mp3>"
            )

    def test_object_for_wrong_community_rejected(self, mp3_application):
        with pytest.raises(InvalidObjectError):
            mp3_application.publish_xml("<pattern><name>Observer</name></pattern>")

    def test_rejected_objects_leave_no_trace(self, mp3_application):
        before = mp3_application.servent.statistics()
        with pytest.raises(InvalidObjectError):
            mp3_application.publish_xml("<pattern><name>Observer</name></pattern>")
        assert mp3_application.servent.statistics() == before


class TestOfflineAndMissingPeers:
    def build(self):
        network = GnutellaProtocol(seed=21, degree=3, default_ttl=8)
        alice = Servent("alice", network)
        bob = Servent("bob", network)
        helpers = [Servent(f"relay-{index}", network) for index in range(8)]
        definition = design_pattern_community()
        alice_app = definition.application_on(alice)
        found = bob.search_communities("patterns").results[0]
        bob_app = Application(bob, bob.join_community(found))
        network.build_overlay()
        for record in gof_pattern_records()[:5]:
            alice_app.publish(record)
        return network, alice, bob, bob_app, helpers

    def test_download_from_offline_provider_fails_cleanly(self):
        network, alice, bob, bob_app, _ = self.build()
        hit = bob_app.search("singleton", max_results=10).results[0]
        network.set_online(hit.provider_id, False)
        with pytest.raises(PeerOfflineError):
            bob_app.download(hit)

    def test_provider_disappearing_removes_results(self):
        network, alice, bob, bob_app, _ = self.build()
        assert bob_app.search("singleton").result_count >= 1
        network.set_online("alice", False)
        assert bob_app.search("singleton").result_count == 0

    def test_download_of_unknown_resource_fails(self):
        network, alice, bob, bob_app, _ = self.build()
        with pytest.raises(ObjectNotFoundError):
            network.retrieve("bob", "alice", "not-a-resource-id")

    def test_unknown_provider_rejected(self):
        network, alice, bob, bob_app, _ = self.build()
        with pytest.raises(UnknownPeerError):
            network.retrieve("bob", "ghost", "whatever")

    def test_results_return_when_provider_comes_back(self):
        network, alice, bob, bob_app, _ = self.build()
        network.set_online("alice", False)
        assert bob_app.search("singleton").result_count == 0
        network.set_online("alice", True)
        assert bob_app.search("singleton").result_count >= 1


class TestChurnDuringWorkload:
    def test_searches_survive_heavy_churn(self):
        network = GnutellaProtocol(seed=33, degree=4, default_ttl=8)
        servents = [Servent(f"peer-{index:02d}", network) for index in range(30)]
        definition = mp3_community()
        founder = definition.application_on(servents[0])
        applications = [founder]
        for servent in servents[1:10]:
            found = [r for r in servent.search_communities("music").results
                     if r.title == definition.name]
            applications.append(Application(servent, servent.join_community(found[0])))
        network.build_overlay()
        corpus = definition.sample_corpus(30, seed=11)
        for index, record in enumerate(corpus):
            applications[index % len(applications)].publish(record)

        churn = ChurnModel(network, mean_session_ms=2_000, mean_absence_ms=2_000, seed=3)
        churn.start([f"peer-{index:02d}" for index in range(10, 30)])

        completed = 0
        found_any = 0
        for round_number in range(10):
            network.simulator.run(until_ms=network.simulator.now + 1_000)
            searcher = applications[round_number % len(applications)]
            if not searcher.servent.peer.online:
                continue
            response = searcher.search("the", max_results=50)
            completed += 1
            found_any += 1 if response.result_count > 0 else 0
        assert completed >= 5
        # The workload keeps functioning; results may shrink but never error.

    def test_replicas_keep_object_available_when_publisher_leaves(self):
        network = GnutellaProtocol(seed=44, degree=4, default_ttl=8)
        alice = Servent("alice", network)
        mirrors = [Servent(f"mirror-{index}", network) for index in range(4)]
        watcher = Servent("watcher", network)
        definition = mp3_community()
        alice_app = definition.application_on(alice)
        record = definition.sample_corpus(1, seed=9)[0]
        published = alice_app.publish(record)
        joined_apps = []
        for servent in mirrors + [watcher]:
            found = [r for r in servent.search_communities("music").results
                     if r.title == definition.name]
            joined_apps.append(Application(servent, servent.join_community(found[0])))
        network.build_overlay()
        # Mirrors download (and therefore replicate) the object.
        for app in joined_apps[:-1]:
            hits = app.search({"title": record["title"]}, max_results=20)
            app.download(hits.results[0])
        # The original publisher goes away; the object remains reachable.
        network.set_online("alice", False)
        watcher_app = joined_apps[-1]
        response = watcher_app.search({"title": record["title"]}, max_results=50)
        assert any(result.resource_id == published.resource_id for result in response.results)


class TestProviderCrashMidDownload:
    """A provider crash-stopping between chunks of an in-flight chunked
    download must degrade to a slower transfer from the next-ranked
    replica — never a lost download — and the recovery must show up in
    the fault/recovery counters."""

    def build(self, **knobs):
        network = GnutellaProtocol(seed=21, degree=3, default_ttl=8,
                                   reliable_delivery=True,
                                   download_chunk_bytes=2_048,
                                   download_stall_timeout_ms=400.0, **knobs)
        alice = Servent("alice", network)
        mirror = Servent("mirror", network)
        requester = Servent("requester", network)
        relays = [Servent(f"relay-{index}", network) for index in range(5)]
        definition = design_pattern_community()
        alice_app = definition.application_on(alice)
        apps = []
        for servent in (mirror, requester):
            found = servent.search_communities("patterns").results[0]
            apps.append(Application(servent, servent.join_community(found)))
        network.build_overlay()
        published = alice_app.publish(gof_pattern_records()[0])
        return network, published.resource_id, apps

    def test_failover_completes_the_download(self):
        network, resource_id, (mirror_app, requester_app) = self.build()
        # The mirror replicates the object first, so a second holder
        # exists when the original provider crashes.
        baseline = network.retrieve("mirror", "alice", resource_id)
        assert network.replication_degree(resource_id) == 2

        # Crash alice in the middle of the requester's transfer window.
        network.simulator.post(baseline.latency_ms * 0.5,
                               network._fault_crash, "alice")
        recovered = network.retrieve("requester", "alice", resource_id)

        assert recovered.stored is not None
        assert recovered.provider_id == "mirror"
        assert recovered.attachments_transferred == baseline.attachments_transferred
        assert network.stats.failovers == 1
        # The wasted partial stream is honest wire cost: the recovered
        # transfer paid at least as many bytes as the clean one.
        assert recovered.transfer_bytes >= baseline.transfer_bytes
        assert recovered.latency_ms > baseline.latency_ms
        # The requester is now a holder too: the failover replicated.
        assert network.replication_degree(resource_id) == 3
        response = requester_app.search("abstract", max_results=10)
        assert response.result_count >= 1

    def test_crash_without_replica_fails_with_timeout_recorded(self):
        network, resource_id, _ = self.build()
        network.simulator.post(5.0, network._fault_crash, "alice")
        from repro.network.errors import TransferError
        with pytest.raises(TransferError):
            network.retrieve("requester", "alice", resource_id)
        assert network.stats.timeouts >= 1
        assert network.stats.failovers == 0
