"""Integration test of the §V case study: the design-pattern repository.

Reproduces the scenario the paper describes: computer scientists publish
a rich collection of patterns into a peer-to-peer network, search them
with rich queries, replicate popular patterns, and use sub-communities
for different classes of pattern.
"""

from repro.communities.design_patterns import (
    CATEGORIES,
    design_pattern_community,
    generate_pattern_corpus,
    gof_pattern_records,
    pattern_schema_xsd,
)
from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.gnutella import GnutellaProtocol
from repro.storage.query import Operator, Query


def build_repository(peer_count=8, corpus_size=46):
    network = GnutellaProtocol(seed=17, degree=4, default_ttl=8)
    servents = [Servent(f"researcher-{index}", network) for index in range(peer_count)]
    definition = design_pattern_community()
    founder = definition.application_on(servents[0])
    applications = [founder]
    for servent in servents[1:]:
        found = [r for r in servent.search_communities("patterns").results
                 if r.title == definition.name]
        applications.append(Application(servent, servent.join_community(found[0])))
    network.build_overlay()
    corpus = generate_pattern_corpus(corpus_size, seed=17)
    for index, record in enumerate(corpus):
        applications[index % len(applications)].publish(record)
    return network, applications, corpus


class TestPatternRepository:
    def test_rich_queries_beyond_filename_matching(self):
        """The motivating claim: a design-pattern community 'requires the
        ability to search not just name but purpose, keywords, applications'."""
        _, applications, _ = build_repository()
        searcher = applications[-1]
        # Search by intent ("purpose") — no pattern is *named* "notified".
        by_intent = searcher.search({"intent": "dependents are notified"}, max_results=100)
        assert any(result.metadata["name"][0].startswith("Observer")
                   for result in by_intent.results)
        # Search by category.
        creational = searcher.search({"category": "creational"}, max_results=200)
        names = {result.metadata["name"][0] for result in creational.results}
        assert {"Singleton", "Builder", "Prototype"} <= {name.split(" for ")[0] for name in names}
        # Conjunctive query: category AND keyword.
        query = (Query(searcher.community.community_id)
                 .where("category", "behavioral", Operator.EQUALS)
                 .where("intent", "algorithm"))
        conjunctive = searcher.search(query, max_results=200)
        assert conjunctive.result_count >= 1

    def test_index_filter_keeps_bulky_fields_out_of_the_index(self):
        """The case study's design choice: sample code and structure are
        stored but not indexed."""
        _, applications, _ = build_repository(peer_count=4, corpus_size=23)
        for application in applications:
            index = application.servent.repository.index
            for community_id in (application.community.community_id,):
                fields = index.fields_for(community_id)
                assert "sample_code" not in fields
                assert "solution/structure" not in fields

    def test_popular_patterns_replicate(self):
        network, applications, _ = build_repository(peer_count=6, corpus_size=23)
        searcher_apps = applications[1:]
        # Everybody downloads Observer — the canonical popular pattern.
        for application in searcher_apps:
            hits = application.search({"name": "Observer"}, max_results=50)
            own = {r.provider_id for r in hits.results}
            if application.servent.peer_id in own:
                continue
            if hits.results:
                application.download(hits.results[0])
        final = applications[0].search({"name": "Observer"}, max_results=200)
        providers = {result.provider_id for result in final.results}
        assert len(providers) >= 3

    def test_sub_communities_for_pattern_classes(self):
        """The paper: 'The community-discovery aspect could also be used to
        access sub-communities devoted to different classes of design
        patterns.'"""
        network = GnutellaProtocol(seed=19, degree=3, default_ttl=8)
        curator = Servent("curator", network)
        student = Servent("student", network)
        # One sub-community per GoF category, all sharing the same schema.
        for category in CATEGORIES:
            curator.create_community(
                f"Design Patterns: {category}",
                pattern_schema_xsd(),
                description=f"Patterns of the {category} class",
                keywords=f"design patterns {category}",
                category="software-engineering",
            )
        network.build_overlay()
        found = student.search_communities("behavioral")
        titles = {result.title for result in found.results}
        assert titles == {"Design Patterns: behavioral"}
        community = student.join_community(found.results[0])
        assert community.root_element_name == "pattern"

    def test_all_23_gof_patterns_retrievable(self):
        _, applications, corpus = build_repository(peer_count=5, corpus_size=23)
        searcher = applications[-1]
        retrieved_names = set()
        for record in gof_pattern_records():
            response = searcher.search({"name": record["name"]}, max_results=20)
            for result in response.results:
                retrieved_names.add(result.metadata["name"][0])
        assert retrieved_names == {record["name"] for record in corpus}
