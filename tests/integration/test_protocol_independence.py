"""Protocol-independence integration tests (paper §IV-B and §VI).

The same U-P2P code — communities, schemas, stylesheets, servents — must
behave identically over the three network organisations; only the cost
profile may differ.
"""

import pytest

from repro.communities.design_patterns import design_pattern_community, gof_pattern_records
from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.centralized import CentralizedProtocol
from repro.network.gnutella import GnutellaProtocol
from repro.network.superpeer import SuperPeerProtocol


def build_world(network, publisher_count=4, searcher_count=4):
    """The same world on any protocol: patterns spread over publishers."""
    definition = design_pattern_community()
    servents = [Servent(f"peer-{index:02d}", network) for index in range(publisher_count + searcher_count)]
    founder_app = definition.application_on(servents[0])
    applications = [founder_app]
    for servent in servents[1:]:
        found = [r for r in servent.search_communities("patterns").results
                 if r.title == definition.name]
        community = servent.join_community(found[0])
        applications.append(Application(servent, community))
    if isinstance(network, GnutellaProtocol):
        network.build_overlay()
    if isinstance(network, SuperPeerProtocol):
        network.elect_super_peers()
    records = gof_pattern_records()
    for index, record in enumerate(records):
        applications[index % publisher_count].publish(record)
    return applications, records


PROTOCOLS = {
    "centralized": lambda: CentralizedProtocol(seed=13),
    "gnutella": lambda: GnutellaProtocol(seed=13, default_ttl=8, degree=4),
    "super-peer": lambda: SuperPeerProtocol(seed=13, super_peer_ratio=0.25),
}


class TestSameResultsEverywhere:
    def test_identical_result_sets_across_protocols(self):
        """Every protocol finds the same set of pattern names for the same
        queries (with a generous TTL for the flooding network)."""
        result_sets = {}
        for name, factory in PROTOCOLS.items():
            applications, _ = build_world(factory())
            searcher = applications[-1]
            found = set()
            for query in ("behavioral", "factory", "decouple an abstraction"):
                response = searcher.search(query, max_results=200)
                found.update(result.metadata["name"][0] for result in response.results)
            result_sets[name] = found
        assert result_sets["centralized"] == result_sets["gnutella"] == result_sets["super-peer"]
        assert "Bridge" in result_sets["centralized"]

    def test_cost_ordering_matches_expectations(self):
        """Messages per query: centralized <= super-peer << flooding."""
        costs = {}
        for name, factory in PROTOCOLS.items():
            applications, _ = build_world(factory())
            searcher = applications[-1]
            for query in ("observer", "factory", "structure"):
                searcher.search(query, max_results=200)
            costs[name] = searcher.servent.network.stats.mean_messages_per_query()
        assert costs["centralized"] <= costs["super-peer"] < costs["gnutella"]

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_download_and_view_work_on_every_protocol(self, name):
        applications, records = build_world(PROTOCOLS[name]())
        searcher = applications[-1]
        response = searcher.search({"name": "Observer"}, max_results=50)
        assert response.result_count >= 1
        downloaded = searcher.download(response.results[0])
        html = searcher.view(downloaded.resource_id)
        assert "Observer" in html

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_results_have_full_metadata_on_every_protocol(self, name):
        """"Results ... will consist of full meta-data for each search result."""
        applications, _ = build_world(PROTOCOLS[name]())
        searcher = applications[-1]
        response = searcher.search("visitor", max_results=10)
        assert response.result_count >= 1
        metadata = response.results[0].metadata
        assert "name" in metadata and "intent" in metadata and "category" in metadata
