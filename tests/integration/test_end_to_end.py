"""End-to-end integration tests across every protocol.

The publish → discover → join → search → download → view loop of the
paper, exercised over all three network organisations.
"""

import pytest

from repro.communities import ALL_COMMUNITIES
from repro.communities.design_patterns import design_pattern_community, gof_pattern_records
from repro.core.application import Application
from repro.core.community import ROOT_COMMUNITY_ID
from repro.core.servent import Servent
from repro.network.gnutella import GnutellaProtocol
from repro.network.rendezvous import RendezvousProtocol
from repro.network.superpeer import SuperPeerProtocol


def wire(network):
    if isinstance(network, GnutellaProtocol):
        network.build_overlay()
    if isinstance(network, SuperPeerProtocol):
        network.elect_super_peers()
    if isinstance(network, RendezvousProtocol):
        network.elect_rendezvous()


class TestFullLoop:
    def test_publish_discover_join_search_download_view(self, any_network):
        network = any_network
        alice = Servent("alice", network)
        bob = Servent("bob", network)
        carol = Servent("carol", network)
        wire(network)

        definition = design_pattern_community()
        alice_app = definition.application_on(alice)
        records = gof_pattern_records()
        for record in records[:8]:
            alice_app.publish(record)

        # Bob discovers the community through the root community.
        discovery = bob.search_communities("patterns")
        matches = [r for r in discovery.results if r.title == definition.name]
        assert matches, "community must be discoverable"
        community = bob.join_community(matches[0])
        bob_app = Application(bob, community)

        # Carol is not a member and so cannot search.
        from repro.core.errors import NotAMemberError
        with pytest.raises(NotAMemberError):
            carol.search(community.community_id, "observer")

        # Bob searches with a field query and a keyword query.
        by_category = bob_app.search({"category": "creational"}, max_results=100)
        assert by_category.result_count == 5
        by_keyword = bob_app.search("singleton")
        assert by_keyword.result_count >= 1

        # Download and view with the custom stylesheet.
        hit = by_keyword.results[0]
        downloaded = bob_app.download(hit)
        html = bob_app.view(downloaded.resource_id)
        assert "Singleton" in html

        # After download Bob also shares the object (replication).
        assert bob.repository.documents.contains(hit.resource_id)

    def test_every_bundled_community_round_trips(self, any_network):
        network = any_network
        alice = Servent("alice", network)
        bob = Servent("bob", network)
        wire(network)
        for key, factory in sorted(ALL_COMMUNITIES.items()):
            definition = factory()
            app = definition.application_on(alice)
            corpus = definition.sample_corpus(6, seed=5)
            for record in corpus:
                app.publish(record)
            found = [r for r in bob.search_communities(definition.keywords.split()[0]).results
                     if r.title == definition.name]
            assert found, f"{key} community must be discoverable"
            community = bob.join_community(found[0])
            # Browsing must see everything published.
            browse = bob.browse(community.community_id, max_results=100)
            assert browse.result_count == len(corpus)
            # A field query on the first record's first searchable value hits.
            schema_fields = [info.path for info in community.schema.searchable_fields()
                             if "/" not in info.path]
            first_field = schema_fields[0]
            first_value = corpus[0].get(first_field)
            if isinstance(first_value, str) and first_value:
                response = bob.search(community.community_id, {first_field: first_value},
                                      max_results=100)
                assert response.result_count >= 1

    def test_community_discovery_is_just_search(self, any_network):
        """The metaclass move: communities are found exactly like objects."""
        network = any_network
        alice = Servent("alice", network)
        bob = Servent("bob", network)
        wire(network)
        for _key, factory in sorted(ALL_COMMUNITIES.items()):
            factory().create_on(alice)
        # The root community now contains one object per community.
        browse = bob.search_communities()
        assert browse.result_count == len(ALL_COMMUNITIES)
        assert all(result.community_id == ROOT_COMMUNITY_ID for result in browse.results)
        # Keyword filtering narrows discovery like any other search.
        chemistry = bob.search_communities("chemistry molecule")
        assert {result.title for result in chemistry.results} == {"Chemical Molecules"}

    def test_replication_increases_provider_count(self, any_network):
        network = any_network
        alice = Servent("alice", network)
        peers = [Servent(f"peer-{index}", network) for index in range(6)]
        wire(network)
        definition = ALL_COMMUNITIES["mp3"]()
        alice_app = definition.application_on(alice)
        record = definition.sample_corpus(1, seed=2)[0]
        published = alice_app.publish(record)

        # Every peer joins and downloads the same popular object.
        for servent in peers:
            found = [r for r in servent.search_communities("music").results
                     if r.title == definition.name]
            community = servent.join_community(found[0])
            app = Application(servent, community)
            hits = app.search({"title": record["title"]}, max_results=50)
            assert hits.result_count >= 1
            app.download(hits.results[0])

        # A final search sees many providers for that object.
        last = peers[-1]
        final = last.search(alice_app.community.community_id, {"title": record["title"]},
                            max_results=200)
        providers = {result.provider_id for result in final.results
                     if result.resource_id == published.resource_id}
        assert len(providers) >= 3
