"""Property-based tests for the network substrate."""

from hypothesis import given, settings, strategies as st

from repro.network.gnutella import GnutellaProtocol
from repro.network.topology import build_topology


@settings(max_examples=25, deadline=None)
@given(
    peers=st.integers(min_value=2, max_value=60),
    degree=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
    kind=st.sampled_from(["power-law", "random", "ring", "star"]),
)
def test_generated_topologies_always_connected(peers, degree, seed, kind):
    """Every generated overlay is connected and undirected."""
    ids = [f"p{index}" for index in range(peers)]
    topology = build_topology(ids, kind=kind, degree=degree, seed=seed)
    assert topology.is_connected()
    for node, neighbors in topology.adjacency.items():
        assert node not in neighbors
        for neighbor in neighbors:
            assert node in topology.adjacency[neighbor]


@settings(max_examples=20, deadline=None)
@given(
    peers=st.integers(min_value=5, max_value=40),
    ttl_low=st.integers(min_value=1, max_value=3),
    ttl_extra=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=500),
)
def test_flood_reach_is_monotone_in_ttl(peers, ttl_low, ttl_extra, seed):
    """Raising the TTL never reaches fewer peers (monotone horizon)."""
    network = GnutellaProtocol(seed=seed, degree=3)
    for index in range(peers):
        network.create_peer(f"p{index}")
    network.build_overlay()
    low = network.reachable_peers("p0", ttl=ttl_low)
    high = network.reachable_peers("p0", ttl=ttl_low + ttl_extra)
    assert high >= low
    assert high <= peers - 1


@settings(max_examples=15, deadline=None)
@given(
    peers=st.integers(min_value=4, max_value=30),
    seed=st.integers(min_value=0, max_value=500),
)
def test_flood_with_large_ttl_reaches_every_online_peer(peers, seed):
    """With TTL >= network size the flood reaches every online peer."""
    network = GnutellaProtocol(seed=seed, degree=3)
    for index in range(peers):
        network.create_peer(f"p{index}")
    network.build_overlay()
    assert network.reachable_peers("p0", ttl=peers) == peers - 1
