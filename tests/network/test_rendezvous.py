"""Tests for the JXTA-style rendezvous protocol adapter (§VI future work)."""

import pytest

from repro.network.rendezvous import RendezvousProtocol
from repro.storage.query import Query
from repro.xmlkit.parser import parse


def publish_pattern(network, peer_id, name, intent="notify dependents"):
    peer = network.peer(peer_id)
    document = parse(f"<pattern><name>{name}</name><intent>{intent}</intent></pattern>").root
    metadata = {"name": [name], "intent": [intent]}
    result = peer.repository.publish("patterns", document, metadata, title=name)
    network.publish(peer_id, "patterns", result.resource_id, metadata, title=name)
    return result.resource_id


def populate(network, peer_count=20):
    for index in range(peer_count):
        network.create_peer(f"peer-{index:03d}")
    network.elect_rendezvous()
    ids = []
    for index in range(0, peer_count, 2):
        ids.append(publish_pattern(network, f"peer-{index:03d}", f"Observer {index}"))
    return ids


class TestElectionAndAttachment:
    def test_rendezvous_ratio(self):
        network = RendezvousProtocol(seed=1, rendezvous_ratio=0.2)
        populate(network, 20)
        assert len(network.rendezvous_ids()) == 4

    def test_every_edge_attached(self):
        network = RendezvousProtocol(seed=1, rendezvous_ratio=0.25)
        populate(network, 16)
        rendezvous = set(network.rendezvous_ids())
        for peer in network.peers.values():
            if peer.peer_id not in rendezvous:
                assert peer.super_peer_id in rendezvous

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RendezvousProtocol(rendezvous_ratio=0)
        with pytest.raises(ValueError):
            RendezvousProtocol(lease_ms=0)


class TestSearch:
    def test_search_finds_advertised_objects(self):
        network = RendezvousProtocol(seed=2, rendezvous_ratio=0.2)
        populate(network)
        response = network.search("peer-001", Query.keyword("patterns", "observer"),
                                  max_results=200)
        assert response.result_count == 10
        assert response.messages_sent < 40        # no flooding of edge peers

    def test_walk_limit_bounds_probing(self):
        network = RendezvousProtocol(seed=2, rendezvous_ratio=0.3, walk_limit=1)
        populate(network)
        response = network.search("peer-001", Query.keyword("patterns", "observer"),
                                  max_results=200)
        assert response.peers_probed == 1
        full = RendezvousProtocol(seed=2, rendezvous_ratio=0.3)
        populate(full)
        assert full.search("peer-001", Query.keyword("patterns", "observer"),
                           max_results=200).result_count >= response.result_count

    def test_offline_provider_filtered(self):
        network = RendezvousProtocol(seed=3, rendezvous_ratio=0.2)
        populate(network)
        network.set_online("peer-004", False)
        response = network.search("peer-001", Query.keyword("patterns", "observer"),
                                  max_results=200)
        assert "peer-004" not in {result.provider_id for result in response.results}

    def test_retrieve_after_search(self):
        network = RendezvousProtocol(seed=4, rendezvous_ratio=0.2)
        populate(network)
        hit = network.search("peer-001", Query.keyword("patterns", "observer"),
                             max_results=10).results[0]
        outcome = network.retrieve("peer-001", hit.provider_id, hit.resource_id)
        assert outcome.transfer_bytes > 0
        assert network.peer("peer-001").repository.documents.contains(hit.resource_id)


class TestLeases:
    def test_advertisements_expire_without_renewal(self):
        network = RendezvousProtocol(seed=5, rendezvous_ratio=0.2, lease_ms=1_000)
        populate(network)
        assert network.advertisement_count() == 10
        network.simulator.advance(2_000)
        response = network.search("peer-001", Query.keyword("patterns", "observer"),
                                  max_results=200)
        # Only local results remain possible; all remote advertisements expired.
        assert network.advertisement_count() == 0
        assert all(result.provider_id == "peer-001" for result in response.results)

    def test_renewal_restores_visibility(self):
        network = RendezvousProtocol(seed=6, rendezvous_ratio=0.2, lease_ms=1_000)
        populate(network)
        network.simulator.advance(2_000)
        network.expire_advertisements()
        renewed = network.renew("peer-000")
        assert renewed >= 1
        response = network.search("peer-001", Query.keyword("patterns", "observer"),
                                  max_results=200)
        assert any(result.provider_id == "peer-000" for result in response.results)

    def test_ad_expires_while_owner_offline_then_owner_returns(self):
        """Lease expiry under churn: the advertisement of a peer that
        churned offline expires on schedule (nobody renews it), and the
        owner's return re-advertises and restores visibility."""
        network = RendezvousProtocol(seed=9, rendezvous_ratio=0.2, lease_ms=1_000)
        ids = populate(network)
        owner = "peer-000"
        network.set_online(owner, False)
        network.simulator.advance(2_000)
        expired = network.expire_advertisements()
        assert expired >= 1
        hidden = network.search("peer-001", Query.keyword("patterns", "observer"),
                                max_results=200)
        assert owner not in {result.provider_id for result in hidden.results}

        network.set_online(owner, True)
        assert network.renew(owner) >= 1
        visible = network.search("peer-001", Query.keyword("patterns", "observer"),
                                 max_results=200)
        assert owner in {result.provider_id for result in visible.results}

    def test_ad_expiry_under_churn_live_membership(self):
        """Same property with live membership: expiry happens in the
        recurring sweep (recording the staleness window) and the return
        re-advertises through kernel traffic, with no manual pulls."""
        network = RendezvousProtocol(seed=10, rendezvous_ratio=0.25, lease_ms=800,
                                     maintenance_interval_ms=200.0)
        populate(network, 12)
        network.go_live()
        # An *edge* owner: a departed rendezvous peer's own ads die with
        # its RAM (no staleness), but an edge's ads linger on its
        # rendezvous until the lease sweep notices.
        owner = "peer-004"
        network.set_online(owner, False)
        network.simulator.run(until_ms=network.simulator.now + 4_000)
        assert network.stats.staleness_windows_ms
        hidden = network.search("peer-002", Query.keyword("patterns", "observer"),
                                max_results=200)
        assert owner not in {result.provider_id for result in hidden.results}

        network.set_online(owner, True)
        network.simulator.run(until_ms=network.simulator.now + 500)
        visible = network.search("peer-002", Query.keyword("patterns", "observer"),
                                 max_results=200)
        assert owner in {result.provider_id for result in visible.results}

    def test_rendezvous_departure_reattaches_edges(self):
        network = RendezvousProtocol(seed=7, rendezvous_ratio=0.2)
        populate(network)
        victim = network.rendezvous_ids()[0]
        network.set_online(victim, False)
        for peer in network.online_peers():
            if not peer.is_super_peer:
                assert peer.super_peer_id != victim
        # Re-publishing after the loss makes objects searchable again.
        publish_pattern(network, "peer-001", "Observer 999")
        response = network.search("peer-003", Query.keyword("patterns", "999"), max_results=10)
        assert response.result_count == 1


class TestServentIntegration:
    def test_full_up2p_stack_runs_on_rendezvous_layer(self):
        from repro.communities.design_patterns import design_pattern_community, gof_pattern_records
        from repro.core.application import Application
        from repro.core.servent import Servent

        network = RendezvousProtocol(seed=8, rendezvous_ratio=0.3)
        alice = Servent("alice", network)
        bob = Servent("bob", network)
        for index in range(6):
            Servent(f"edge-{index}", network)
        network.elect_rendezvous()
        definition = design_pattern_community()
        alice_app = definition.application_on(alice)
        for record in gof_pattern_records()[:6]:
            alice_app.publish(record)
        found = [r for r in bob.search_communities("patterns").results
                 if r.title == definition.name]
        assert found
        community = bob.join_community(found[0])
        bob_app = Application(bob, community)
        response = bob_app.search({"category": "creational"}, max_results=50)
        assert response.result_count >= 1
        downloaded = bob_app.download(response.results[0])
        assert "creational" in bob_app.view(downloaded.resource_id)
