"""Informed routing: attenuated Bloom filters and their core contract.

Unit layer: crc32 hashing is deterministic, Bloom filters have no
false negatives, probe keys mirror the attribute-index normalization,
and the routing index admits along exactly the distances a flood's
remaining TTL can reach.

Contract layer (the knob's whole reason to exist): informed routing
can only *save messages, never lose a result*.  With the knob off,
behaviour is pinned bit-identical to the blind flood; with it on,
every query's result set is identical to the blind flood's across
seeds, churn patterns, shard counts and filter geometries, while the
message count never rises.
"""

from __future__ import annotations

import pytest

from repro.engine.driver import QueryDriver
from repro.network.gnutella import GnutellaProtocol
from repro.network.routing import (
    AttenuatedFilter,
    BloomFilter,
    RoutingIndex,
    _positions,
    routing_index_for,
)
from repro.storage.plan import compile_query
from repro.storage.query import Operator, Query
from repro.workloads.config import RoutingConfig
from repro.workloads.scenario import ScenarioConfig, build_scenario

from tests.network.test_contract import (
    PROTOCOL_NAMES,
    populate,
    publish_pattern,
)


# ---------------------------------------------------------------------------
# Units: hashing and filters
# ---------------------------------------------------------------------------

class TestBloomFilter:
    def test_positions_are_deterministic_and_bounded(self):
        first = _positions("e\x1fpatterns\x1fname\x1fobserver", 512, 4)
        second = _positions("e\x1fpatterns\x1fname\x1fobserver", 512, 4)
        assert first == second
        assert len(first) == 4
        assert all(0 <= position < 512 for position in first)

    def test_distinct_keys_hash_apart(self):
        a = _positions("t\x1fpatterns\x1fname\x1fobserver", 4096, 4)
        b = _positions("t\x1fpatterns\x1fname\x1fvisitor", 4096, 4)
        assert a != b

    def test_no_false_negatives(self):
        bloom = BloomFilter(256, 4)
        keys = [f"key-{index}" for index in range(40)]
        for key in keys:
            bloom.add(key)
        for key in keys:
            assert bloom.contains_positions(_positions(key, 256, 4))

    def test_merge_is_union(self):
        left, right = BloomFilter(128, 3), BloomFilter(128, 3)
        left.add("alpha")
        right.add("beta")
        left.merge(right)
        assert left.contains_positions(_positions("alpha", 128, 3))
        assert left.contains_positions(_positions("beta", 128, 3))

    def test_fill_ratio_and_wire_bytes(self):
        bloom = BloomFilter(64, 2)
        assert bloom.fill_ratio() == 0.0
        bloom.add("something")
        assert 0.0 < bloom.fill_ratio() <= 2 / 64
        assert bloom.wire_bytes() == 8


class TestAttenuatedFilter:
    def _filter_with_key_at_level(self, key: str, level: int, depth: int = 3):
        levels = tuple(BloomFilter(256, 4) for _ in range(depth))
        levels[level].add(key)
        return AttenuatedFilter(levels)

    def test_admits_respects_level_limit(self):
        attenuated = self._filter_with_key_at_level("needle", level=2)
        probe = ((_positions("needle", 256, 4),),)
        # Remaining TTL 1 and 2 see levels 0 / 0-1 only.
        assert not attenuated.admits(probe, 1)
        assert not attenuated.admits(probe, 2)
        assert attenuated.admits(probe, 3)

    def test_conjunction_must_sit_in_one_level(self):
        levels = tuple(BloomFilter(256, 4) for _ in range(2))
        levels[0].add("alpha")
        levels[1].add("beta")
        attenuated = AttenuatedFilter(levels)
        probe = ((_positions("alpha", 256, 4),), (_positions("beta", 256, 4),))
        # No single peer (level entry) holds both keys: not admitted.
        assert not attenuated.admits(probe, 2)
        levels[1].add("alpha")
        assert attenuated.admits(probe, 2)

    def test_wire_bytes_counts_header_and_levels(self):
        attenuated = self._filter_with_key_at_level("x", 0, depth=3)
        assert attenuated.wire_bytes() == 4 + 3 * (256 // 8)


class TestRoutingKeys:
    def test_equals_and_contains_and_any(self):
        query = Query("patterns") \
            .where("name", "Observer", Operator.EQUALS) \
            .where("intent", "decouple things", Operator.CONTAINS)
        keys = compile_query(query).routing_keys
        flat = [key for group in keys for key in group]
        assert "e\x1fpatterns\x1fname\x1fobserver" in flat
        assert "t\x1fpatterns\x1fintent\x1fdecouple" in flat
        assert "t\x1fpatterns\x1fintent\x1fthings" in flat

    def test_any_field_tokens(self):
        keys = compile_query(Query.keyword("patterns", "observer")).routing_keys
        assert keys == (("a\x1fpatterns\x1fobserver",),)

    def test_prefix_only_query_is_unprobeable(self):
        query = Query("patterns").where("name", "obs", Operator.PREFIX)
        assert compile_query(query).routing_keys is None

    def test_empty_query_is_unprobeable(self):
        assert compile_query(Query("patterns")).routing_keys is None


# ---------------------------------------------------------------------------
# Units: the routing index over a live overlay
# ---------------------------------------------------------------------------

def _ring_network(**kwargs):
    network = GnutellaProtocol(seed=7, default_ttl=20, degree=2,
                               topology_kind="ring", informed_routing=True,
                               **kwargs)
    populate(network)
    return network


class TestRoutingIndex:
    def test_matching_neighbour_is_always_admitted(self):
        """No false negatives: every peer holding a match admits at any
        TTL that reaches it — the heart of the no-lost-results proof."""
        network = _ring_network()
        publish_pattern(network, "peer-005", "Observer")
        index = routing_index_for(network)
        assert isinstance(index, RoutingIndex)
        hashed = index.hash_keys(
            compile_query(Query.keyword("patterns", "observer")).routing_keys)
        # peer-004 and peer-006 are ring neighbours of the publisher:
        # distance 1, admitted from remaining TTL 2 upward; peer-005
        # itself admits from TTL 1 (level 0 is its own index).
        assert index.admits("peer-005", hashed, 1)
        assert index.admits("peer-004", hashed, 2)
        assert index.admits("peer-006", hashed, 2)

    def test_beyond_horizon_is_blindly_admitted(self):
        network = _ring_network()
        index = routing_index_for(network)
        hashed = index.hash_keys(
            compile_query(Query.keyword("patterns", "nothing-published")).routing_keys)
        depth = index.depth
        assert not index.admits("peer-000", hashed, depth)
        assert index.admits("peer-000", hashed, depth + 1)

    def test_offline_peers_stay_in_the_filters(self):
        """Churn safety: a peer's content remains advertised while it is
        offline, so a mid-query return cannot be routed around."""
        network = _ring_network()
        publish_pattern(network, "peer-005", "Observer")
        network.set_online("peer-005", False)
        index = routing_index_for(network)
        hashed = index.hash_keys(
            compile_query(Query.keyword("patterns", "observer")).routing_keys)
        assert index.admits("peer-004", hashed, 2)

    def test_publish_dirties_the_filters(self):
        network = _ring_network()
        index = routing_index_for(network)
        hashed = index.hash_keys(
            compile_query(Query.keyword("patterns", "latecomer")).routing_keys)
        assert not index.admits("peer-003", hashed, 1)
        publish_pattern(network, "peer-003", "Latecomer")
        assert index.admits("peer-003", hashed, 1)

    def test_advertisement_bytes_paid_once_per_version(self):
        network = _ring_network()
        index = routing_index_for(network)
        first = index.advertisement_bytes("peer-002", "peer-003")
        assert first == index.filter_wire_bytes()
        assert index.advertisement_bytes("peer-002", "peer-003") == 0
        # A content change bumps the version and re-bills the link.
        publish_pattern(network, "peer-002", "Fresh Object")
        assert index.advertisement_bytes("peer-002", "peer-003") == first
        # Dropping the link forgets the advertisement entirely.
        index.forget_link("peer-002", "peer-003")
        assert index.advertisement_bytes("peer-002", "peer-003") == first

    def test_blind_network_has_no_routing_index(self):
        network = GnutellaProtocol(seed=7)
        assert routing_index_for(network) is None


# ---------------------------------------------------------------------------
# Contract: saves messages, never loses a result
# ---------------------------------------------------------------------------

CONFIG = dict(
    protocol="gnutella",
    peers=30,
    members=12,
    publishers=6,
    corpus_size=40,
    queries=16,
    ttl=6,
    seed=23,
    concurrency=8,
    query_interarrival_ms=20.0,
)


def run_cell(**overrides):
    """One scenario run returning per-query *result sets* (not counts):
    the routing contract is about which (provider, resource) pairs every
    query delivers, which counts alone cannot pin."""
    scenario = build_scenario(ScenarioConfig(**{**CONFIG, **overrides}))
    members = scenario.members()
    requests = [(members[index % len(members)].peer_id, query)
                for index, query in enumerate(scenario.workload)]
    driver = QueryDriver(scenario.network)
    result_sets = []
    step = scenario.config.concurrency
    for start in range(0, len(requests), step):
        outcome = driver.run_batch(
            requests[start:start + step], max_results=100,
            interarrival_ms=scenario.config.query_interarrival_ms)
        for response in outcome.responses:
            result_sets.append(frozenset(
                (result.provider_id, result.resource_id)
                for result in response.results))
    stats = scenario.network.stats
    return {
        "result_sets": result_sets,
        "total_messages": stats.total_messages,
        "total_bytes": stats.total_bytes,
        "by_type": dict(stats.messages_by_type),
        "bytes_by_type": dict(stats.bytes_by_type),
        "latencies": [round(record.latency_ms, 6) for record in stats.queries],
        "routing": stats.routing_summary(),
    }


class TestInformedRoutingContract:
    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_off_is_bit_identical_regardless_of_filter_knobs(self, protocol):
        """informed_routing=False is the pinned default: changing the
        filter geometry while the knob is off must change nothing."""
        default = run_cell(protocol=protocol)
        explicit = run_cell(protocol=protocol, informed_routing=False,
                            routing_filter_bits=64, routing_hash_count=1,
                            routing_depth=1)
        assert default == explicit
        assert default["routing"] == {"routing_pruned": 0,
                                      "routing_fallbacks": 0,
                                      "routing_fp_forwards": 0,
                                      "routing_filter_bytes": 0}

    @pytest.mark.parametrize("seed", (23, 31))
    @pytest.mark.parametrize("churn_session_ms", (None, 1_500.0))
    def test_informed_never_loses_a_result(self, seed, churn_session_ms):
        """The tentpole contract, across seeds and churn: identical
        result sets, never more messages."""
        cell = dict(seed=seed, churn_session_ms=churn_session_ms,
                    churn_absence_ms=800.0)
        blind = run_cell(**cell)
        informed = run_cell(informed_routing=True, **cell)
        assert informed["result_sets"] == blind["result_sets"]
        assert informed["total_messages"] <= blind["total_messages"]
        # Latency is quiesce time, so pruning may only *shorten* it.
        for fast, slow in zip(informed["latencies"], blind["latencies"]):
            assert fast <= slow + 1e-6

    def test_informed_actually_saves_messages(self):
        blind = run_cell()
        informed = run_cell(informed_routing=True)
        assert informed["result_sets"] == blind["result_sets"]
        assert informed["total_messages"] < blind["total_messages"]
        assert informed["routing"]["routing_pruned"] > 0

    def test_informed_run_is_deterministic(self):
        first = run_cell(informed_routing=True, churn_session_ms=1_500.0,
                         churn_absence_ms=800.0)
        second = run_cell(informed_routing=True, churn_session_ms=1_500.0,
                          churn_absence_ms=800.0)
        assert first == second

    def test_deeper_filters_never_lose_results_either(self):
        blind = run_cell()
        for depth, bits in ((1, 512), (5, 2048)):
            informed = run_cell(informed_routing=True, routing_depth=depth,
                                routing_filter_bits=bits)
            assert informed["result_sets"] == blind["result_sets"]
            assert informed["total_messages"] <= blind["total_messages"]

    def test_live_membership_cell_is_pinned(self):
        """Under live membership the filters ride keepalive PONGs and
        link repair can race a flood, so the cell is pinned empirically:
        deterministic, and (for this seeded cell) still result-identical
        to the blind flood — the topology trajectory is driven by
        keepalive/discovery traffic alone, never by QUERY messages."""
        cell = dict(live_membership=True, maintenance_interval_ms=250.0,
                    churn_session_ms=1_500.0, churn_absence_ms=800.0)
        blind = run_cell(**cell)
        first = run_cell(informed_routing=True, **cell)
        second = run_cell(informed_routing=True, **cell)
        assert first == second
        assert first["result_sets"] == blind["result_sets"]
        assert first["total_messages"] <= blind["total_messages"]
        # The filters genuinely travelled: advert bytes were billed.
        assert first["routing"]["routing_filter_bytes"] > 0

    def test_composes_with_sharded_kernel(self):
        one = run_cell(informed_routing=True)
        four = run_cell(informed_routing=True, shards=4)
        assert one == four

    def test_refuses_result_caching(self):
        with pytest.raises(ValueError, match="does not compose"):
            ScenarioConfig(informed_routing=True, result_caching=True)
        with pytest.raises(ValueError, match="does not compose"):
            GnutellaProtocol(informed_routing=True, result_caching=True)
        with pytest.raises(ValueError, match="does not compose"):
            GnutellaProtocol(routing=RoutingConfig(informed=True),
                             result_caching=True)

    def test_non_flooding_protocols_ignore_the_knob(self):
        for protocol in ("centralized", "super-peer", "rendezvous"):
            blind = run_cell(protocol=protocol)
            informed = run_cell(protocol=protocol, informed_routing=True)
            assert informed == blind
