"""Acceptance: process-parallel shard execution is bit-identical to
``shards=1``.

The in-process sharded contract (``test_contract.TestShardedKernelContract``)
proves the windowed-barrier order is exact; this suite proves the same
windows survive being split across *worker processes* — full-replica
workers, cross-worker outboxes, a replicated control plane, a global
pending ledger, claim replication and serving isolation — for all four
protocol organisations, composed with live membership, churn, result
caching and deterministic fault injection.
"""

from __future__ import annotations

import pytest

from repro.engine.parallel import run_parallel_scenario
from repro.network.faults import FaultPlan
from repro.workloads.scenario import ScenarioConfig, build_scenario

PROTOCOL_NAMES = ("centralized", "gnutella", "super-peer", "rendezvous")

CONFIG = dict(
    peers=30,
    members=12,
    publishers=6,
    corpus_size=40,
    queries=16,
    ttl=6,
    seed=23,
    concurrency=8,
    query_interarrival_ms=20.0,
)

#: the busiest composed cell: churned membership plus repeated queries
#: hitting every protocol's cache sites (the registry/serving-isolation
#: machinery's worst case).
COMPOSED = dict(
    live_membership=True, churn_session_ms=1_500.0, churn_absence_ms=800.0,
    result_caching=True, query_repeat_alpha=0.6,
)

#: the hardened fault cell from TestFaultContract: fast churn, reliable
#: delivery with retries, and seeded loss/duplication.
FAULTY = dict(
    live_membership=True, churn_session_ms=900.0, churn_absence_ms=500.0,
    reliable_delivery=True, retry_timeout_ms=120.0,
)


def serial_signature(**overrides):
    scenario = build_scenario(ScenarioConfig(**{**CONFIG, **overrides}))
    counts = scenario.run_queries(max_results=100)
    return _signature(counts, scenario.network.stats)


def parallel_signature(workers=2, **overrides):
    config = ScenarioConfig(
        **{**CONFIG, "shards": 4, "parallel": True, **overrides})
    report = run_parallel_scenario(config, workers=workers, max_results=100)
    return _signature(report.counts, report.stats), report


def _signature(counts, stats):
    return {
        "counts": counts,
        "total_messages": stats.total_messages,
        "total_bytes": stats.total_bytes,
        "by_type": dict(stats.messages_by_type),
        "bytes_by_type": dict(stats.bytes_by_type),
        "latencies": [round(record.latency_ms, 6) for record in stats.queries],
        "staleness": tuple(stats.staleness_windows_ms),
    }


class TestParallelContract:
    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_parallel_reproduces_serial_composed(self, protocol):
        """Two worker processes over four shards reproduce the serial
        run under churned membership plus result caching."""
        serial = serial_signature(protocol=protocol, shards=1, **COMPOSED)
        parallel, report = parallel_signature(protocol=protocol, **COMPOSED)
        assert parallel == serial
        assert serial["total_messages"] > 0
        assert report.windows > 0

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_parallel_reproduces_serial_under_faults(self, protocol):
        """The fault cell: seeded loss/duplication, retries, failover
        and fast churn — the pending ledger's hardest accounting."""
        faults = FaultPlan(seed=17, loss_rate=0.08, duplicate_rate=0.04)
        serial = serial_signature(protocol=protocol, shards=1,
                                  faults=faults, **FAULTY)
        parallel, _report = parallel_signature(protocol=protocol,
                                               faults=faults, **FAULTY)
        assert parallel == serial

    def test_worker_count_is_immaterial(self):
        """1 and 3 workers reproduce the same run as 2 — the contract
        is worker-count independence, not a lucky pairing."""
        reference = serial_signature(shards=1, **COMPOSED)
        for workers in (1, 3):
            parallel, _report = parallel_signature(workers=workers, **COMPOSED)
            assert parallel == reference

    def test_parallel_run_actually_parallelizes(self):
        """Guard against the contract passing because the machinery
        silently degenerated: windows must have opened, cross-worker
        traffic shipped, and every worker must have reported its own
        peak RSS."""
        _parallel, report = parallel_signature(**COMPOSED)
        assert report.workers == 2
        assert report.windows > 0
        assert report.barriers >= report.windows
        assert report.cross_shard_messages > 0
        assert report.bytes_shipped > 0
        assert len(report.worker_peak_rss_bytes) == 2
        assert all(rss > 0 for rss in report.worker_peak_rss_bytes)

    def test_parallel_needs_multiple_shards(self):
        with pytest.raises(ValueError, match="shards > 1"):
            run_parallel_scenario(ScenarioConfig(**CONFIG, shards=1))
        with pytest.raises(ValueError, match="shards > 1"):
            ScenarioConfig(**CONFIG, shards=1, parallel=True)

    def test_parallel_rejects_chunked_downloads(self):
        config = ScenarioConfig(**CONFIG, shards=4,
                                download_chunk_bytes=4_096)
        with pytest.raises(ValueError, match="chunked downloads"):
            run_parallel_scenario(config)
