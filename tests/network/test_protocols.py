"""Tests shared by the three protocol adapters plus protocol-specific tests."""

import pytest

from repro.network.centralized import CentralizedProtocol, INDEX_SERVER_ID
from repro.network.errors import DuplicatePeerError, PeerOfflineError, UnknownPeerError
from repro.network.gnutella import GnutellaProtocol
from repro.network.messages import MessageType
from repro.network.rendezvous import RendezvousProtocol
from repro.network.superpeer import SuperPeerProtocol
from repro.storage.query import Query
from repro.xmlkit.parser import parse


def publish_pattern(network, peer_id, name, intent="decouple things"):
    """Store + announce one pattern object on ``peer_id``."""
    peer = network.peer(peer_id)
    document = parse(f"<pattern><name>{name}</name><intent>{intent}</intent></pattern>").root
    metadata = {"name": [name], "intent": [intent]}
    result = peer.repository.publish("patterns", document, metadata, title=name)
    network.publish(peer_id, "patterns", result.resource_id, metadata, title=name)
    return result.resource_id


def populate(network, peer_count=20, object_every=2):
    for index in range(peer_count):
        network.create_peer(f"peer-{index:03d}")
    if isinstance(network, GnutellaProtocol):
        network.build_overlay()
    if isinstance(network, SuperPeerProtocol):
        network.elect_super_peers()
    if isinstance(network, RendezvousProtocol):
        network.elect_rendezvous()
    resource_ids = []
    for index in range(0, peer_count, object_every):
        resource_ids.append(
            publish_pattern(network, f"peer-{index:03d}", f"Observer {index}", "notify dependents")
        )
    return resource_ids


class TestCommonBehaviour:
    """Behaviour every protocol must share (the generic interface)."""

    def test_search_finds_remote_objects(self, any_network):
        populate(any_network)
        response = any_network.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.result_count > 0
        assert all(result.community_id == "patterns" for result in response.results)

    def test_search_miss_returns_empty(self, any_network):
        populate(any_network)
        response = any_network.search("peer-001", Query.keyword("patterns", "nonexistent zzz"))
        assert response.result_count == 0

    def test_search_results_carry_metadata(self, any_network):
        populate(any_network)
        response = any_network.search("peer-001", Query.keyword("patterns", "observer"))
        result = response.results[0]
        assert "name" in result.metadata
        assert result.metadata_bytes() > 0

    def test_retrieve_replicates_object(self, any_network):
        populate(any_network)
        response = any_network.search("peer-001", Query.keyword("patterns", "observer"))
        hit = next(result for result in response.results if result.provider_id != "peer-001")
        outcome = any_network.retrieve("peer-001", hit.provider_id, hit.resource_id)
        assert outcome.transfer_bytes > 0
        assert any_network.peer("peer-001").repository.documents.contains(hit.resource_id)
        # After replication a new search finds the object on the requester too.
        again = any_network.search("peer-003", Query.keyword("patterns", "observer"),
                                   max_results=500)
        providers = {result.provider_id for result in again.results
                     if result.resource_id == hit.resource_id}
        assert "peer-001" in providers or any_network.protocol_name == "gnutella"

    def test_unknown_peer_rejected(self, any_network):
        populate(any_network)
        with pytest.raises(UnknownPeerError):
            any_network.search("ghost", Query.keyword("patterns", "observer"))

    def test_offline_peer_cannot_search(self, any_network):
        populate(any_network)
        any_network.set_online("peer-001", False)
        with pytest.raises(PeerOfflineError):
            any_network.search("peer-001", Query.keyword("patterns", "observer"))

    def test_offline_providers_do_not_appear(self, any_network):
        populate(any_network)
        provider = "peer-000"
        any_network.set_online(provider, False)
        response = any_network.search("peer-001", Query.keyword("patterns", "observer"),
                                      max_results=500)
        assert provider not in {result.provider_id for result in response.results}

    def test_stats_accumulate(self, any_network):
        populate(any_network)
        any_network.search("peer-001", Query.keyword("patterns", "observer"))
        assert len(any_network.stats.queries) == 1
        assert any_network.stats.queries[0].results > 0

    def test_duplicate_peer_rejected(self, any_network):
        any_network.create_peer("dup")
        with pytest.raises(DuplicatePeerError):
            any_network.create_peer("dup")

    def test_empty_query_browses(self, any_network):
        populate(any_network)
        response = any_network.search("peer-001", Query("patterns"), max_results=500)
        assert response.result_count >= 5


class TestCentralized:
    def test_two_messages_per_query(self, centralized_network):
        populate(centralized_network)
        response = centralized_network.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.messages_sent == 2
        assert response.peers_probed == 1

    def test_registration_messages_counted(self, centralized_network):
        populate(centralized_network)
        assert centralized_network.stats.registrations == 10
        assert centralized_network.stats.messages_of(MessageType.REGISTER) == 10

    def test_catalog_and_replication_count(self, centralized_network):
        resource_ids = populate(centralized_network)
        assert centralized_network.catalog_size() == len(resource_ids)
        assert centralized_network.provider_count(resource_ids[0]) == 1
        centralized_network.retrieve("peer-001", "peer-000", resource_ids[0])
        assert centralized_network.provider_count(resource_ids[0]) == 2

    def test_provider_count_excludes_offline(self, centralized_network):
        resource_ids = populate(centralized_network)
        centralized_network.set_online("peer-000", False)
        assert centralized_network.provider_count(resource_ids[0]) == 0

    def test_removed_peer_withdrawn_from_catalog(self, centralized_network):
        resource_ids = populate(centralized_network)
        centralized_network.remove_peer("peer-000")
        assert centralized_network.provider_count(resource_ids[0]) == 0
        assert INDEX_SERVER_ID not in centralized_network.peers

    def test_max_results_cap(self, centralized_network):
        populate(centralized_network, peer_count=20, object_every=1)
        response = centralized_network.search("peer-001", Query.keyword("patterns", "observer"),
                                              max_results=3)
        assert response.result_count == 3


class TestGnutella:
    def test_flooding_costs_many_messages(self, gnutella_network):
        populate(gnutella_network)
        response = gnutella_network.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.messages_sent > 20
        assert response.peers_probed > 5

    def test_ttl_limits_reach(self):
        network = GnutellaProtocol(seed=4, default_ttl=7, degree=2, topology_kind="ring")
        for index in range(30):
            network.create_peer(f"peer-{index:03d}")
        network.build_overlay()
        assert network.reachable_peers("peer-000", ttl=1) == 2
        assert network.reachable_peers("peer-000", ttl=3) == 6
        assert network.reachable_peers("peer-000", ttl=20) == 29

    def test_low_ttl_misses_distant_objects(self):
        network = GnutellaProtocol(seed=4, default_ttl=7, degree=2, topology_kind="ring")
        for index in range(30):
            network.create_peer(f"peer-{index:03d}")
        network.build_overlay()
        publish_pattern(network, "peer-015", "Observer Far", "far away object")
        near = network.search("peer-000", Query.keyword("patterns", "observer"), ttl=2)
        far = network.search("peer-000", Query.keyword("patterns", "observer"), ttl=20)
        assert near.result_count == 0
        assert far.result_count == 1

    def test_publish_costs_no_messages(self, gnutella_network):
        for index in range(10):
            gnutella_network.create_peer(f"peer-{index:03d}")
        gnutella_network.build_overlay()
        before = gnutella_network.stats.total_messages
        publish_pattern(gnutella_network, "peer-000", "Observer")
        assert gnutella_network.stats.total_messages == before

    def test_local_hits_found_without_messages(self, gnutella_network):
        for index in range(5):
            gnutella_network.create_peer(f"peer-{index:03d}")
        gnutella_network.build_overlay()
        publish_pattern(gnutella_network, "peer-000", "Observer")
        response = gnutella_network.search("peer-000", Query.keyword("patterns", "observer"))
        assert response.result_count >= 1
        assert response.results[0].hops == 0

    def test_offline_peers_break_paths(self):
        network = GnutellaProtocol(seed=4, default_ttl=10, degree=2, topology_kind="ring")
        for index in range(10):
            network.create_peer(f"peer-{index:03d}")
        network.build_overlay()
        # Going offline on both ring neighbours isolates peer-000.
        network.set_online("peer-001", False)
        network.set_online("peer-009", False)
        assert network.reachable_peers("peer-000") == 0

    def test_peer_removed_from_overlay(self, gnutella_network):
        populate(gnutella_network)
        gnutella_network.remove_peer("peer-005")
        assert all("peer-005" not in peer.neighbors for peer in gnutella_network.peers.values())


class TestSuperPeer:
    def test_super_peer_election(self, superpeer_network):
        populate(superpeer_network)
        supers = superpeer_network.super_peer_ids()
        assert len(supers) == 4  # 20 peers * 0.2 ratio
        for peer in superpeer_network.peers.values():
            if not peer.is_super_peer:
                assert peer.super_peer_id in supers

    def test_query_cost_between_centralized_and_flooding(self):
        centralized = CentralizedProtocol(seed=5)
        flooding = GnutellaProtocol(seed=5)
        superpeer = SuperPeerProtocol(seed=5, super_peer_ratio=0.2)
        for network in (centralized, flooding, superpeer):
            populate(network)
            network.search("peer-001", Query.keyword("patterns", "observer"))
        c = centralized.stats.mean_messages_per_query()
        s = superpeer.stats.mean_messages_per_query()
        g = flooding.stats.mean_messages_per_query()
        assert c <= s < g

    def test_leaf_departure_reassigns_objects(self, superpeer_network):
        populate(superpeer_network)
        leaf = next(peer for peer in superpeer_network.peers.values() if not peer.is_super_peer)
        publish_pattern(superpeer_network, leaf.peer_id, "Unique Leaf Pattern", "only here")
        superpeer_network.set_online(leaf.peer_id, False)
        response = superpeer_network.search("peer-001", Query.keyword("patterns", "unique leaf"))
        assert response.result_count == 0

    def test_super_peer_departure_reattaches_leaves(self, superpeer_network):
        populate(superpeer_network)
        super_id = superpeer_network.super_peer_ids()[0]
        orphans = superpeer_network.leaves_of(super_id)
        superpeer_network.set_online(super_id, False)
        for orphan_id in orphans:
            orphan = superpeer_network.peer(orphan_id)
            if orphan.online:
                assert orphan.super_peer_id != super_id

    def test_returning_peer_reattaches(self, superpeer_network):
        populate(superpeer_network)
        leaf = next(peer for peer in superpeer_network.peers.values() if not peer.is_super_peer)
        superpeer_network.set_online(leaf.peer_id, False)
        superpeer_network.set_online(leaf.peer_id, True)
        assert leaf.super_peer_id in superpeer_network.super_peer_ids()

    def test_search_still_works_after_reelection(self, superpeer_network):
        populate(superpeer_network)
        superpeer_network.elect_super_peers(count=2)
        response = superpeer_network.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.result_count > 0
