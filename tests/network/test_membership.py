"""Tests for the membership layer: PopulationModel dynamics and the
live-membership (lifecycle-as-protocol-traffic) mode of every adapter."""

import pytest

from repro.network.centralized import CentralizedProtocol
from repro.network.gnutella import GnutellaProtocol
from repro.network.membership import MembershipEvent, PopulationModel
from repro.network.messages import MessageType
from repro.network.rendezvous import RendezvousProtocol
from repro.network.superpeer import SuperPeerProtocol
from repro.storage.query import Query
from repro.xmlkit.parser import parse


def publish_pattern(network, peer_id, name, intent="notify dependents"):
    peer = network.peer(peer_id)
    document = parse(f"<pattern><name>{name}</name><intent>{intent}</intent></pattern>").root
    metadata = {"name": [name], "intent": [intent]}
    result = peer.repository.publish("patterns", document, metadata, title=name)
    network.publish(peer_id, "patterns", result.resource_id, metadata, title=name)
    return result.resource_id


def settle(network, ms):
    """Run the shared queue forward so lifecycle traffic lands."""
    network.simulator.run(until_ms=network.simulator.now + ms)


class TestPopulationModel:
    def build(self, peer_count=20, **kwargs):
        network = GnutellaProtocol(seed=4, degree=3)
        for index in range(peer_count):
            network.create_peer(f"peer-{index:03d}")
        network.build_overlay()
        model = PopulationModel(network, **kwargs)
        return network, model

    def test_invalid_parameters(self):
        network, _ = self.build(5)
        with pytest.raises(ValueError):
            PopulationModel(network, mean_session_ms=0)
        with pytest.raises(ValueError):
            PopulationModel(network, departure_permanence=1.5)
        with pytest.raises(ValueError):
            PopulationModel(network, graceful_fraction=-0.1)

    def test_staged_arrivals_join_at_their_times(self):
        network, model = self.build(6)
        ids = model.schedule_arrivals(4, start_ms=100.0, interval_ms=50.0,
                                      prefix="newcomer")
        assert len(ids) == 4
        settle(network, 120)
        assert ids[0] in network.peers
        assert ids[2] not in network.peers
        settle(network, 200)
        assert all(peer_id in network.peers for peer_id in ids)
        arrivals = model.arrivals()
        assert [event.peer_id for event in arrivals] == ids
        assert [event.time_ms for event in arrivals] == [100.0, 150.0, 200.0, 250.0]

    def test_flash_crowd_arrives_at_once(self):
        network, model = self.build(6)
        before = len(network.peers)
        ids = model.flash_crowd(10, at_ms=500.0)
        settle(network, 499)
        assert len(network.peers) == before
        settle(network, 2)
        assert len(network.peers) == before + 10
        assert {event.time_ms for event in model.arrivals()} == {500.0}
        assert all(peer_id in network.peers for peer_id in ids)

    def test_permanent_departures_never_return(self):
        network, model = self.build(12, mean_session_ms=200.0,
                                    mean_absence_ms=100.0,
                                    departure_permanence=1.0, seed=7)
        model.start(["peer-000", "peer-001"])
        settle(network, 5_000)
        assert not network.peer("peer-000").online
        assert not network.peer("peer-001").online
        kinds = {event.kind for event in model.events}
        assert kinds == {"depart-permanent"}
        # Still offline much later: nothing was rescheduled.
        settle(network, 5_000)
        assert not network.peer("peer-000").online

    def test_permanent_departure_mid_absence_sticks(self):
        """A scheduled permanent departure striking while the peer is in
        a churn absence must void the queued return: the peer stays gone
        and the event log stays truthful."""
        network, model = self.build(8)
        network.set_online("peer-002", False)  # mid-absence
        queued_return_at = 1_000.0
        network.simulator.post(queued_return_at, model._return, "peer-002")
        model.schedule_departure("peer-002", at_ms=500.0)
        settle(network, 5_000)
        assert not network.peer("peer-002").online
        kinds = [event.kind for event in model.events if event.peer_id == "peer-002"]
        assert kinds == ["depart-permanent"]

    def test_scheduled_departure(self):
        network, model = self.build(8)
        model.schedule_departure("peer-003", at_ms=300.0)
        settle(network, 299)
        assert network.peer("peer-003").online
        settle(network, 2)
        assert not network.peer("peer-003").online
        assert model.events[-1].kind == "depart-permanent"

    def test_event_log_is_deterministic(self):
        def run():
            network, model = self.build(15, mean_session_ms=300.0,
                                        mean_absence_ms=200.0, seed=11)
            model.start()
            model.flash_crowd(3, at_ms=400.0, churn=True)
            settle(network, 3_000)
            return [(event.time_ms, event.peer_id, event.kind)
                    for event in model.events]
        assert run() == run()

    def test_membership_event_online_compatibility(self):
        """Legacy churn consumers read ``event.online``."""
        assert MembershipEvent(0.0, "p", "depart").online is False
        assert MembershipEvent(0.0, "p", "return").online is True
        assert MembershipEvent(0.0, "p", "arrive").online is True
        assert MembershipEvent(0.0, "p", "depart-permanent").online is False


class TestUptimeAccounting:
    def test_uptime_accumulates_per_session(self):
        network = CentralizedProtocol(seed=1)
        network.create_peer("worker")
        network.simulator.advance(1_000)
        network.set_online("worker", False)
        assert network.peer("worker").uptime_ms == pytest.approx(1_000)
        network.simulator.advance(500)
        network.set_online("worker", True)
        network.simulator.advance(250)
        network.set_online("worker", False)
        assert network.peer("worker").uptime_ms == pytest.approx(1_250)
        assert network.stats.uptime_ms_total == pytest.approx(1_250)
        assert network.stats.summary()["uptime_ms_total"] == pytest.approx(1_250)

    def test_snapshot_folds_open_sessions(self):
        """Mid-run measurement must count peers that never went down."""
        network = CentralizedProtocol(seed=1)
        network.create_peer("steady")
        network.create_peer("flaky")
        network.simulator.advance(400)
        network.set_online("flaky", False)
        network.simulator.advance(600)
        # Without the snapshot only flaky's closed session counts.
        assert network.stats.uptime_ms_total == pytest.approx(400)
        total = network.snapshot_uptime()
        assert total == pytest.approx(400 + 1_000)
        # Idempotent at the same instant: clocks restarted.
        assert network.snapshot_uptime() == pytest.approx(total)

    def test_last_departure_recorded(self):
        network = CentralizedProtocol(seed=1)
        network.create_peer("worker")
        assert network.peer("worker").last_departed_ms == -1.0
        network.simulator.advance(750)
        network.set_online("worker", False)
        assert network.peer("worker").last_departed_ms == pytest.approx(750)


class TestCentralizedLiveMembership:
    def build(self):
        network = CentralizedProtocol(seed=3, maintenance_interval_ms=200.0)
        for index in range(8):
            network.create_peer(f"peer-{index:03d}")
        ids = [publish_pattern(network, "peer-001", "Observer"),
               publish_pattern(network, "peer-002", "Observer Twin")]
        network.go_live()
        return network, ids

    def test_departed_registrations_decay_after_lease(self):
        network, _ = self.build()
        network.set_online("peer-001", False)
        # Inside the staleness window the catalog still holds the entry
        # (search filters the offline provider, but the server pays the
        # storage and does not know).
        assert network.catalog_size() == 2
        settle(network, 3 * network.heartbeat_lease_ms)
        assert network.catalog_size() == 1
        assert network.stats.staleness_windows_ms
        assert "peer-001" not in network.believed_online()

    def test_returning_peer_reregisters_through_kernel(self):
        network, _ = self.build()
        network.set_online("peer-001", False)
        settle(network, 3 * network.heartbeat_lease_ms)
        assert network.catalog_size() == 1
        joins_before = network.stats.messages_of(MessageType.JOIN)
        network.set_online("peer-001", True)
        settle(network, 500)
        assert network.stats.messages_of(MessageType.JOIN) == joins_before + 1
        assert network.catalog_size() == 2
        response = network.search("peer-003", Query.keyword("patterns", "observer"),
                                  max_results=10)
        assert {result.provider_id for result in response.results} >= {"peer-001"}

    def test_graceful_departure_unregisters_without_staleness(self):
        network, _ = self.build()
        network.depart("peer-001", graceful=True)
        settle(network, 500)
        assert network.catalog_size() == 1
        assert not network.stats.staleness_windows_ms
        assert network.stats.messages_of(MessageType.UNREGISTER) == 1
        assert network.stats.messages_of(MessageType.LEAVE) == 1

    def test_registrations_of_peer_offline_at_go_live_still_decay(self):
        network = CentralizedProtocol(seed=3, maintenance_interval_ms=200.0)
        for index in range(6):
            network.create_peer(f"peer-{index:03d}")
        publish_pattern(network, "peer-001", "Pre Live Observer")
        network.set_online("peer-001", False)  # departs before go-live
        network.go_live()
        assert network.catalog_size() == 1
        settle(network, 4 * network.heartbeat_lease_ms)
        assert network.catalog_size() == 0
        assert network.stats.staleness_windows_ms

    def test_remove_peer_in_live_mode_is_an_announced_departure(self):
        network, _ = self.build()
        removed_uptime_before = network.stats.uptime_ms_total
        network.simulator.run(until_ms=network.simulator.now + 300)
        network.remove_peer("peer-001")
        assert "peer-001" not in network.peers
        # The goodbye was traffic, the session closed into the totals.
        settle(network, 500)
        assert network.stats.messages_of(MessageType.UNREGISTER) == 1
        assert network.stats.messages_of(MessageType.LEAVE) == 1
        assert network.stats.uptime_ms_total > removed_uptime_before
        assert network.catalog_size() == 1

    def test_heartbeats_cost_control_bytes(self):
        network, _ = self.build()
        settle(network, 1_000)
        assert network.stats.messages_of(MessageType.PING) > 0
        assert network.stats.control_bytes > 0

    def test_maintenance_rearms_after_cancel(self):
        """go_live after kernel.cancel_timers() resumes maintenance."""
        network, _ = self.build()
        settle(network, 1_000)
        network.kernel.cancel_timers()
        pings_paused = network.stats.messages_of(MessageType.PING)
        settle(network, 1_000)
        assert network.stats.messages_of(MessageType.PING) == pings_paused
        network.go_live()
        settle(network, 1_000)
        assert network.stats.messages_of(MessageType.PING) > pings_paused


class TestGnutellaLiveMembership:
    def build(self):
        network = GnutellaProtocol(seed=5, degree=3, default_ttl=6,
                                   maintenance_interval_ms=200.0)
        for index in range(10):
            network.create_peer(f"peer-{index:03d}")
        network.build_overlay()
        network.go_live()
        return network

    def test_arriving_peer_bootstraps_links_via_ping_pong(self):
        network = self.build()
        pings_before = network.stats.messages_of(MessageType.PING)
        newcomer = network.create_peer("zz-newcomer")
        assert not newcomer.neighbors  # links need round trips
        settle(network, 500)
        # The newcomer dialled up to ``degree`` links itself; peers that
        # were below target may have added incoming links on top.
        assert newcomer.neighbors
        assert network.stats.messages_of(MessageType.PING) > pings_before
        assert network.stats.messages_of(MessageType.PONG) > 0
        for neighbor_id in newcomer.neighbors:
            assert newcomer.peer_id in network.peer(neighbor_id).neighbors

    def test_flash_crowd_cannot_saturate_one_peer(self):
        """Joins funnel through the deterministic bootstrap; saturated
        responders refuse further links so no peer's fan-out (and
        keepalive bill) grows without bound."""
        network = self.build()
        model = PopulationModel(network, seed=1)
        model.flash_crowd(25, at_ms=50.0)
        settle(network, 2_000)
        worst = max(len(peer.neighbors) for peer in network.peers.values())
        assert worst <= 2 * network.degree

    def test_stale_links_decay_after_silence(self):
        network = self.build()
        victim = network.peer("peer-004")
        holders = [peer_id for peer_id in sorted(network.peers)
                   if victim.peer_id in network.peer(peer_id).neighbors]
        assert holders
        network.set_online("peer-004", False)
        # Links persist immediately after the crash (stale on both sides).
        assert any(victim.peer_id in network.peer(peer_id).neighbors
                   for peer_id in holders)
        settle(network, 4 * network.heartbeat_lease_ms)
        assert all(victim.peer_id not in network.peer(peer_id).neighbors
                   for peer_id in holders)
        assert network.stats.staleness_windows_ms

    def test_flood_recovers_after_churn_repair(self):
        network = self.build()
        resource_id = publish_pattern(network, "peer-007", "Churny Observer")
        network.set_online("peer-003", False)
        network.set_online("peer-005", False)
        settle(network, 5 * network.heartbeat_lease_ms)
        response = network.search("peer-000", Query.keyword("patterns", "churny"),
                                  max_results=10)
        assert any(result.resource_id == resource_id for result in response.results)


class TestSuperPeerLiveMembership:
    def build(self, peer_count=10):
        network = SuperPeerProtocol(seed=6, super_peer_ratio=0.2,
                                    maintenance_interval_ms=200.0)
        for index in range(peer_count):
            network.create_peer(f"peer-{index:03d}")
        network.elect_super_peers()
        publish_pattern(network, "peer-005", "Observer")
        if peer_count > 7:
            publish_pattern(network, "peer-007", "Observer Twin")
        network.go_live()
        return network

    def test_super_departure_rehomes_leaves_with_attach_traffic(self):
        network = self.build()
        victim = network.super_peer_ids()[0]
        orphans = sorted(network.leaves_of(victim))
        assert orphans
        attaches_before = network.stats.messages_of(MessageType.LEAF_ATTACH)
        network.set_online(victim, False)
        # No instantaneous re-homing: the orphans still point at the dead super.
        assert all(network.peer(peer_id).super_peer_id == victim
                   for peer_id in orphans if network.peer(peer_id).online)
        settle(network, 5 * network.heartbeat_lease_ms)
        for peer_id in orphans:
            peer = network.peer(peer_id)
            if peer.online:
                assert peer.super_peer_id != victim
                assert peer.super_peer_id is not None
        assert network.stats.messages_of(MessageType.LEAF_ATTACH) > attaches_before

    def test_promotion_when_no_super_remains(self):
        network = self.build(peer_count=6)
        for super_id in network.super_peer_ids():
            network.set_online(super_id, False)
        assert not any(network.peers[s].online for s in network.super_peer_ids())
        settle(network, 5 * network.heartbeat_lease_ms)
        promoted = [super_id for super_id in network.super_peer_ids()
                    if network.peers[super_id].online]
        assert promoted
        # Deterministic: the lowest-id online orphan promoted itself first.
        online = sorted(peer.peer_id for peer in network.online_peers())
        assert promoted[0] == online[0]

    def test_departed_leaf_records_decay_after_lease(self):
        network = self.build()
        provider = "peer-005"
        network.set_online(provider, False)
        super_id = [s for s in network.super_peer_ids()][0]
        settle(network, 5 * network.heartbeat_lease_ms)
        for state_super in network.super_peer_ids():
            assert provider not in network.leaves_of(state_super)
        assert network.stats.staleness_windows_ms

    def test_search_works_after_rehoming(self):
        network = self.build()
        victim = network.super_peer_ids()[0]
        network.set_online(victim, False)
        settle(network, 6 * network.heartbeat_lease_ms)
        response = network.search("peer-009", Query.keyword("patterns", "observer"),
                                  max_results=10)
        assert response.result_count >= 1


class TestRendezvousLiveMembership:
    def build(self, lease_ms=1_000.0):
        network = RendezvousProtocol(seed=7, rendezvous_ratio=0.25,
                                     lease_ms=lease_ms,
                                     maintenance_interval_ms=200.0)
        for index in range(8):
            network.create_peer(f"peer-{index:03d}")
        network.elect_rendezvous()
        publish_pattern(network, "peer-005", "Observer")
        network.go_live()
        return network

    def test_renewal_traffic_keeps_ads_alive(self):
        network = self.build(lease_ms=1_000.0)
        settle(network, 5_000)
        # Without live renewal every ad would have expired long ago.
        assert network.advertisement_count() >= 1
        assert network.stats.messages_of(MessageType.AD_RENEW) > 0

    def test_departed_providers_ads_decay_with_staleness(self):
        network = self.build(lease_ms=1_000.0)
        network.set_online("peer-005", False)
        assert network.advertisement_count() == 1
        settle(network, 4_000)
        assert network.advertisement_count() == 0
        assert network.stats.staleness_windows_ms

    def test_rendezvous_death_repairs_organically(self):
        network = self.build(lease_ms=2_000.0)
        victim = network.peer("peer-005").super_peer_id
        assert victim is not None
        network.set_online(victim, False)
        # The provider's ads died with the rendezvous peer's RAM.
        settle(network, 3_000)
        # ...but its renewal tick re-homed it and re-advertised.
        assert network.peer("peer-005").super_peer_id != victim
        response = network.search("peer-001", Query.keyword("patterns", "observer"),
                                  max_results=10)
        assert any(result.provider_id == "peer-005" for result in response.results)

    def test_rendezvous_peers_own_ads_survive_the_lease(self):
        """A rendezvous peer renews its own advertisements in place:
        staying online must never lose its published objects."""
        network = RendezvousProtocol(seed=11, rendezvous_ratio=0.25,
                                     lease_ms=1_000.0,
                                     maintenance_interval_ms=300.0)
        for index in range(8):
            network.create_peer(f"peer-{index:03d}")
        network.elect_rendezvous()
        rendezvous_id = network.rendezvous_ids()[0]
        publish_pattern(network, rendezvous_id, "Self Hosted Observer")
        network.go_live()
        settle(network, 5_000)  # several leases with everyone online
        response = network.search("peer-005",
                                  Query.keyword("patterns", "hosted"),
                                  max_results=10)
        assert any(result.provider_id == rendezvous_id
                   for result in response.results)

    def test_promotion_when_no_rendezvous_remains(self):
        network = self.build(lease_ms=1_000.0)
        for rendezvous_id in network.rendezvous_ids():
            network.set_online(rendezvous_id, False)
        settle(network, 2_000)
        alive = [rdv for rdv in network.rendezvous_ids()
                 if network.peers[rdv].online]
        assert alive


class TestLiveMembershipWithPopulationModel:
    """Arrivals delivered by the population model emit join traffic."""

    def test_flash_crowd_joins_cost_messages(self):
        network = GnutellaProtocol(seed=9, degree=3,
                                   maintenance_interval_ms=300.0)
        for index in range(8):
            network.create_peer(f"peer-{index:03d}")
        network.build_overlay()
        network.go_live()
        model = PopulationModel(network, seed=2)
        ids = model.flash_crowd(5, at_ms=100.0)
        settle(network, 1_000)
        assert all(peer_id in network.peers for peer_id in ids)
        linked = [peer_id for peer_id in ids if network.peer(peer_id).neighbors]
        assert linked, "flash-crowd arrivals must bootstrap real links"
        assert network.stats.messages_of(MessageType.PING) > 0
        breakdown = network.stats.traffic_breakdown()
        assert breakdown["control"]["bytes"] > 0
