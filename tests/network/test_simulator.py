"""Tests for the discrete-event simulator and latency model."""

import pytest

from repro.network.simulator import LatencyModel, NetworkSimulator, SimulationTruncated


class TestLatencyModel:
    def test_symmetric_and_stable(self):
        model = LatencyModel(seed=3)
        assert model.latency("a", "b") == model.latency("b", "a")
        assert model.latency("a", "b") == model.latency("a", "b")

    def test_self_latency_zero(self):
        assert LatencyModel().latency("a", "a") == 0.0

    def test_within_bounds(self):
        model = LatencyModel(base_ms=10, jitter_ms=5, seed=1)
        for pair in (("a", "b"), ("c", "d"), ("x", "y")):
            value = model.latency(*pair)
            assert 10 <= value <= 15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base_ms=-1)

    def test_deterministic_across_instances(self):
        """Two models with the same seed agree on every pair — fresh
        networks built for A/B comparisons see identical link costs."""
        first = LatencyModel(seed=11)
        second = LatencyModel(seed=11)
        for pair in (("a", "b"), ("b", "c"), ("peer-000", "peer-013")):
            assert first.latency(*pair) == second.latency(*pair)
            # Symmetry holds across instances too, not just within one.
            assert first.latency(*pair) == second.latency(*reversed(pair))

    def test_different_seeds_differ_somewhere(self):
        first = LatencyModel(seed=1, jitter_ms=30)
        second = LatencyModel(seed=2, jitter_ms=30)
        pairs = [("a", "b"), ("c", "d"), ("e", "f"), ("g", "h")]
        assert any(first.latency(*pair) != second.latency(*pair) for pair in pairs)

    def test_cache_does_not_change_values(self):
        model = LatencyModel(seed=5)
        cold = model.latency("x", "y")
        assert model.latency("x", "y") == cold
        assert model.latency("y", "x") == cold


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert NetworkSimulator().now == 0.0

    def test_events_run_in_time_order(self):
        simulator = NetworkSimulator()
        order = []
        simulator.schedule(30, lambda: order.append("late"))
        simulator.schedule(10, lambda: order.append("early"))
        simulator.schedule(20, lambda: order.append("middle"))
        processed = simulator.run()
        assert processed == 3
        assert order == ["early", "middle", "late"]
        assert simulator.now == 30

    def test_fifo_for_same_timestamp(self):
        simulator = NetworkSimulator()
        order = []
        simulator.schedule(5, lambda: order.append(1))
        simulator.schedule(5, lambda: order.append(2))
        simulator.run()
        assert order == [1, 2]

    def test_run_until(self):
        simulator = NetworkSimulator()
        fired = []
        simulator.schedule(10, lambda: fired.append("a"))
        simulator.schedule(100, lambda: fired.append("b"))
        simulator.run(until_ms=50)
        assert fired == ["a"]
        assert simulator.now == 50
        assert simulator.pending_events() == 1

    def test_cancel(self):
        simulator = NetworkSimulator()
        fired = []
        handle = simulator.schedule(10, lambda: fired.append("x"))
        handle.cancel()
        simulator.run()
        assert fired == []

    def test_events_scheduled_during_run(self):
        simulator = NetworkSimulator()
        fired = []

        def chain():
            fired.append("first")
            simulator.schedule(5, lambda: fired.append("second"))

        simulator.schedule(1, chain)
        simulator.run()
        assert fired == ["first", "second"]
        assert simulator.now == 6

    def test_schedule_at_absolute_time(self):
        simulator = NetworkSimulator()
        simulator.advance(100)
        fired = []
        simulator.schedule_at(150, lambda: fired.append("x"))
        simulator.run()
        assert simulator.now == 150 and fired == ["x"]

    def test_schedule_at_past_time_clamps_to_now(self):
        """An absolute time already in the past fires immediately at the
        current clock instead of raising or travelling backwards."""
        simulator = NetworkSimulator()
        simulator.advance(100)
        fired = []
        handle = simulator.schedule_at(40, lambda: fired.append(simulator.now))
        assert handle.time == 100
        simulator.run()
        assert fired == [100]
        assert simulator.now == 100

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            NetworkSimulator().schedule(-1, lambda: None)

    def test_cancelled_events_skipped_by_run(self):
        simulator = NetworkSimulator()
        fired = []
        cancelled = simulator.schedule(5, lambda: fired.append("cancelled"))
        simulator.schedule(10, lambda: fired.append("kept"))
        cancelled.cancel()
        processed = simulator.run()
        assert fired == ["kept"]
        # The cancelled event is not counted as processed work.
        assert processed == 1
        assert simulator.events_processed == 1

    def test_cancelled_events_skipped_by_step(self):
        simulator = NetworkSimulator()
        fired = []
        cancelled = simulator.schedule(5, lambda: fired.append("cancelled"))
        simulator.schedule(10, lambda: fired.append("kept"))
        cancelled.cancel()
        # One step skips straight over the cancelled event to the live one.
        assert simulator.step() is True
        assert fired == ["kept"]
        assert simulator.now == 10
        assert simulator.step() is False

    def test_step_returns_false_when_only_cancelled_events_remain(self):
        simulator = NetworkSimulator()
        handle = simulator.schedule(5, lambda: None)
        handle.cancel()
        assert simulator.step() is False
        assert simulator.pending_events() == 0

    def test_advance(self):
        simulator = NetworkSimulator()
        simulator.advance(25)
        assert simulator.now == 25
        with pytest.raises(ValueError):
            simulator.advance(-1)

    def test_transfer_time_scales_with_size(self):
        simulator = NetworkSimulator(seed=1)
        small = simulator.transfer_time("a", "b", 1_000)
        large = simulator.transfer_time("a", "b", 1_000_000)
        assert large > small

    def test_transfer_time_requires_positive_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkSimulator().transfer_time("a", "b", 100, bandwidth_kbps=0)

    def test_max_events_guard_raises_on_truncation(self):
        simulator = NetworkSimulator()

        def reschedule():
            simulator.schedule(1, reschedule)

        simulator.schedule(1, reschedule)
        with pytest.raises(SimulationTruncated) as excinfo:
            simulator.run(max_events=50)
        assert excinfo.value.processed == 50

    def test_max_events_cap_without_leftover_work_returns_normally(self):
        simulator = NetworkSimulator()
        ran = []
        for index in range(5):
            simulator.schedule(index, ran.append, index)
        assert simulator.run(max_events=5) == 5
        assert ran == [0, 1, 2, 3, 4]

    def test_max_events_cap_ignores_events_beyond_horizon(self):
        # Leftover events past until_ms are not truncation: the run
        # legitimately stops at the horizon.
        simulator = NetworkSimulator()
        for index in range(5):
            simulator.schedule(index, lambda: None)
        simulator.schedule(1_000, lambda: None)
        assert simulator.run(until_ms=10, max_events=5) == 5
        assert simulator.now == 10

    def test_max_events_cap_ignores_cancelled_leftovers(self):
        simulator = NetworkSimulator()
        for index in range(3):
            simulator.schedule(index, lambda: None)
        handle = simulator.schedule(50, lambda: None)
        handle.cancel()
        assert simulator.run(max_events=3) == 3
