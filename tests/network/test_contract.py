"""Contract tests every protocol adapter must pass on the event kernel.

The four network organisations are interchangeable strategies over the
same message-dispatch substrate.  This suite pins down the substrate
contract: searches are event cascades with measurable latency, queries
can overlap in flight, churn can strike mid-query without breaking
anything, replicas made by retrieve survive the original provider, and
a fixed seed makes whole concurrent workloads bit-for-bit repeatable.
"""

from __future__ import annotations

import pytest

from repro.engine.driver import QueryDriver, RetrieveOp, SearchOp
from repro.network.centralized import CentralizedProtocol
from repro.network.churn import ChurnModel
from repro.network.errors import DuplicatePeerError
from repro.network.gnutella import GnutellaProtocol
from repro.network.rendezvous import RendezvousProtocol
from repro.network.superpeer import SuperPeerProtocol
from repro.storage.query import Query
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.xmlkit.parser import parse


def make_network(name: str):
    if name == "centralized":
        return CentralizedProtocol(seed=7)
    if name == "gnutella":
        # A ring stays connected when any single peer drops out, which
        # keeps the churn contracts below deterministic.
        return GnutellaProtocol(seed=7, default_ttl=20, degree=2, topology_kind="ring")
    if name == "super-peer":
        return SuperPeerProtocol(seed=7, super_peer_ratio=0.2)
    return RendezvousProtocol(seed=7, rendezvous_ratio=0.2)


PROTOCOL_NAMES = ("centralized", "gnutella", "super-peer", "rendezvous")


def publish_pattern(network, peer_id, name, intent="decouple things"):
    peer = network.peer(peer_id)
    document = parse(f"<pattern><name>{name}</name><intent>{intent}</intent></pattern>").root
    metadata = {"name": [name], "intent": [intent]}
    result = peer.repository.publish("patterns", document, metadata, title=name)
    network.publish(peer_id, "patterns", result.resource_id, metadata, title=name)
    return result.resource_id


def populate(network, peer_count=12):
    for index in range(peer_count):
        network.create_peer(f"peer-{index:03d}")
    if isinstance(network, GnutellaProtocol):
        network.build_overlay()
    if isinstance(network, SuperPeerProtocol):
        network.elect_super_peers()
    if isinstance(network, RendezvousProtocol):
        network.elect_rendezvous()


@pytest.fixture(params=PROTOCOL_NAMES)
def protocol_network(request):
    return make_network(request.param)


class TestKernelContract:
    """The event-driven substrate behaves the same under every protocol."""

    def test_start_search_returns_inflight_context(self, protocol_network):
        populate(protocol_network)
        publish_pattern(protocol_network, "peer-005", "Observer")
        context = protocol_network.start_search(
            "peer-002", Query.keyword("patterns", "observer"))
        # The query has messages in flight until the kernel runs it.
        assert not context.done
        protocol_network.kernel.run_until_complete([context])
        assert context.done
        response = protocol_network.finish_search(context)
        assert response.result_count >= 1
        assert response.latency_ms > 0

    def test_search_advances_virtual_time(self, protocol_network):
        populate(protocol_network)
        publish_pattern(protocol_network, "peer-005", "Observer")
        before = protocol_network.simulator.now
        response = protocol_network.search("peer-002", Query.keyword("patterns", "observer"))
        assert protocol_network.simulator.now >= before + response.latency_ms

    def test_queries_overlap_in_flight(self, protocol_network):
        populate(protocol_network)
        publish_pattern(protocol_network, "peer-005", "Observer")
        first = protocol_network.start_search("peer-002", Query.keyword("patterns", "observer"))
        second = protocol_network.start_search("peer-003", Query.keyword("patterns", "observer"))
        assert not first.done and not second.done
        protocol_network.kernel.run_until_complete([first, second])
        for context in (first, second):
            response = protocol_network.finish_search(context)
            assert any(result.provider_id == "peer-005" for result in response.results)
        assert len(protocol_network.stats.queries) == 2

    def test_churn_mid_query_completes_without_error(self, protocol_network):
        populate(protocol_network)
        publish_pattern(protocol_network, "peer-005", "Observer")
        publish_pattern(protocol_network, "peer-007", "Observer Twin")
        context = protocol_network.start_search(
            "peer-002", Query.keyword("patterns", "observer"), max_results=50)
        # Knock a provider offline while the query's messages are still
        # in flight: the cascade must still quiesce deterministically.
        protocol_network.simulator.schedule(
            1.0, lambda: protocol_network.set_online("peer-007", False))
        protocol_network.kernel.run_until_complete([context])
        assert context.done
        protocol_network.finish_search(context)

    def test_origin_churning_mid_query_receives_no_results(self, protocol_network):
        """Hits count on *arrival*: if the origin churns offline before a
        generated QUERY-HIT reaches it, the dropped delivery must not
        have contributed results — even though remote peers matched."""
        populate(protocol_network)
        publish_pattern(protocol_network, "peer-005", "Observer")
        publish_pattern(protocol_network, "peer-007", "Observer Twin")
        context = protocol_network.start_search(
            "peer-002", Query.keyword("patterns", "observer"), max_results=50)
        # The origin departs before any hit can arrive (hits need at
        # least one full round trip, i.e. tens of virtual milliseconds).
        protocol_network.simulator.schedule(
            0.5, lambda: protocol_network.set_online("peer-002", False))
        protocol_network.kernel.run_until_complete([context])
        assert context.done
        response = protocol_network.finish_search(context)
        assert response.result_count == 0

    def test_duplicate_peer_rejected(self, protocol_network):
        protocol_network.create_peer("dup")
        with pytest.raises(DuplicatePeerError):
            protocol_network.create_peer("dup")


class TestReplicationUnderChurn:
    """Satellite contract: a replica announced by ``retrieve`` stays
    findable after the original provider goes offline."""

    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_replica_survives_provider_departure(self, name):
        network = make_network(name)
        populate(network)
        provider, requester, watcher = "peer-011", "peer-006", "peer-002"
        resource_id = publish_pattern(network, provider, "Unique Replicated Pattern",
                                      "survives churn")

        found = network.search(requester, Query.keyword("patterns", "replicated"),
                               max_results=50)
        hit = next(result for result in found.results if result.provider_id == provider)
        network.retrieve(requester, provider, hit.resource_id)
        assert network.peer(requester).repository.documents.contains(resource_id)

        network.set_online(provider, False)
        again = network.search(watcher, Query.keyword("patterns", "replicated"),
                               max_results=50)
        providers = {result.provider_id for result in again.results
                     if result.resource_id == resource_id}
        assert requester in providers
        assert provider not in providers

    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_replica_survives_under_running_churn(self, name):
        """Same property while a churn model drives the rest of the
        population on the shared event queue."""
        network = make_network(name)
        populate(network)
        provider, requester, watcher = "peer-011", "peer-006", "peer-002"
        resource_id = publish_pattern(network, provider, "Churnproof Pattern", "still here")

        churn = ChurnModel(network, mean_session_ms=5_000, mean_absence_ms=1_000, seed=3)
        churn.start(["peer-008", "peer-009", "peer-010"])

        found = network.search(requester, Query.keyword("patterns", "churnproof"),
                               max_results=50)
        hits = [result for result in found.results if result.provider_id == provider]
        assert hits, "provider must be visible before it departs"
        network.retrieve(requester, provider, hits[0].resource_id)
        network.set_online(provider, False)

        again = network.search(watcher, Query.keyword("patterns", "churnproof"),
                               max_results=50)
        providers = {result.provider_id for result in again.results
                     if result.resource_id == resource_id}
        assert requester in providers


class TestRetrieveComposition:
    """Acceptance: retrieval composes with in-flight queries
    deterministically.  A download taken mid-batch schedules its own
    events on the shared queue but never mutates the clock, so every
    concurrent query's measured latency is bit-identical to a batch run
    without the download."""

    SEARCHERS = ("peer-001", "peer-002", "peer-003", "peer-004", "peer-006", "peer-008")

    def run_batch(self, name: str, *, with_download: bool):
        network = make_network(name)
        populate(network)
        publish_pattern(network, "peer-005", "Observer")
        publish_pattern(network, "peer-007", "Observer Twin")
        # The download target matches no concurrent query, so the only
        # possible interference would be through the clock or the queue.
        payload_id = publish_pattern(network, "peer-009", "Payload Blob",
                                     "unrelated binary")
        ops = [SearchOp(origin_id, Query.keyword("patterns", "observer"))
               for origin_id in self.SEARCHERS]
        if with_download:
            # Appended, so every search keeps its exact submission time;
            # the download is submitted at 30 ms while the searches
            # (latencies well beyond that) are still in flight, and its
            # request/response/transfer events interleave with theirs.
            ops.append(RetrieveOp(requester_id="peer-010", resource_id=payload_id,
                                  provider_id="peer-009"))
        outcome = QueryDriver(network).run_mixed(ops, interarrival_ms=5.0)
        assert outcome.failed == 0 and outcome.retrieve_failures == 0
        if with_download:
            assert outcome.retrieves[0] is not None
            assert network.peer("peer-010").repository.documents.contains(payload_id)
        return {
            "latencies": [response.latency_ms for response in outcome.responses],
            "counts": [response.result_count for response in outcome.responses],
            "probed": [response.peers_probed for response in outcome.responses],
        }

    @pytest.mark.parametrize("name", PROTOCOL_NAMES)
    def test_download_mid_batch_leaves_query_latencies_bit_identical(self, name):
        without = self.run_batch(name, with_download=False)
        with_download = self.run_batch(name, with_download=True)
        assert with_download == without


class TestConcurrentDeterminism:
    """Acceptance: ≥8 queries in flight under churn, bit-for-bit
    repeatable for a fixed seed."""

    CONFIG = dict(
        protocol="gnutella",
        peers=30,
        members=12,
        publishers=6,
        corpus_size=40,
        queries=16,
        ttl=6,
        seed=23,
        concurrency=8,
        query_interarrival_ms=20.0,
        churn_session_ms=4_000.0,
        churn_absence_ms=1_500.0,
    )

    def run_once(self, **overrides):
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG, **overrides}))
        counts = scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        return {
            "counts": counts,
            "total_messages": stats.total_messages,
            "total_bytes": stats.total_bytes,
            "by_type": dict(stats.messages_by_type),
            "latencies": [round(record.latency_ms, 6) for record in stats.queries],
        }

    def test_concurrent_churned_run_is_deterministic(self):
        first = self.run_once()
        second = self.run_once()
        assert first == second
        assert len(first["counts"]) == self.CONFIG["queries"]
        assert first["total_messages"] > 0

    @pytest.mark.parametrize("protocol", ("centralized", "super-peer", "rendezvous"))
    def test_other_protocols_deterministic_too(self, protocol):
        first = self.run_once(protocol=protocol)
        second = self.run_once(protocol=protocol)
        assert first == second

    def test_concurrency_keeps_queries_overlapped(self):
        """With stagger shorter than flood latency, later queries start
        before earlier ones end: total elapsed virtual time is shorter
        than the sum of individual latencies."""
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG,
                                                    "churn_session_ms": None}))
        before = scenario.network.simulator.now
        scenario.run_queries(max_results=100)
        elapsed = scenario.network.simulator.now - before
        total_latency = sum(record.latency_ms for record in scenario.network.stats.queries)
        assert elapsed < total_latency


class TestMembershipContract:
    """Acceptance: with ``live_membership=False`` (the default) every
    protocol reproduces today's results bit-identically — the knob and
    its plumbing must leak nothing.  With it on, membership traffic is
    bit-for-bit reproducible for a fixed seed and the stats split
    cleanly into control / query / download classes."""

    CONFIG = dict(
        peers=30,
        members=12,
        publishers=6,
        corpus_size=40,
        queries=16,
        ttl=6,
        seed=23,
        concurrency=8,
        query_interarrival_ms=20.0,
        churn_session_ms=1_500.0,
        churn_absence_ms=800.0,
    )

    def signature(self, **overrides):
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG, **overrides}))
        counts = scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        return {
            "counts": counts,
            "total_messages": stats.total_messages,
            "total_bytes": stats.total_bytes,
            "by_type": dict(stats.messages_by_type),
            "bytes_by_type": dict(stats.bytes_by_type),
            "latencies": [round(record.latency_ms, 6) for record in stats.queries],
            "staleness": tuple(stats.staleness_windows_ms),
        }

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_live_off_is_bit_identical_regardless_of_knobs(self, protocol):
        """The default run and an explicit live_membership=False run with
        different maintenance settings must agree on everything pinned:
        results, message counts, byte counts, latencies."""
        default = self.signature(protocol=protocol)
        explicit = self.signature(protocol=protocol, live_membership=False,
                                  maintenance_interval_ms=123.0,
                                  rendezvous_lease_ms=5_000.0)
        assert default == explicit
        assert default["by_type"].keys() <= {"query", "query-hit", "register"}

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_live_membership_traffic_is_deterministic(self, protocol):
        first = self.signature(protocol=protocol, live_membership=True,
                               maintenance_interval_ms=250.0,
                               rendezvous_lease_ms=1_000.0)
        second = self.signature(protocol=protocol, live_membership=True,
                                maintenance_interval_ms=250.0,
                                rendezvous_lease_ms=1_000.0)
        assert first == second
        # Live mode genuinely emitted lifecycle traffic.
        control_types = set(first["by_type"]) - {"query", "query-hit"}
        assert control_types, "live membership must cost control messages"

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_traffic_breakdown_partitions_all_bytes(self, protocol):
        scenario = build_scenario(ScenarioConfig(
            protocol=protocol, live_membership=True,
            maintenance_interval_ms=250.0, rendezvous_lease_ms=1_000.0,
            **self.CONFIG))
        scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        breakdown = stats.traffic_breakdown()
        assert sum(cls["messages"] for cls in breakdown.values()) == stats.total_messages
        assert sum(cls["bytes"] for cls in breakdown.values()) == stats.total_bytes
        assert breakdown["control"]["bytes"] > 0

    def test_no_lifecycle_transition_touches_the_clock(self):
        """Joins, departures and maintenance move state only through
        queue events: submitting them leaves ``simulator.now`` frozen
        until the kernel processes the queue."""
        network = make_network("super-peer")
        network.maintenance_interval_ms = 250.0
        populate(network)
        network.go_live()
        before = network.simulator.now
        network.set_online("peer-003", False)
        network.set_online("peer-003", True)
        network.create_peer("late-arrival")
        network.depart("peer-004", graceful=True)
        assert network.simulator.now == before


class TestRendezvousLeaseUnderChurnContract:
    """Satellite contract: an advertisement expiring while its owner is
    offline stays gone until the owner returns and re-advertises —
    organically under live membership."""

    def test_expiry_and_repair_compose_with_churn(self):
        network = make_network("rendezvous")
        network.lease_ms = 900.0
        network.maintenance_interval_ms = 200.0
        populate(network)
        resource_id = publish_pattern(network, "peer-005", "Leased Observer")
        network.go_live()
        # Background churn on unrelated peers keeps the queue busy.
        churn = ChurnModel(network, mean_session_ms=700, mean_absence_ms=500, seed=4)
        churn.start(["peer-008", "peer-009", "peer-010"])

        network.set_online("peer-005", False)
        network.simulator.run(until_ms=network.simulator.now + 4_000)
        gone = network.search("peer-002", Query.keyword("patterns", "leased"),
                              max_results=20)
        assert not any(result.resource_id == resource_id for result in gone.results)
        assert network.stats.staleness_windows_ms

        network.set_online("peer-005", True)
        network.simulator.run(until_ms=network.simulator.now + 600)
        back = network.search("peer-002", Query.keyword("patterns", "leased"),
                              max_results=20)
        assert any(result.resource_id == resource_id for result in back.results)


class TestResultCacheContract:
    """Acceptance: with ``result_caching=False`` (the default) every
    protocol reproduces the uncached behaviour bit-identically —
    results, message counts, byte counts — whatever the cache knobs
    say.  With it on, runs stay deterministic, repeat-heavy workloads
    cost measurably fewer messages, and a stale cached hit never
    outlives the membership staleness window."""

    CONFIG = dict(
        peers=30,
        members=12,
        publishers=6,
        corpus_size=40,
        queries=24,
        ttl=6,
        seed=23,
        concurrency=6,
        query_interarrival_ms=20.0,
        query_repeat_alpha=0.6,
    )

    def signature(self, **overrides):
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG, **overrides}))
        counts = scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        return {
            "counts": counts,
            "total_messages": stats.total_messages,
            "total_bytes": stats.total_bytes,
            "by_type": dict(stats.messages_by_type),
            "bytes_by_type": dict(stats.bytes_by_type),
            "latencies": [round(record.latency_ms, 6) for record in stats.queries],
            "cache": (stats.cache_hits, stats.cache_misses, stats.cache_stale_served),
        }

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_caching_off_is_bit_identical_regardless_of_knobs(self, protocol):
        """The knob plumbing must leak nothing: a default run and an
        explicit caching-off run with exotic cache knobs agree on
        everything pinned, and no cache counter ever moves."""
        default = self.signature(protocol=protocol)
        explicit = self.signature(protocol=protocol, result_caching=False,
                                  cache_capacity=2, cache_ttl_ms=37.0)
        assert default == explicit
        assert default["cache"] == (0, 0, 0)

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_caching_on_is_deterministic(self, protocol):
        first = self.signature(protocol=protocol, result_caching=True)
        second = self.signature(protocol=protocol, result_caching=True)
        assert first == second

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_caching_on_deterministic_under_live_membership_and_churn(self, protocol):
        overrides = dict(protocol=protocol, result_caching=True,
                         live_membership=True, maintenance_interval_ms=250.0,
                         rendezvous_lease_ms=1_000.0, cache_ttl_ms=500.0,
                         churn_session_ms=1_500.0, churn_absence_ms=800.0)
        assert self.signature(**overrides) == self.signature(**overrides)

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_repeat_heavy_workload_saves_messages(self, protocol):
        off = self.signature(protocol=protocol)
        on = self.signature(protocol=protocol, result_caching=True)
        hits, misses, _ = on["cache"]
        assert hits > 0, "a repeat-heavy workload must produce cache hits"
        assert on["total_messages"] <= off["total_messages"]
        if protocol in ("gnutella", "super-peer"):
            # The organisations that broadcast per query must save real
            # traffic; the centralized round trip costs 2 messages with
            # or without the server cache.
            assert on["total_messages"] < off["total_messages"]

    # ------------------------------------------------------------------
    # Invalidation: graceful departure vs. crash churn
    # ------------------------------------------------------------------
    def make_cached_centralized(self):
        network = CentralizedProtocol(seed=7, result_caching=True,
                                      cache_ttl_ms=60_000.0,
                                      maintenance_interval_ms=400.0)
        populate(network)
        publish_pattern(network, "peer-005", "Observer")
        publish_pattern(network, "peer-007", "Observer Twin")
        network.go_live()
        return network

    @staticmethod
    def providers_of(network, origin="peer-002"):
        response = network.search(origin, Query.keyword("patterns", "observer"),
                                  max_results=50)
        return {result.provider_id for result in response.results}

    def test_graceful_departure_invalidates_without_staleness(self):
        """A graceful goodbye (UNREGISTER traffic) reaches the server
        and kills the cached answers naming the departed provider: no
        stale hit is ever served."""
        network = self.make_cached_centralized()
        assert "peer-005" in self.providers_of(network)  # fills the cache
        network.depart("peer-005", graceful=True)
        network.simulator.run(until_ms=network.simulator.now + 300.0)
        assert "peer-005" not in self.providers_of(network)
        assert network.stats.cache_stale_served == 0

    def test_crash_stale_hit_is_bounded_by_the_membership_window(self):
        """A crash leaves the cached answer stale — the hit may name the
        dead provider — but only until the server's heartbeat lease
        purges it, the same staleness window the membership layer
        already reports.  The cache TTL here is 60 s, so the repair is
        genuinely traffic-driven, not a timeout."""
        network = self.make_cached_centralized()
        assert "peer-005" in self.providers_of(network)
        network.set_online("peer-005", False)  # crash: no goodbye traffic
        assert "peer-005" in self.providers_of(network)  # served stale
        assert network.stats.cache_stale_served > 0
        # One heartbeat lease (2 x 400 ms) later the server purges the
        # silent peer and the cached answers die with its registrations.
        network.simulator.run(until_ms=network.simulator.now + 2_500.0)
        assert "peer-005" not in self.providers_of(network)
        assert network.stats.staleness_windows_ms

    def test_crash_stale_hit_bounded_at_the_entry_super(self):
        """Same contract at a super-peer's leaf fan-in cache: the purge
        of a silent leaf's records invalidates the cached answers that
        named it."""
        network = SuperPeerProtocol(seed=7, super_peer_ratio=0.2,
                                    result_caching=True, cache_ttl_ms=60_000.0,
                                    maintenance_interval_ms=400.0)
        populate(network)
        publish_pattern(network, "peer-005", "Observer")
        network.go_live()
        home = network.peer("peer-005").super_peer_id
        origin = sorted(network.leaves_of(home) - {"peer-005"})[0]
        assert "peer-005" in self.providers_of(network, origin)  # fills entry cache
        network.set_online("peer-005", False)
        assert "peer-005" in self.providers_of(network, origin)  # served stale
        assert network.stats.cache_stale_served > 0
        network.simulator.run(until_ms=network.simulator.now + 2_500.0)
        assert "peer-005" not in self.providers_of(network, origin)
        assert network.stats.staleness_windows_ms

    def test_crash_stale_hit_bounded_by_ttl_in_gnutella(self):
        """Nobody announces a flooding peer's crash, so the origin's
        cached answer stays stale exactly one TTL — the bound the knob
        documentation demands stays at or below the membership lease."""
        network = GnutellaProtocol(seed=7, default_ttl=20, degree=2,
                                   topology_kind="ring", result_caching=True,
                                   cache_ttl_ms=1_000.0)
        populate(network)
        publish_pattern(network, "peer-005", "Observer")
        assert "peer-005" in self.providers_of(network)  # fills the origin cache
        network.set_online("peer-005", False)
        assert "peer-005" in self.providers_of(network)  # stale within the TTL
        assert network.stats.cache_stale_served > 0
        network.simulator.run(until_ms=network.simulator.now + 1_500.0)
        assert "peer-005" not in self.providers_of(network)  # fresh re-flood

    def test_shallow_flood_never_answers_a_deeper_repeat(self):
        """The flood TTL scopes the gnutella cache key: a ttl=1 search
        that found nothing (and negative-cached the miss) must not
        satisfy a later deep search for the same query."""
        network = GnutellaProtocol(seed=7, default_ttl=20, degree=2,
                                   topology_kind="ring", result_caching=True,
                                   cache_ttl_ms=60_000.0)
        populate(network)
        publish_pattern(network, "peer-006", "Observer")  # 6 hops from peer-000
        shallow = network.search("peer-000", Query.keyword("patterns", "observer"),
                                 max_results=50, ttl=1)
        assert not shallow.results  # out of a ttl=1 flood's reach
        deep = network.search("peer-000", Query.keyword("patterns", "observer"),
                              max_results=50, ttl=20)
        assert {result.provider_id for result in deep.results} == {"peer-006"}

    def test_cached_serving_never_claims_room_for_results_the_origin_holds(self):
        """A path-cache serving filters results the origin already has
        *before* slicing to the claimable room; otherwise the one slot
        of room is burned on a duplicate the origin's arrival dedup
        drops, and a distinct cached result sitting behind it in the
        entry is never served at all."""
        network = GnutellaProtocol(seed=7, default_ttl=20, degree=2,
                                   topology_kind="ring", result_caching=True,
                                   cache_ttl_ms=60_000.0)
        populate(network)
        publish_pattern(network, "peer-001", "Observer")
        publish_pattern(network, "peer-005", "Observer Twin")
        query = Query.keyword("patterns", "observer")
        # peer-000's search caches both answers, peer-001's first (it
        # arrives from one hop away, peer-005's from four).
        first = network.search("peer-000", query, max_results=2)
        assert {result.provider_id for result in first.results} \
            == {"peer-001", "peer-005"}
        # peer-005 crashes: its answer now exists only in the cache
        # (nobody announces the crash, so the entry survives).
        network.set_online("peer-005", False)
        # peer-001 repeats the query with room for exactly one result
        # beyond its own local copy.  The serving at peer-000 must spend
        # that room on peer-005's result — sliced naively, the entry
        # leads with peer-001's own duplicate and the repeat comes back
        # one result short.
        repeat = network.search("peer-001", query, max_results=2)
        assert {result.provider_id for result in repeat.results} \
            == {"peer-001", "peer-005"}
        assert network.stats.cache_stale_served > 0

    def test_cached_serving_and_direct_answer_never_promise_twice(self):
        """The in-flight race: one flood branch serves a provider's
        result from a path cache while another branch reaches the
        provider itself.  Both claiming the same (provider, resource)
        would spend ``max_results`` twice on one result and silence the
        peer holding the other match — caching on must return exactly
        what caching off does here."""
        def build(caching):
            network = GnutellaProtocol(seed=7, default_ttl=20, degree=2,
                                       topology_kind="ring", result_caching=caching,
                                       cache_ttl_ms=60_000.0)
            populate(network, peer_count=8)
            network.build_overlay()
            publish_pattern(network, "peer-002", "Observer")
            query = Query.keyword("patterns", "observer")
            network.search("peer-007", query, max_results=2)  # warms 007's cache
            publish_pattern(network, "peer-003", "Observer Twin")
            return {result.provider_id
                    for result in network.search("peer-000", query, max_results=2).results}

        assert build(True) == build(False) == {"peer-002", "peer-003"}

    def test_direct_answer_filters_promised_results_before_the_room_limit(self):
        """A provider whose first match was already promised by a path
        cache must spend its room slot on the *fresh* match: slicing
        local matches to room before filtering would hand the slot to
        the promised duplicate and silently drop the new result."""
        network = GnutellaProtocol(seed=7, default_ttl=20, degree=2,
                                   topology_kind="ring", result_caching=True,
                                   cache_ttl_ms=60_000.0)
        populate(network, peer_count=8)
        network.build_overlay()
        cached_id = publish_pattern(network, "peer-002", "Observer")
        query = Query.keyword("patterns", "observer")
        network.search("peer-000", query, max_results=2)  # caches [002: Observer]
        fresh_id = publish_pattern(network, "peer-002", "Observer Copy")
        # Precondition for the trap: local_matches returns resource-id
        # order, and the already-promised match must come first so a
        # naive limit-then-filter hands it the only room slot.
        assert cached_id < fresh_id
        response = network.search("peer-006", query, max_results=2)
        assert {result.resource_id for result in response.results} \
            == {cached_id, fresh_id}


class TestCompiledPlanContract:
    """Acceptance: the compiled-query fast path is observationally
    identical to the naive path — same search results, same hit counts,
    same message and byte counts — for every protocol, fixed seed,
    queries concurrently in flight."""

    CONFIG = dict(
        peers=30,
        members=12,
        publishers=6,
        corpus_size=40,
        queries=16,
        ttl=6,
        seed=23,
        concurrency=8,
        query_interarrival_ms=20.0,
    )

    def run_once(self, protocol, compile_queries):
        scenario = build_scenario(ScenarioConfig(
            protocol=protocol, compile_queries=compile_queries, **self.CONFIG))
        counts = scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        return {
            "counts": counts,
            "total_messages": stats.total_messages,
            "total_bytes": stats.total_bytes,
            "by_type": dict(stats.messages_by_type),
            "bytes_by_type": dict(stats.bytes_by_type),
            "results": [record.results for record in stats.queries],
            "messages": [record.messages for record in stats.queries],
            "bytes": [record.bytes for record in stats.queries],
            "probed": [record.peers_probed for record in stats.queries],
            "latencies": [round(record.latency_ms, 6) for record in stats.queries],
        }

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_compiled_path_identical_to_naive(self, protocol):
        compiled = self.run_once(protocol, True)
        naive = self.run_once(protocol, False)
        assert compiled == naive
        assert compiled["total_messages"] > 0

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_search_results_identical_per_query(self, protocol):
        """Beyond counts: the actual (provider, resource) hit sets of a
        direct search agree between the two modes."""
        def hits(compile_queries):
            network = make_network(protocol)
            network.compile_queries = compile_queries
            for index in range(6):
                network.create_peer(f"p{index}")
            publish_pattern(network, "p1", "Observer", "decouple subject from observers")
            publish_pattern(network, "p2", "Abstract Factory", "create families of objects")
            publish_pattern(network, "p3", "Factory Method", "defer creation to subclasses")
            if protocol == "gnutella":
                network.build_overlay()
            query = Query("patterns").where("name", "factory")
            response = network.search("p0", query, max_results=50)
            return sorted((r.provider_id, r.resource_id, r.hops) for r in response.results), \
                response.messages_sent, response.bytes_sent
        assert hits(True) == hits(False)


class TestShardedKernelContract:
    """Acceptance: the sharded simulator's conservative time-window
    barrier reproduces the single-queue execution bit-for-bit — shards=4
    and shards=1 agree on every pinned observable (result counts,
    message and byte counters, per-query latencies, staleness) for all
    four protocols, with and without live membership + churn."""

    CONFIG = dict(
        peers=30,
        members=12,
        publishers=6,
        corpus_size=40,
        queries=16,
        ttl=6,
        seed=23,
        concurrency=8,
        query_interarrival_ms=20.0,
    )

    def signature(self, **overrides):
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG, **overrides}))
        counts = scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        return {
            "counts": counts,
            "total_messages": stats.total_messages,
            "total_bytes": stats.total_bytes,
            "by_type": dict(stats.messages_by_type),
            "bytes_by_type": dict(stats.bytes_by_type),
            "latencies": [round(record.latency_ms, 6) for record in stats.queries],
            "staleness": tuple(stats.staleness_windows_ms),
        }

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_shards_4_reproduces_shards_1(self, protocol):
        single = self.signature(protocol=protocol, shards=1)
        sharded = self.signature(protocol=protocol, shards=4)
        assert single == sharded
        assert single["total_messages"] > 0

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_shards_4_reproduces_shards_1_under_live_churn(self, protocol):
        live = dict(live_membership=True, churn_session_ms=4_000.0,
                    churn_absence_ms=1_500.0)
        single = self.signature(protocol=protocol, shards=1, **live)
        sharded = self.signature(protocol=protocol, shards=4, **live)
        assert single == sharded

    def test_shard_count_itself_is_immaterial(self):
        """2, 3 and 4 shards all reproduce the same run — the contract
        is shard-count independence, not a lucky pairing."""
        reference = self.signature(shards=1)
        for shards in (2, 3, 4):
            assert self.signature(shards=shards) == reference

    def test_sharded_run_actually_shards(self):
        """Guard against the contract passing because sharding silently
        fell back to the single queue: the windowed machinery must have
        engaged (windows opened, cross-shard traffic deferred, events on
        every shard) with counters preserved."""
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG, "shards": 4}))
        scenario.run_queries(max_results=100)
        simulator = scenario.network.simulator
        assert type(simulator).__name__ == "ShardedSimulator"
        assert not simulator._degenerate
        assert simulator.windows > 0
        assert simulator.cross_shard_messages > 0
        assert all(count > 0 for count in simulator.events_per_shard)


class TestHashSaltIndependence:
    """Acceptance: counters must not depend on the per-process string
    hash salt.  In-process repeat-twice determinism tests share one
    salt, so a ``set[str]`` iteration order leaking into protocol
    decisions (which super an orphaned leaf re-attaches to, say) passes
    them while producing different committed baselines run to run.
    This contract replays the super-peer churny caching cell — the one
    that historically flipped — in subprocesses under two different
    ``PYTHONHASHSEED`` values and requires identical counters."""

    SCRIPT = """
import json, sys
from repro.network.membership import PopulationModel
from repro.workloads.scenario import ScenarioConfig, build_scenario

scenario = build_scenario(ScenarioConfig(
    protocol=sys.argv[1], peers=30, members=12, publishers=6,
    corpus_size=40, queries=48, community="design-patterns", ttl=6,
    seed=29, concurrency=6, query_interarrival_ms=20.0,
    query_repeat_alpha=0.6, result_caching=True, cache_capacity=8,
    cache_ttl_ms=4000.0))
population = PopulationModel(scenario.network, mean_session_ms=1200.0,
                             mean_absence_ms=720.0, seed=5)
population.start([servent.peer_id for servent in scenario.servents[2:]])
counts = scenario.run_queries(max_results=100)
stats = scenario.network.stats
print(json.dumps({
    "counts": counts,
    "messages": stats.total_messages,
    "bytes": stats.total_bytes,
    "cache_hits": stats.cache_hits,
    "cache_misses": stats.cache_misses,
    "stale_served": stats.cache_stale_served,
}))
"""

    def run_with_hash_seed(self, protocol: str, hash_seed: str) -> dict:
        import json
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        env = dict(
            os.environ,
            PYTHONHASHSEED=hash_seed,
            PYTHONPATH=str(pathlib.Path(repro.__file__).parents[1]),
        )
        completed = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, protocol],
            capture_output=True, text=True, env=env, check=True, timeout=120,
        )
        return json.loads(completed.stdout)

    # Hash seeds 0 and 4 are the pair that historically disagreed on
    # the super-peer cell (4 re-attached orphans in a different order).
    @pytest.mark.parametrize("protocol", ("super-peer", "rendezvous"))
    def test_counters_identical_across_hash_salts(self, protocol):
        first = self.run_with_hash_seed(protocol, "0")
        second = self.run_with_hash_seed(protocol, "4")
        assert first == second
        assert first["cache_hits"] > 0


class TestFaultContract:
    """Acceptance for deterministic fault injection.  ``faults=None``
    (the default) must be bit-identical to the seed behaviour for all
    four protocols whatever the reliability knobs say — including the
    live-membership + caching + shards=4 cell.  And a fixed FaultPlan
    seed must reproduce the exact drop/duplicate/retry/failover
    counters across shard counts and across interpreter hash salts."""

    CONFIG = dict(
        peers=30,
        members=12,
        publishers=6,
        corpus_size=40,
        queries=16,
        ttl=6,
        seed=23,
        concurrency=8,
        query_interarrival_ms=20.0,
    )

    FAULTY = dict(
        live_membership=True,
        churn_session_ms=900.0,
        churn_absence_ms=500.0,
        reliable_delivery=True,
        retry_timeout_ms=120.0,
    )

    def signature(self, **overrides):
        from repro.network.faults import FaultPlan  # noqa: F401 (knob type)
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG, **overrides}))
        counts = scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        return {
            "counts": counts,
            "total_messages": stats.total_messages,
            "total_bytes": stats.total_bytes,
            "by_type": dict(stats.messages_by_type),
            "bytes_by_type": dict(stats.bytes_by_type),
            "latencies": [round(record.latency_ms, 6) for record in stats.queries],
            "faults": stats.fault_summary(),
        }

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_faults_off_is_bit_identical_regardless_of_knobs(self, protocol):
        """The knob plumbing leaks nothing: a default run agrees with an
        explicit faults=None run under exotic (inert) reliability
        timers, and no fault counter ever moves."""
        default = self.signature(protocol=protocol)
        explicit = self.signature(protocol=protocol, faults=None,
                                  retry_timeout_ms=37.0, retry_max_attempts=9,
                                  download_stall_timeout_ms=77.0)
        assert default == explicit
        assert all(value == 0.0 for value in default["faults"].values())

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_faults_off_live_caching_sharded_cell_unchanged(self, protocol):
        """The busiest composed cell — live membership, churn, caching,
        shards=4 — is equally pinned against the inert knobs."""
        cell = dict(live_membership=True, churn_session_ms=1_500.0,
                    churn_absence_ms=800.0, result_caching=True, shards=4)
        default = self.signature(protocol=protocol, **cell)
        explicit = self.signature(protocol=protocol, faults=None,
                                  retry_timeout_ms=41.0, retry_max_attempts=7,
                                  download_stall_timeout_ms=99.0, **cell)
        assert default == explicit
        assert all(value == 0.0 for value in default["faults"].values())

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_fault_counters_identical_across_shard_counts(self, protocol):
        """A fixed fault seed drops/duplicates the *same* messages under
        shards=1 and shards=4: every pinned observable — including the
        fault and recovery counters — agrees exactly."""
        from repro.network.faults import FaultPlan
        plan = FaultPlan(seed=17, loss_rate=0.08, duplicate_rate=0.04)
        single = self.signature(protocol=protocol, faults=plan,
                                shards=1, **self.FAULTY)
        sharded = self.signature(protocol=protocol, faults=plan,
                                 shards=4, **self.FAULTY)
        assert single == sharded
        assert single["faults"]["dropped"] > 0


class TestFaultHashSaltIndependence:
    """Fault decisions and recovery counters must not depend on the
    per-process string hash salt (crc32-keyed streams, no builtin
    ``hash``): the same faulty cell replayed in subprocesses under two
    ``PYTHONHASHSEED`` values commits identical counters."""

    SCRIPT = """
import json, sys
from repro.network.faults import FaultPlan
from repro.workloads.scenario import ScenarioConfig, build_scenario

scenario = build_scenario(ScenarioConfig(
    protocol=sys.argv[1], peers=30, members=12, publishers=6,
    corpus_size=40, queries=16, community="design-patterns", ttl=6,
    seed=23, concurrency=8, query_interarrival_ms=20.0,
    live_membership=True, churn_session_ms=900.0, churn_absence_ms=500.0,
    reliable_delivery=True, retry_timeout_ms=120.0,
    faults=FaultPlan(seed=17, loss_rate=0.08, duplicate_rate=0.04)))
counts = scenario.run_queries(max_results=100)
stats = scenario.network.stats
print(json.dumps({
    "counts": counts,
    "messages": stats.total_messages,
    "bytes": stats.total_bytes,
    "faults": stats.fault_summary(),
}))
"""

    def run_with_hash_seed(self, protocol: str, hash_seed: str) -> dict:
        import json
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        env = dict(
            os.environ,
            PYTHONHASHSEED=hash_seed,
            PYTHONPATH=str(pathlib.Path(repro.__file__).parents[1]),
        )
        completed = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, protocol],
            capture_output=True, text=True, env=env, check=True, timeout=120,
        )
        return json.loads(completed.stdout)

    @pytest.mark.parametrize("protocol", ("centralized", "super-peer"))
    def test_fault_counters_identical_across_hash_salts(self, protocol):
        first = self.run_with_hash_seed(protocol, "0")
        second = self.run_with_hash_seed(protocol, "4")
        assert first == second
        assert first["faults"]["dropped"] > 0
