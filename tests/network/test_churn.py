"""Tests for the churn model."""

import pytest

from repro.network.churn import ChurnModel
from repro.network.gnutella import GnutellaProtocol


def build_network(peer_count=30):
    network = GnutellaProtocol(seed=8, degree=4)
    for index in range(peer_count):
        network.create_peer(f"peer-{index:03d}")
    network.build_overlay()
    return network


class TestChurnModel:
    def test_invalid_durations_rejected(self):
        network = build_network(5)
        with pytest.raises(ValueError):
            ChurnModel(network, mean_session_ms=0)
        with pytest.raises(ValueError):
            ChurnModel(network, mean_absence_ms=-5)

    def test_expected_availability(self):
        network = build_network(5)
        churn = ChurnModel(network, mean_session_ms=3000, mean_absence_ms=1000)
        assert churn.expected_availability() == pytest.approx(0.75)

    def test_peers_depart_and_return(self):
        network = build_network()
        churn = ChurnModel(network, mean_session_ms=1000, mean_absence_ms=1000, seed=3)
        churn.start()
        network.simulator.run(until_ms=10_000)
        departures = [event for event in churn.events if not event.online]
        returns = [event for event in churn.events if event.online]
        assert departures and returns
        # Events alternate per peer: a return only follows a departure.
        for peer_id in {event.peer_id for event in churn.events}:
            states = [event.online for event in churn.events if event.peer_id == peer_id]
            assert states[0] is False
            assert all(a != b for a, b in zip(states, states[1:], strict=False))

    def test_observed_availability_roughly_matches_expected(self):
        network = build_network(60)
        churn = ChurnModel(network, mean_session_ms=2000, mean_absence_ms=2000, seed=5)
        churn.start()
        network.simulator.run(until_ms=20_000)
        observed = churn.observed_availability()
        assert 0.2 <= observed <= 0.8  # expected 0.5 with generous tolerance

    def test_events_recorded_with_timestamps(self):
        network = build_network(10)
        churn = ChurnModel(network, mean_session_ms=500, mean_absence_ms=500, seed=1)
        churn.start()
        network.simulator.run(until_ms=5000)
        times = [event.time_ms for event in churn.events]
        assert times == sorted(times)
        assert all(time <= 5000 for time in times)

    def test_churn_of_subset(self):
        network = build_network(10)
        churn = ChurnModel(network, mean_session_ms=200, mean_absence_ms=10_000, seed=2)
        churn.start(peer_ids=["peer-000", "peer-001"])
        network.simulator.run(until_ms=5_000)
        affected = {event.peer_id for event in churn.events}
        assert affected <= {"peer-000", "peer-001"}

    def test_search_keeps_working_under_churn(self):
        network = build_network(40)
        from repro.storage.query import Query
        from repro.xmlkit.parser import parse
        for index in range(0, 40, 4):
            peer = network.peer(f"peer-{index:03d}")
            document = parse(f"<pattern><name>Observer {index}</name></pattern>").root
            metadata = {"name": [f"Observer {index}"]}
            result = peer.repository.publish("patterns", document, metadata)
            network.publish(peer.peer_id, "patterns", result.resource_id, metadata)
        churn = ChurnModel(network, mean_session_ms=1000, mean_absence_ms=1000, seed=9)
        churn.start()
        completed = 0
        for round_number in range(5):
            network.simulator.run(until_ms=network.simulator.now + 2000)
            online = [peer.peer_id for peer in network.online_peers()]
            if not online:
                continue
            origin = online[round_number % len(online)]
            response = network.search(origin, Query.keyword("patterns", "observer"))
            completed += 1
            assert response.result_count >= 0
        assert completed > 0
