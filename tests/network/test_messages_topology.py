"""Tests for protocol messages, statistics and topology generation."""

import pytest

from repro.network.messages import (
    MessageType,
    download_request,
    next_message_id,
    query_hit_message,
    query_message,
    register_message,
)
from repro.network.stats import NetworkStats, QueryRecord
from repro.network.topology import Topology, build_topology


class TestMessages:
    def test_message_ids_unique(self):
        assert next_message_id() != next_message_id()

    def test_query_message_payload_size(self):
        message = query_message("a", "b", "<query community='c'/>", ttl=5)
        assert message.type == MessageType.QUERY
        assert message.payload_bytes == len("<query community='c'/>")
        assert message.size_bytes > message.payload_bytes  # header added

    def test_forwarded_decrements_ttl_and_keeps_id(self):
        original = query_message("a", "b", "<query community='c'/>", ttl=3)
        forwarded = original.forwarded("b", "c")
        assert forwarded.ttl == 2
        assert forwarded.hops == 1
        assert forwarded.message_id == original.message_id
        assert not forwarded.expired
        assert forwarded.forwarded("c", "d").forwarded("d", "e").expired

    def test_query_hit_size_grows_with_results(self):
        small = query_hit_message("a", "b", result_count=1, metadata_bytes=10, message_id="m")
        large = query_hit_message("a", "b", result_count=50, metadata_bytes=900, message_id="m")
        assert large.size_bytes > small.size_bytes

    def test_register_and_download_messages(self):
        register = register_message("a", "server", community_id="c", resource_id="r", metadata_bytes=64)
        assert register.type == MessageType.REGISTER
        request = download_request("a", "b", "resource-1")
        assert request.resource_id == "resource-1"


class TestStats:
    def test_message_accounting(self):
        stats = NetworkStats()
        stats.record_message(query_message("a", "b", "<q/>"))
        stats.record_message(query_message("b", "c", "<q/>"))
        assert stats.total_messages == 2
        assert stats.messages_of(MessageType.QUERY) == 2
        assert stats.total_bytes > 0

    def test_query_summaries(self):
        stats = NetworkStats()
        stats.record_query(QueryRecord("q1", "a", "c", results=2, messages=10, bytes=100,
                                       peers_probed=5, latency_ms=40.0))
        stats.record_query(QueryRecord("q2", "a", "c", results=0, messages=20, bytes=200,
                                       peers_probed=9, latency_ms=60.0))
        assert stats.mean_messages_per_query() == 15
        assert stats.mean_latency_ms() == 50
        assert stats.mean_results_per_query() == 1
        assert stats.success_rate() == 0.5
        summary = stats.summary()
        assert summary["queries"] == 2

    def test_reset(self):
        stats = NetworkStats()
        stats.record_download(1000)
        stats.record_message(query_message("a", "b", "<q/>"))
        stats.reset()
        assert stats.total_messages == 0
        assert stats.downloads == 0

    def test_empty_stats_are_zero(self):
        stats = NetworkStats()
        assert stats.mean_messages_per_query() == 0
        assert stats.success_rate() == 0


class TestTopology:
    def peer_ids(self, count):
        return [f"peer-{index:03d}" for index in range(count)]

    @pytest.mark.parametrize("kind", ["power-law", "random", "ring", "star"])
    def test_generated_topologies_are_connected(self, kind):
        topology = build_topology(self.peer_ids(40), kind=kind, degree=4, seed=2)
        assert topology.is_connected()
        assert set(topology.peer_ids) == set(self.peer_ids(40))

    def test_ring_degree(self):
        topology = build_topology(self.peer_ids(10), kind="ring")
        assert all(topology.degree(peer) == 2 for peer in topology.peer_ids)

    def test_star_shape(self):
        topology = build_topology(self.peer_ids(10), kind="star")
        degrees = sorted(topology.degree(peer) for peer in topology.peer_ids)
        assert degrees[-1] == 9
        assert degrees[:-1] == [1] * 9

    def test_power_law_has_hubs(self):
        topology = build_topology(self.peer_ids(100), kind="power-law", degree=4, seed=3)
        degrees = sorted(topology.degree(peer) for peer in topology.peer_ids)
        assert degrees[-1] > degrees[len(degrees) // 2] * 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_topology(self.peer_ids(5), kind="hypercube")

    def test_single_peer(self):
        topology = build_topology(["only"], kind="power-law")
        assert topology.degree("only") == 0
        assert topology.is_connected()

    def test_remove_peer(self):
        topology = Topology()
        topology.add_edge("a", "b")
        topology.add_edge("b", "c")
        topology.remove_peer("b")
        assert topology.neighbors("a") == set()
        assert topology.neighbors("c") == set()

    def test_no_self_loops(self):
        topology = Topology()
        topology.add_edge("a", "a")
        assert topology.edge_count() == 0

    def test_deterministic_for_seed(self):
        a = build_topology(self.peer_ids(30), kind="power-law", seed=7)
        b = build_topology(self.peer_ids(30), kind="power-law", seed=7)
        assert a.adjacency == b.adjacency

    def test_average_path_length(self):
        ring = build_topology(self.peer_ids(10), kind="ring")
        star = build_topology(self.peer_ids(10), kind="star")
        assert star.average_path_length() < ring.average_path_length()
