"""Tests for deterministic fault injection and the reliable-delivery
envelope: plan validation, decision determinism, RNG-stream isolation
(a zero-rate plan is bit-identical to ``faults=None``), retry/backoff
recovery through partitions and loss, and crash-stop scheduling."""

import pytest

from repro.network.centralized import INDEX_SERVER_ID, CentralizedProtocol
from repro.network.faults import (FaultModel, FaultPlan, PartitionWindow,
                                  build_fault_model)
from repro.network.gnutella import GnutellaProtocol
from repro.network.rendezvous import RendezvousProtocol
from repro.network.superpeer import SuperPeerProtocol
from repro.storage.query import Query
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.xmlkit.parser import parse

PROTOCOL_NAMES = ("centralized", "gnutella", "super-peer", "rendezvous")


def publish_pattern(network, peer_id, name, intent="notify dependents"):
    peer = network.peer(peer_id)
    document = parse(f"<pattern><name>{name}</name><intent>{intent}</intent></pattern>").root
    metadata = {"name": [name], "intent": [intent]}
    result = peer.repository.publish("patterns", document, metadata, title=name)
    network.publish(peer_id, "patterns", result.resource_id, metadata, title=name)
    return result.resource_id


def settle(network, ms):
    network.simulator.run(until_ms=network.simulator.now + ms)


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        for field in ("loss_rate", "duplicate_rate", "extra_delay_rate"):
            with pytest.raises(ValueError):
                FaultPlan(**{field: 1.5})
            with pytest.raises(ValueError):
                FaultPlan(**{field: -0.1})

    def test_delays_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultPlan(extra_delay_ms=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_spread_ms=-1.0)

    def test_link_loss_rate_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(link_loss=(("a", "b", 2.0),))

    def test_partition_windows_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(partitions=(PartitionWindow(100.0, 50.0, ("a",), ("b",)),))
        with pytest.raises(ValueError):
            FaultPlan(partitions=(PartitionWindow(0.0, 50.0, (), ("b",)),))

    def test_crash_times_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=(("peer-1", -5.0),))

    def test_build_fault_model_type_checked(self):
        assert build_fault_model(None) is None
        assert isinstance(build_fault_model(FaultPlan()), FaultModel)
        with pytest.raises(TypeError):
            build_fault_model({"loss_rate": 0.5})


class TestFaultModelDecisions:
    def decisions(self, plan, pairs, now_ms=0.0):
        model = FaultModel(plan)
        return [
            (d.drop, d.partitioned, d.duplicate, d.extra_delay_ms, d.duplicate_lag_ms)
            for d in (model.decide(a, b, now_ms) for a, b in pairs)
        ]

    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed=3, loss_rate=0.3, duplicate_rate=0.2,
                         extra_delay_rate=0.2, extra_delay_ms=15.0)
        pairs = [(f"p{i}", f"p{i + 1}") for i in range(200)]
        assert self.decisions(plan, pairs) == self.decisions(plan, pairs)

    def test_seed_changes_decisions(self):
        pairs = [(f"p{i}", f"p{i + 1}") for i in range(200)]
        first = self.decisions(FaultPlan(seed=1, loss_rate=0.3), pairs)
        second = self.decisions(FaultPlan(seed=2, loss_rate=0.3), pairs)
        assert first != second

    def test_changing_one_rate_does_not_shift_another_fault_kind(self):
        """The four rolls are unconditional: turning duplication on must
        not change *which* messages the same seed's loss pattern drops."""
        pairs = [(f"p{i}", f"p{i + 1}") for i in range(300)]
        loss_only = self.decisions(FaultPlan(seed=9, loss_rate=0.2), pairs)
        loss_and_dup = self.decisions(
            FaultPlan(seed=9, loss_rate=0.2, duplicate_rate=0.5), pairs)
        assert [d[0] for d in loss_only] == [d[0] for d in loss_and_dup]
        assert any(d[0] for d in loss_only)

    def test_self_delivery_never_faulted(self):
        model = FaultModel(FaultPlan(seed=1, loss_rate=1.0))
        decision = model.decide("p1", "p1", 0.0)
        assert not decision.drop and not decision.duplicate

    def test_link_loss_overrides_default_rate_symmetrically(self):
        plan = FaultPlan(seed=1, loss_rate=0.0, link_loss=(("a", "b", 1.0),))
        model = FaultModel(plan)
        assert model.decide("a", "b", 0.0).drop
        assert model.decide("b", "a", 0.0).drop
        assert not model.decide("a", "c", 0.0).drop

    def test_partition_window_cuts_then_heals(self):
        plan = FaultPlan(partitions=(
            PartitionWindow(100.0, 200.0, ("a", "b"), ("c",)),))
        model = FaultModel(plan)
        assert not model.decide("a", "c", 50.0).drop
        cut = model.decide("a", "c", 150.0)
        assert cut.drop and cut.partitioned
        assert model.decide("c", "b", 150.0).drop
        assert not model.decide("a", "b", 150.0).drop  # same side
        assert not model.decide("a", "c", 250.0).drop  # healed

    def test_partition_times_are_relative_to_epoch(self):
        plan = FaultPlan(partitions=(
            PartitionWindow(0.0, 100.0, ("a",), ("b",)),))
        model = FaultModel(plan, epoch_ms=5_000.0)
        assert model.decide("a", "b", 5_050.0).drop
        assert not model.decide("a", "b", 5_150.0).drop


class TestRngStreamIsolation:
    """Satellite regression: a FaultPlan with every rate at 0.0 must be
    bit-identical to ``faults=None`` — the fault stream is drawn from
    its own RNG and may never perturb latency jitter or workloads."""

    CONFIG = dict(
        peers=24, members=10, publishers=5, corpus_size=30, queries=12,
        ttl=6, seed=23, concurrency=6, query_interarrival_ms=20.0,
        live_membership=True, churn_session_ms=900.0, churn_absence_ms=500.0,
    )

    def signature(self, **overrides):
        scenario = build_scenario(ScenarioConfig(**{**self.CONFIG, **overrides}))
        counts = scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        return {
            "counts": counts,
            "total_messages": stats.total_messages,
            "total_bytes": stats.total_bytes,
            "by_type": dict(stats.messages_by_type),
            "latencies": [round(record.latency_ms, 6) for record in stats.queries],
            "faults": stats.fault_summary(),
        }

    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_zero_rate_plan_is_bit_identical_to_none(self, protocol):
        baseline = self.signature(protocol=protocol)
        zeroed = self.signature(protocol=protocol, faults=FaultPlan(seed=99))
        assert baseline["faults"] == zeroed["faults"]
        assert all(value == 0.0 for value in zeroed["faults"].values())
        assert baseline == zeroed


class TestReliableEnvelope:
    def build_live_centralized(self, **kwargs):
        network = CentralizedProtocol(seed=7, **kwargs)
        for index in range(6):
            network.create_peer(f"peer-{index:03d}")
        network.go_live()
        return network

    def test_register_retries_through_a_partition(self):
        """A REGISTER sent while the sender is partitioned from the
        index server is dropped, then retransmitted with backoff until
        the partition heals — the registration lands instead of being
        silently lost."""
        partition = PartitionWindow(0.0, 150.0, ("peer-003",), (INDEX_SERVER_ID,))
        network = self.build_live_centralized(
            reliable_delivery=True, retry_timeout_ms=100.0,
            faults=FaultPlan(partitions=(partition,)))
        publish_pattern(network, "peer-003", "Observer")
        settle(network, 1_000)
        assert network.stats.partition_dropped >= 1
        assert network.stats.retries >= 1
        assert network.stats.timeouts == 0
        response = network.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.result_count == 1

    def test_register_lost_without_reliable_delivery(self):
        """The same partition without the envelope loses the REGISTER
        for good: the control case the retry machinery exists for."""
        partition = PartitionWindow(0.0, 150.0, ("peer-003",), (INDEX_SERVER_ID,))
        network = self.build_live_centralized(
            reliable_delivery=False,
            faults=FaultPlan(partitions=(partition,)))
        publish_pattern(network, "peer-003", "Observer")
        settle(network, 1_000)
        assert network.stats.partition_dropped >= 1
        assert network.stats.retries == 0
        response = network.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.result_count == 0

    def test_retries_give_up_after_max_attempts(self):
        """A permanently dead link exhausts the attempt budget and is
        recorded as a timeout instead of retrying forever."""
        network = self.build_live_centralized(
            reliable_delivery=True, retry_timeout_ms=50.0, retry_max_attempts=3,
            faults=FaultPlan(link_loss=(("peer-003", INDEX_SERVER_ID, 1.0),)))
        publish_pattern(network, "peer-003", "Observer")
        settle(network, 5_000)
        assert network.stats.retries == 2  # attempts 2 and 3
        assert network.stats.timeouts == 1

    def test_duplicated_registrations_are_harmless(self):
        network = self.build_live_centralized(
            reliable_delivery=True,
            faults=FaultPlan(seed=2, duplicate_rate=1.0))
        publish_pattern(network, "peer-003", "Observer")
        settle(network, 1_000)
        assert network.stats.duplicated >= 1
        response = network.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.result_count == 1

    def test_crash_plan_takes_peer_offline_at_its_time(self):
        network = self.build_live_centralized(
            faults=FaultPlan(crashes=(("peer-004", 500.0),)))
        assert network.peer("peer-004").online
        settle(network, 400)
        assert network.peer("peer-004").online
        settle(network, 200)
        assert not network.peer("peer-004").online
        settle(network, 1_000)
        assert not network.peer("peer-004").online  # crash-stop: never returns

    def test_extra_delay_slows_but_never_loses(self):
        slow = self.build_live_centralized(
            faults=FaultPlan(seed=3, extra_delay_rate=1.0, extra_delay_ms=40.0))
        publish_pattern(slow, "peer-003", "Observer")
        settle(slow, 2_000)
        response = slow.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.result_count == 1
        fast = self.build_live_centralized(faults=None)
        publish_pattern(fast, "peer-003", "Observer")
        settle(fast, 2_000)
        baseline = fast.search("peer-001", Query.keyword("patterns", "observer"))
        assert response.latency_ms > baseline.latency_ms


class TestScenarioFaultKnobs:
    def test_scenario_validates_fault_knobs(self):
        with pytest.raises(TypeError):
            ScenarioConfig(faults={"loss_rate": 0.5})
        with pytest.raises(ValueError):
            ScenarioConfig(retry_timeout_ms=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(retry_max_attempts=0)
        with pytest.raises(ValueError):
            ScenarioConfig(download_chunk_bytes=0)
        with pytest.raises(ValueError):
            ScenarioConfig(download_stall_timeout_ms=-1.0)

    def test_bootstrap_is_fault_free(self):
        """The plan arms at the start of the workload phase: even a
        total-loss plan cannot break community building or publishing."""
        scenario = build_scenario(ScenarioConfig(
            protocol="centralized", peers=10, members=5, publishers=2,
            corpus_size=10, queries=4, seed=3,
            faults=FaultPlan(seed=1, loss_rate=1.0)))
        assert scenario.network.faults is not None
        assert scenario.network.faults.epoch_ms == scenario.network.simulator.now
        # Queries themselves are then torn apart by the total loss.
        counts = scenario.run_queries()
        assert sum(counts) == 0
        assert scenario.network.stats.dropped > 0
