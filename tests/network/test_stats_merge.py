"""Property test for ``NetworkStats.merge``: recording a stream of
events into one stats object must equal partitioning the same stream
across several objects and merging them — every counter, per-type
breakdown, record list and staleness window is additive.  This is the
invariant process-parallel execution leans on when it folds per-worker
stats into the run total."""

from __future__ import annotations

import random

import pytest

from repro.network.stats import DownloadRecord, NetworkStats, QueryRecord


def apply_event(stats: NetworkStats, rng: random.Random) -> None:
    """One randomly-chosen recording call with randomly-drawn arguments."""
    choice = rng.randrange(12)
    if choice == 0:
        stats.record(rng.choice(("query", "query-hit", "ping", "register")),
                     rng.randrange(1, 400), copies=rng.randrange(1, 4))
    elif choice == 1:
        stats.record_query(QueryRecord(
            query_id=f"q{rng.randrange(1000)}", origin="peer", community_id="c",
            results=rng.randrange(5), messages=rng.randrange(40),
            bytes=rng.randrange(4000), peers_probed=rng.randrange(30),
            latency_ms=rng.random() * 200))
    elif choice == 2:
        stats.record_download(rng.randrange(10_000), DownloadRecord(
            resource_id="r", requester="a", provider="b",
            bytes=rng.randrange(10_000), latency_ms=rng.random() * 500))
    elif choice == 3:
        stats.record_registration()
    elif choice == 4:
        stats.record_staleness(rng.random() * 3_000)
    elif choice == 5:
        stats.record_uptime(rng.random() * 10_000)
    elif choice == 6:
        stats.record_cache_hit(stale_results=rng.randrange(3))
    elif choice == 7:
        stats.record_cache_miss()
    elif choice == 8:
        stats.record_drop(partition=rng.random() < 0.5)
    elif choice == 9:
        stats.record_duplicate()
    elif choice == 10:
        stats.record_retry()
    else:
        stats.record_timeout() if rng.random() < 0.5 else stats.record_failover()


def as_comparable(stats: NetworkStats) -> dict:
    return {
        "by_type": dict(stats.messages_by_type),
        "bytes_by_type": dict(stats.bytes_by_type),
        "queries": [vars(record) for record in stats.queries],
        "downloads": [vars(record) for record in stats.download_records],
        "staleness": stats.staleness_windows_ms,
        "summary": stats.summary(),
        "faults": stats.fault_summary(),
        "breakdown": stats.traffic_breakdown(),
    }


class TestMergeOfPartsEqualsWhole:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("parts", (2, 4, 7))
    def test_partitioned_recording_merges_to_the_whole(self, seed, parts):
        rng = random.Random(seed)
        assignment = [rng.randrange(parts) for _ in range(300)]

        whole = NetworkStats()
        replay = random.Random(f"events:{seed}")
        for _ in assignment:
            apply_event(whole, replay)

        shares = [NetworkStats() for _ in range(parts)]
        replay = random.Random(f"events:{seed}")
        for owner in assignment:
            apply_event(shares[owner], replay)

        merged = NetworkStats()
        for share in shares:
            merged.merge(share)

        # Record lists are order-sensitive only through the partition
        # interleaving; compare them as multisets like every consumer
        # (means, rates, sums) effectively does.  Float accumulators
        # (uptime, means) sum in a different order part-by-part, so the
        # summary compares to float tolerance, everything else exactly.
        left, right = as_comparable(merged), as_comparable(whole)
        for key in ("queries", "downloads", "staleness"):
            left[key] = sorted(map(str, left[key]))
            right[key] = sorted(map(str, right[key]))
        assert left.pop("summary") == pytest.approx(right.pop("summary"), rel=1e-9)
        assert left == right

    def test_merge_into_empty_is_identity(self):
        rng = random.Random(3)
        source = NetworkStats()
        for _ in range(50):
            apply_event(source, rng)
        target = NetworkStats()
        target.merge(source)
        assert as_comparable(target) == as_comparable(source)

    def test_merge_is_additive_not_replacing(self):
        first, second = NetworkStats(), NetworkStats()
        first.record("query", 100)
        second.record("query", 50, copies=2)
        second.record_registration()
        first.merge(second)
        assert first.messages_by_type["query"] == 3
        assert first.bytes_by_type["query"] == 200
        assert first.registrations == 1
