"""Shared fixtures for the U-P2P reproduction test suite."""

from __future__ import annotations

import pytest

from repro.communities.design_patterns import (
    design_pattern_community,
    gof_pattern_records,
    pattern_schema_xsd,
)
from repro.communities.mp3 import generate_mp3_corpus, mp3_community, mp3_schema_xsd
from repro.core.application import Application
from repro.core.community import COMMUNITY_SCHEMA_XSD
from repro.core.servent import Servent
from repro.network.centralized import CentralizedProtocol
from repro.network.gnutella import GnutellaProtocol
from repro.network.rendezvous import RendezvousProtocol
from repro.network.superpeer import SuperPeerProtocol
from repro.schema.parser import parse_schema_text
from repro.xmlkit.parser import parse as parse_xml


# ----------------------------------------------------------------------
# Schema / document fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def community_schema_xsd() -> str:
    """The verbatim Fig. 3 community schema."""
    return COMMUNITY_SCHEMA_XSD


@pytest.fixture()
def pattern_xsd() -> str:
    return pattern_schema_xsd()


@pytest.fixture()
def pattern_schema(pattern_xsd):
    return parse_schema_text(pattern_xsd)


@pytest.fixture()
def mp3_xsd() -> str:
    return mp3_schema_xsd()


@pytest.fixture()
def mp3_schema(mp3_xsd):
    return parse_schema_text(mp3_xsd)


@pytest.fixture()
def sample_mp3_xml() -> str:
    return (
        "<mp3><title>So What</title><artist>Miles Davis</artist>"
        "<album>Kind of Blue</album><genre>jazz</genre><year>1959</year>"
        "<bitrate>192</bitrate><duration>545</duration>"
        "<file>http://peer.local/audio/so-what.mp3</file></mp3>"
    )


@pytest.fixture()
def sample_mp3_document(sample_mp3_xml):
    return parse_xml(sample_mp3_xml).root


@pytest.fixture()
def gof_records():
    return gof_pattern_records()


@pytest.fixture()
def mp3_corpus():
    return generate_mp3_corpus(40, seed=7)


# ----------------------------------------------------------------------
# Network fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def centralized_network() -> CentralizedProtocol:
    return CentralizedProtocol(seed=11)


@pytest.fixture()
def gnutella_network() -> GnutellaProtocol:
    return GnutellaProtocol(seed=11, default_ttl=7, degree=4)


@pytest.fixture()
def superpeer_network() -> SuperPeerProtocol:
    return SuperPeerProtocol(seed=11, super_peer_ratio=0.2)


@pytest.fixture(params=["centralized", "gnutella", "super-peer", "rendezvous"])
def any_network(request):
    """Parametrized fixture: each of the protocol adapters."""
    if request.param == "centralized":
        return CentralizedProtocol(seed=5)
    if request.param == "gnutella":
        return GnutellaProtocol(seed=5, default_ttl=7, degree=4)
    if request.param == "rendezvous":
        return RendezvousProtocol(seed=5, rendezvous_ratio=0.25)
    return SuperPeerProtocol(seed=5, super_peer_ratio=0.25)


# ----------------------------------------------------------------------
# Servent / application fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def two_servents(centralized_network):
    """Two servents on a centralized network."""
    return (
        Servent("alice", centralized_network),
        Servent("bob", centralized_network),
    )


@pytest.fixture()
def mp3_application(two_servents):
    """Alice's generated MP3 application (Bob has not joined)."""
    alice, _ = two_servents
    definition = mp3_community()
    return definition.application_on(alice)


@pytest.fixture()
def pattern_application(two_servents):
    alice, _ = two_servents
    definition = design_pattern_community()
    return definition.application_on(alice)


@pytest.fixture()
def joined_pattern_apps(two_servents):
    """Both servents joined to the design-pattern community."""
    alice, bob = two_servents
    definition = design_pattern_community()
    alice_app = definition.application_on(alice)
    discovery = bob.search_communities("patterns")
    matches = [r for r in discovery.results if r.title == definition.name]
    community = bob.join_community(matches[0])
    return alice_app, Application(bob, community)
