#!/usr/bin/env python3
"""The paper's §V case study: a peer-to-peer design-pattern repository.

A group of researchers share the 23 GoF patterns (plus domain-specific
variations) over a Gnutella-style network, using the pattern community's
custom view stylesheet and index filter.  The script then runs the rich
queries the paper says filename search cannot answer.

Run with:  python examples/design_patterns_repository.py
"""

from __future__ import annotations

from repro.communities.design_patterns import (
    design_pattern_community,
    generate_pattern_corpus,
)
from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.gnutella import GnutellaProtocol
from repro.storage.query import Operator, Query


def main() -> None:
    network = GnutellaProtocol(seed=7, degree=4, default_ttl=8)
    researchers = [Servent(f"researcher-{index}", network) for index in range(6)]

    definition = design_pattern_community()
    founder_app = definition.application_on(researchers[0])
    applications = [founder_app]
    for servent in researchers[1:]:
        discovery = servent.search_communities("design patterns")
        community = servent.join_community(discovery.results[0])
        applications.append(Application(servent, community))
    network.build_overlay()

    corpus = generate_pattern_corpus(46, seed=7)
    for index, record in enumerate(corpus):
        applications[index % len(applications)].publish(record)
    print(f"published {len(corpus)} patterns across {len(applications)} researchers")

    searcher = applications[-1]

    print("\n--- queries that go beyond filename matching -------------------")
    queries = {
        "intent mentions 'families of related objects'":
            {"intent": "families of related objects"},
        "category = creational":
            {"category": "creational"},
        "consequences mention 'indirection'":
            {"consequences": "indirection"},
    }
    for label, criteria in queries.items():
        response = searcher.search(criteria, max_results=100)
        names = sorted({result.metadata["name"][0] for result in response.results})[:6]
        print(f"{label:55s} -> {response.result_count:3d} hits  e.g. {', '.join(names[:3])}")
        assert response.result_count > 0, f"the showcase query {label!r} must hit"

    print("\n--- a conjunctive query ----------------------------------------")
    query = (Query(searcher.community.community_id)
             .where("category", "behavioral", Operator.EQUALS)
             .where("intent", "one-to-many"))
    response = searcher.search(query)
    print(f"behavioral AND 'one-to-many' -> "
          f"{[result.metadata['name'][0] for result in response.results]}")
    assert response.results, "the conjunctive query must find the Observer patterns"

    print("\n--- download and view with the custom stylesheet ---------------")
    observer_hits = searcher.search({"name": "Observer"}).results
    assert observer_hits, "the Observer pattern must be findable"
    downloaded = searcher.download(observer_hits[0])
    html = searcher.view(downloaded.resource_id)
    assert "Observer" in html, "the stylesheet must render the downloaded pattern"
    print(html[:600], "…")

    print("\n--- index filter at work ----------------------------------------")
    community_id = searcher.community.community_id
    for application in applications[:2]:
        fields = application.servent.repository.index.fields_for(community_id)
        assert fields, "the index filter must leave searchable fields indexed"
        print(f"{application.servent.peer_id}: indexed fields = {fields}")

    print("\n--- network cost of this session --------------------------------")
    for metric, value in network.stats.summary().items():
        print(f"{metric:28s} {value:10.1f}")


if __name__ == "__main__":
    main()
