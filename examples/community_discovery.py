#!/usr/bin/env python3
"""Community discovery: communities are just shared resources.

The metaclass move of the paper (§I):

    metaclass : class : object   =   Community : mp3-community : mp3

This script creates every bundled community (plus artist-narrowed MP3
sub-communities), then shows a newcomer discovering them through root-
community searches, joining one, and searching inside it — the same
Create/Search/View machinery at both levels.

Run with:  python examples/community_discovery.py
"""

from __future__ import annotations

from repro.communities import ALL_COMMUNITIES
from repro.communities.mp3 import narrowed_mp3_community
from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.superpeer import SuperPeerProtocol


def main() -> None:
    network = SuperPeerProtocol(seed=3, super_peer_ratio=0.25)
    curator = Servent("curator", network)
    newcomer = Servent("newcomer", network)
    for index in range(10):
        Servent(f"member-{index}", network)
    network.elect_super_peers()

    # The curator creates every bundled community plus two narrowed ones.
    definitions = [factory() for factory in ALL_COMMUNITIES.values()]
    definitions.append(narrowed_mp3_community("Miles Davis"))
    definitions.append(narrowed_mp3_community("Kraftwerk"))
    applications = {}
    for definition in definitions:
        applications[definition.name] = definition.application_on(curator)
    print(f"curator created {len(definitions)} communities\n")

    # The newcomer browses the root community: every community is an object.
    browse = newcomer.search_communities()
    assert browse.results, "browsing the root community must list the communities"
    print("--- browsing the root community ---------------------------------")
    for result in browse.results:
        descriptor = dict(result.metadata)
        print(f"  {result.title:32s} category={descriptor.get('category', ('?',))[0]:22s} "
              f"keywords={descriptor.get('keywords', ('',))[0][:40]}")

    # Discovery is just search: narrow by keyword, category, protocol...
    print("\n--- keyword discovery: 'music' -----------------------------------")
    music = newcomer.search_communities("music").results
    assert music, "keyword discovery must find the MP3 communities"
    for result in music:
        print(f"  {result.title}")
    print("\n--- field discovery: category = science ---------------------------")
    science = newcomer.search_communities({"category": "science"}).results
    assert science, "field discovery must find the science communities"
    for result in science:
        print(f"  {result.title}")

    # Join one and use it: the same search machinery one level down.
    target = next(result for result in newcomer.search_communities("genome").results)
    community = newcomer.join_community(target)
    app = Application(newcomer, community)
    print(f"\nnewcomer joined {community.name!r} (object type <{app.object_name}>)")

    corpus = ALL_COMMUNITIES["genes"]().sample_corpus(12, seed=4)
    curator_app = applications["Genome Annotations"]
    for record in corpus:
        curator_app.publish(record)
    response = app.search({"organism": "Homo sapiens"}, max_results=50)
    print(f"search organism='Homo sapiens' -> {response.result_count} gene records")
    assert response.results, "the genome search must find human gene records"
    downloaded = app.download(response.results[0])
    view_html = app.view(downloaded.resource_id)
    assert view_html, "the rendered gene record must not be empty"
    print("\n--- first downloaded record, rendered by the View function ---")
    print(view_html[:400], "…")

    memberships = [community.name for community in newcomer.joined_communities()]
    assert memberships, "the newcomer must have joined a community"
    print("\nmemberships of the newcomer:", memberships)


if __name__ == "__main__":
    main()
