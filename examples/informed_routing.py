#!/usr/bin/env python3
"""Informed routing: pruning the blind flood without losing a result.

Gnutella floods every query to every neighbour; most of those copies
head into subtrees that hold nothing relevant.  With informed routing
each peer keeps a depth-k *attenuated Bloom filter* per neighbour —
level d summarizes the content exactly d overlay hops away — and a
query copy is forwarded only where some level within the remaining TTL
admits every probe key.  When no neighbour admits, the hop falls back
to the blind fan-out, which is why pruning can only save messages,
never cost a result.

This script runs the same seeded workload three ways and checks the
contract end to end:

1. the blind flood (baseline);
2. informed routing at the default filter geometry;
3. informed routing with deeper, larger filters (more precise — but
   watch the fallbacks: a filter precise enough to refuse a whole hop
   re-floods it blindly, so bigger is not automatically better).

Every variant must return bit-identical per-query result counts while
the informed ones spend fewer messages.  The routing knobs ride the
grouped :class:`~repro.workloads.config.RoutingConfig` spelling of the
configuration API; the equivalent flat spelling is
``informed_routing=True, routing_filter_bits=..., routing_depth=...``.

Run with:  python examples/informed_routing.py
"""

from __future__ import annotations

from repro.workloads.config import RoutingConfig
from repro.workloads.scenario import ScenarioConfig, build_scenario

BASE = dict(
    protocol="gnutella",
    peers=30,
    members=12,
    publishers=6,
    corpus_size=40,
    queries=24,
    community="design-patterns",
    ttl=6,
    seed=17,
    concurrency=6,
    query_interarrival_ms=20.0,
)


def run(routing: RoutingConfig):
    scenario = build_scenario(ScenarioConfig(routing=routing, **BASE))
    counts = scenario.run_queries(max_results=100)
    return counts, scenario.network.stats


def main() -> None:
    variants = {
        "blind flood": RoutingConfig(),
        "informed (defaults)": RoutingConfig(informed=True),
        "informed (2048b x 5)": RoutingConfig(informed=True,
                                              filter_bits=2_048, depth=5),
    }

    results = {label: run(routing) for label, routing in variants.items()}
    blind_counts, blind_stats = results["blind flood"]

    print("--- one seeded workload, three routing configurations ------------")
    print(f"{'variant':22s} {'messages':>9s} {'saved':>6s} {'pruned':>7s} "
          f"{'fallbacks':>9s} {'results':>8s}")
    for label, (counts, stats) in results.items():
        saved = blind_stats.total_messages - stats.total_messages
        print(f"{label:22s} {stats.total_messages:9d} {saved:6d} "
              f"{stats.routing_pruned:7d} {stats.routing_fallbacks:9d} "
              f"{sum(counts):8d}")

    print()
    print("--- the contract: identical recall, fewer messages ---------------")
    for label, (counts, stats) in results.items():
        if label == "blind flood":
            continue
        assert counts == blind_counts, (
            f"{label}: informed routing changed a result count")
        saved = blind_stats.total_messages - stats.total_messages
        assert saved > 0, f"{label}: the filters saved no messages"
        print(f"{label}: every query returned the blind flood's results "
              f"with {saved} fewer messages "
              f"({stats.routing_pruned} copies pruned, "
              f"{stats.routing_fallbacks} hops fell back to the flood)")

    print()
    print("Deterministic: re-running this script reproduces every number.")


if __name__ == "__main__":
    main()
