#!/usr/bin/env python3
"""A durable pattern repository: persistence, rich queries and a web snapshot.

Exercises the §VI future-work features implemented as extensions:

* the richer XML query language (``for … where … return``) evaluated
  over full objects rather than the attribute index,
* saving a servent's repository to disk and reloading it,
* exporting the servent's web interface as a static HTML site.

Run with:  python examples/durable_repository.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.communities.design_patterns import design_pattern_community
from repro.core.servent import Servent
from repro.core.webui import WebUI
from repro.network.rendezvous import RendezvousProtocol
from repro.storage.persistence import load_repository, save_repository
from repro.storage.xquery import xquery


def main() -> None:
    # The JXTA-style rendezvous layer — the network the paper proposed next.
    network = RendezvousProtocol(seed=2, rendezvous_ratio=0.34)
    curator = Servent("curator", network)
    for index in range(5):
        Servent(f"member-{index}", network)
    network.elect_rendezvous()

    definition = design_pattern_community()
    app = definition.application_on(curator)
    for record in definition.sample_corpus(23, seed=1):
        app.publish(record)
    community_id = app.community.community_id
    print(f"curator shares {len(app.shared_objects())} patterns "
          f"over the {network.protocol_name} layer "
          f"({network.advertisement_count()} live advertisements)\n")

    # --- richer queries than the attribute index can answer ----------------
    print("--- XQuery-lite: reaching fields the index filter left out --------")
    queries = [
        "for $p in pattern where $p/category = 'creational' return $p/name",
        "for $p in pattern where contains($p/intent, 'violating encapsulation') return $p/name",
        "for $p in pattern where count($p/solution/participants) >= 5 return $p/name",
    ]
    for text in queries:
        results = xquery(curator.repository, community_id, text)
        print(f"  {text}")
        print(f"    -> {[result.as_text() for result in results]}")
        assert results, f"the XQuery {text!r} must return pattern names"

    with tempfile.TemporaryDirectory() as workdir:
        # --- persistence ----------------------------------------------------
        store_dir = Path(workdir) / "repository"
        count = save_repository(curator.repository, store_dir)
        reloaded = load_repository(store_dir)
        print(f"\nsaved {count} objects to {store_dir.name}/ and reloaded "
              f"{len(reloaded.documents)} of them; index rebuilt with "
              f"{reloaded.index.entry_count()} entries")
        assert count > 0 and len(reloaded.documents) == count, \
            "the repository must round-trip through disk losslessly"

        # --- static web snapshot ---------------------------------------------
        site_dir = Path(workdir) / "site"
        files = WebUI(curator, title="Carleton Pattern Repository").export_site(site_dir)
        print(f"exported a browsable snapshot: {len(files)} HTML pages "
              f"(index.html, communities.html, one view page per pattern)")
        assert files, "the web snapshot must contain HTML pages"
        index_html = (site_dir / "index.html").read_text(encoding="utf-8")
        assert index_html, "index.html must not be empty"
        print("\n--- index.html (first 300 chars) ---")
        print(index_html[:300], "…")


if __name__ == "__main__":
    main()
