#!/usr/bin/env python3
"""Quickstart: generate a file-sharing application from an XML Schema.

The U-P2P workflow in one file:

1. describe a shared object with the schema builder (or raw XSD),
2. generate the community application (Create / Search / View),
3. publish objects, discover the community from another peer, join it,
   search it with meta-data queries, download and view a result.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.gnutella import GnutellaProtocol
from repro.schema.builder import SchemaBuilder


def build_recipe_schema() -> str:
    """A community nobody shipped in 2002: recipe sharing."""
    builder = SchemaBuilder("recipe")
    builder.field("title", searchable=True, documentation="Name of the dish")
    builder.field("cuisine", enumeration=["italian", "japanese", "mexican", "indian", "french"],
                  searchable=True)
    builder.field("ingredients", searchable=True, repeated=True)
    builder.field("instructions")
    builder.field("preparation_minutes", "positiveInteger")
    builder.field("photo", "anyURI", attachment=True, optional=True)
    return builder.to_xsd()


def main() -> None:
    # A small Gnutella-style network; any protocol adapter works here.
    network = GnutellaProtocol(seed=1, degree=3)
    alice = Servent("alice", network)
    bob = Servent("bob", network)
    network.build_overlay()

    # --- 1. Alice generates the application from the schema ---------------
    schema_xsd = build_recipe_schema()
    alice_app = Application.generate(
        alice, "Recipe community", schema_xsd,
        description="Share structured recipes and photos",
        keywords="recipes cooking food",
    )
    print(f"generated application for object type: <{alice_app.object_name}>")
    print("\n--- generated Create form (first 300 chars) ---")
    print(alice_app.create_page_html()[:300], "…")

    # --- 2. Alice publishes a couple of objects ---------------------------
    alice_app.publish({
        "title": "Spaghetti alla carbonara",
        "cuisine": "italian",
        "ingredients": ["spaghetti", "guanciale", "egg yolk", "pecorino"],
        "instructions": "Render the guanciale, toss with pasta and egg-cheese cream.",
        "preparation_minutes": "25",
        "photo": "http://peer.local/photos/carbonara.jpg",
    })
    alice_app.publish({
        "title": "Okonomiyaki",
        "cuisine": "japanese",
        "ingredients": ["cabbage", "flour", "egg", "pork belly"],
        "instructions": "Mix, griddle, flip, sauce.",
        "preparation_minutes": "40",
    })
    print(f"\nalice now shares {len(alice_app.shared_objects())} recipes")

    # --- 3. Bob discovers the community and joins it ----------------------
    discovery = bob.search_communities("recipes cooking")
    print("\nbob's community discovery results:",
          [result.title for result in discovery.results])
    assert discovery.results, "community discovery must find the recipe community"
    community = bob.join_community(discovery.results[0])
    bob_app = Application(bob, community)

    # --- 4. Bob searches with meta-data queries ---------------------------
    by_field = bob_app.search({"cuisine": "italian"})
    by_keyword = bob_app.search("guanciale")
    print(f"\nfield query cuisine=italian      -> {by_field.result_count} result(s)")
    print(f"keyword query 'guanciale'        -> {by_keyword.result_count} result(s)")
    print(f"messages spent on the last query -> {by_keyword.messages_sent}")
    assert by_field.result_count >= 1, "the field query must find the carbonara"
    assert by_keyword.result_count >= 1, "the keyword query must find the carbonara"

    # --- 5. Download and view ---------------------------------------------
    downloaded = bob_app.download(by_field.results[0])
    print(f"\ndownloaded {downloaded.resource.display_title()} "
          f"({downloaded.retrieve.transfer_bytes} bytes, "
          f"{downloaded.retrieve.attachments_transferred} attachment(s))")
    assert downloaded.retrieve.transfer_bytes > 0, "the download must move real bytes"
    view_html = bob_app.view(downloaded.resource_id)
    assert view_html, "the generated View page must not be empty"
    print("\n--- View page (first 400 chars) ---")
    print(view_html[:400], "…")


if __name__ == "__main__":
    main()
