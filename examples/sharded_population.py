#!/usr/bin/env python3
"""Scaling a population past the single-process ceiling.

Two capabilities of the sharded event kernel, end to end:

1. **Island scale-out** — `run_population` partitions a 10,000-peer
   population into 4 islands, runs each island's scenario in its own
   worker process, and aggregates the counters.  Both a flooding
   (gnutella) and a hierarchical (super-peer) organisation complete at
   a population 50x the E-series scenarios.

2. **The determinism contract** — the in-process `ShardedSimulator`
   executes one topology across shard-local event queues joined by a
   conservative time-window barrier.  A 200-peer scenario run with
   ``shards=4`` reproduces the ``shards=1`` hit counts *bit-for-bit*:
   shard count is an execution detail, never an observable.

The population defaults to 10,000; set ``SHARDED_POPULATION`` to run
the same script at a size that fits your machine (CI uses 2000).

Run with:  python examples/sharded_population.py
"""

from __future__ import annotations

import os

from repro.workloads.scale import run_population
from repro.workloads.scenario import ScenarioConfig, build_scenario

POPULATION = int(os.environ.get("SHARDED_POPULATION", "10000"))
SHARDS = 4
SEED = 42


def scale_out() -> None:
    print(f"== {POPULATION:,} peers across {SHARDS} worker processes")
    for protocol in ("gnutella", "super-peer"):
        report = run_population(
            POPULATION, shards=SHARDS, protocol=protocol, seed=SEED,
            queries_per_island=8)
        assert report.results > 0, f"{protocol}: scale run produced no hits"
        assert len(report.islands) == SHARDS
        print(f"  {protocol:11s} {report.messages:>9,} msgs  "
              f"{report.messages_per_s:>7,.0f} msgs/s  "
              f"{report.results:>5,} hits  "
              f"peak RSS {report.peak_rss_bytes / (1 << 20):,.0f} MB  "
              f"wall {report.wall_s:.1f}s")


def determinism_contract() -> None:
    print("\n== windowed determinism: shards=4 vs shards=1 on one topology")

    def hits(shards: int) -> dict:
        scenario = build_scenario(ScenarioConfig(
            protocol="gnutella", peers=200, members=24, publishers=12,
            corpus_size=90, queries=12, ttl=6, seed=SEED, concurrency=8,
            query_interarrival_ms=20.0, shards=shards))
        counts = scenario.run_queries(max_results=50)
        simulator = scenario.network.simulator
        windows = getattr(simulator, "windows", 0)
        crossings = getattr(simulator, "cross_shard_messages", 0)
        return {"counts": counts, "windows": windows, "crossings": crossings}

    single, sharded = hits(1), hits(4)
    assert sum(single["counts"]) > 0, "contract run produced no hits"
    assert single["counts"] == sharded["counts"], (
        "shard count changed observable results")
    print(f"  shards=1: {sum(single['counts']):,} hits")
    print(f"  shards=4: {sum(sharded['counts']):,} hits over "
          f"{sharded['windows']:,} windows, "
          f"{sharded['crossings']:,} cross-shard messages")
    print("  identical hit counts -- sharding is unobservable")


def main() -> None:
    scale_out()
    determinism_contract()


if __name__ == "__main__":
    main()
