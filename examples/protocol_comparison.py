#!/usr/bin/env python3
"""Protocol independence: the same workload over three network layers.

The paper (§IV-B) insists U-P2P "can be implemented in any peer-to-peer
network"; its community schema enumerates Napster, Gnutella and
FastTrack.  This script runs an identical design-pattern workload over
the three protocol adapters and prints the cost/recall table — the data
behind experiment E3.

Run with:  python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro.workloads.scenario import ScenarioConfig, build_scenario

PROTOCOLS = ("centralized", "gnutella", "super-peer")


def run(protocol: str) -> dict[str, float]:
    scenario = build_scenario(ScenarioConfig(
        protocol=protocol, peers=60, members=24, publishers=12,
        corpus_size=90, queries=30, community="design-patterns", ttl=6, seed=11,
    ))
    counts = scenario.run_queries(max_results=200)
    stats = scenario.network.stats
    recalls = [min(found, expected) / expected
               for found, expected in zip(counts, scenario.workload.expected_matches) if expected]
    return {
        "msgs/query": stats.mean_messages_per_query(),
        "bytes/query": stats.total_bytes / max(1, len(stats.queries)),
        "latency ms": stats.mean_latency_ms(),
        "recall": sum(recalls) / len(recalls) if recalls else 0.0,
        "success": stats.success_rate(),
    }


def main() -> None:
    print("running the same 30-query design-pattern workload on 60 peers…\n")
    results = {protocol: run(protocol) for protocol in PROTOCOLS}
    for protocol, values in results.items():
        assert values["success"] > 0, f"{protocol}: every query failed"
        assert values["recall"] > 0, f"{protocol}: nothing was ever found"
        assert values["msgs/query"] > 0, f"{protocol}: no messages were accounted"
    columns = ["protocol", "msgs/query", "bytes/query", "latency ms", "recall", "success"]
    print("  ".join(column.ljust(12) for column in columns))
    print("-" * 80)
    for protocol, values in results.items():
        cells = [protocol.ljust(12)]
        for column in columns[1:]:
            value = values[column]
            cells.append(f"{value:12.2f}")
        print("  ".join(cells))
    print("\nreading the table:")
    print(" * the centralized (Napster-style) index answers in 2 messages but is a single point of failure;")
    print(" * Gnutella-style flooding pays one to two orders of magnitude more messages for the same recall;")
    print(" * the FastTrack-style super-peer overlay sits in between — the trade-off U-P2P deliberately")
    print("   leaves to the underlying network layer.")


if __name__ == "__main__":
    main()
