#!/usr/bin/env python3
"""Replication and availability under churn.

The paper's §II observation: downloading popular files makes the network
more robust because more hosts end up sharing them.  This script drives
a Zipf-skewed download workload over an MP3 community, then applies
churn and reports how availability differs between popular and
unpopular objects.

Run with:  python examples/replication_under_churn.py
"""

from __future__ import annotations

import random

from repro.communities.mp3 import mp3_community
from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.centralized import CentralizedProtocol
from repro.workloads.popularity import ZipfDistribution

PEERS = 25
OBJECTS = 30
DOWNLOADS = 120


def main() -> None:
    network = CentralizedProtocol(seed=5)
    definition = mp3_community()
    servents = [Servent(f"peer-{index:02d}", network) for index in range(PEERS)]
    founder = definition.application_on(servents[0])
    applications = [founder]
    for servent in servents[1:]:
        discovery = servent.search_communities("music")
        applications.append(Application(servent, servent.join_community(discovery.results[0])))

    corpus = definition.sample_corpus(OBJECTS, seed=5)
    resource_ids = [applications[index % 5].publish(record).resource_id
                    for index, record in enumerate(corpus)]
    print(f"{OBJECTS} tracks published by 5 peers; running {DOWNLOADS} Zipf-distributed downloads…")

    zipf = ZipfDistribution(OBJECTS, exponent=1.0, seed=9)
    for number, rank in enumerate(zipf.sample_many(DOWNLOADS)):
        application = applications[number % len(applications)]
        wanted = resource_ids[rank]
        if application.servent.repository.documents.contains(wanted):
            continue
        hits = [result for result in application.browse(max_results=500).results
                if result.resource_id == wanted
                and result.provider_id != application.servent.peer_id]
        if hits:
            application.download(hits[0])

    print("\npopularity rank   request prob.   replicas")
    for rank in (0, 1, 4, 9, 19, 29):
        print(f"{rank:15d}   {zipf.probability(rank):13.3f}   {network.provider_count(resource_ids[rank]):8d}")

    print("\nnow removing random peers and checking what survives…")
    rng = random.Random(13)
    print("departed peers   all tracks reachable   top-5 tracks reachable")
    for departures in (5, 10, 15, 20):
        victims = rng.sample([peer.peer_id for peer in network.online_peers()],
                             min(departures, PEERS - 1))
        for victim in victims:
            network.set_online(victim, False)
        reachable = sum(1 for rid in resource_ids if network.provider_count(rid) > 0)
        top = sum(1 for rank in range(5) if network.provider_count(resource_ids[rank]) > 0)
        print(f"{departures:14d}   {reachable / OBJECTS:20.2f}   {top / 5:22.2f}")
        for victim in victims:
            network.set_online(victim, True)

    print("\npopular objects are replicated by their downloaders and therefore stay "
          "available even when many peers leave — the robustness argument of the paper.")


if __name__ == "__main__":
    main()
