#!/usr/bin/env python3
"""Replication and availability under churn — with live membership.

The paper's §II observation: downloading popular files makes the network
more robust because more hosts end up sharing them.  This script drives
a Zipf-skewed download workload over an MP3 community, then switches
the network to *live membership* (peer lifecycle as real protocol
traffic) and lets a PopulationModel churn the peers: departures leave
stale registrations behind until the server's heartbeat lease notices,
returns re-register through the kernel, and a flash crowd of brand-new
peers joins mid-run.

Run with:  python examples/replication_under_churn.py
"""

from __future__ import annotations

from repro.communities.mp3 import mp3_community
from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.centralized import CentralizedProtocol
from repro.network.membership import PopulationModel
from repro.workloads.popularity import ZipfDistribution

PEERS = 25
OBJECTS = 30
DOWNLOADS = 120


def main() -> None:
    network = CentralizedProtocol(seed=5, maintenance_interval_ms=400.0)
    definition = mp3_community()
    servents = [Servent(f"peer-{index:02d}", network) for index in range(PEERS)]
    founder = definition.application_on(servents[0])
    applications = [founder]
    for servent in servents[1:]:
        discovery = servent.search_communities("music")
        applications.append(Application(servent, servent.join_community(discovery.results[0])))

    corpus = definition.sample_corpus(OBJECTS, seed=5)
    resource_ids = [applications[index % 5].publish(record).resource_id
                    for index, record in enumerate(corpus)]
    print(f"{OBJECTS} tracks published by 5 peers; running {DOWNLOADS} Zipf-distributed downloads…")

    zipf = ZipfDistribution(OBJECTS, exponent=1.0, seed=9)
    for number, rank in enumerate(zipf.sample_many(DOWNLOADS)):
        application = applications[number % len(applications)]
        wanted = resource_ids[rank]
        if application.servent.repository.documents.contains(wanted):
            continue
        hits = [result for result in application.browse(max_results=500).results
                if result.resource_id == wanted
                and result.provider_id != application.servent.peer_id]
        if hits:
            application.download(hits[0])

    print("\npopularity rank   request prob.   replicas")
    for rank in (0, 1, 4, 9, 19, 29):
        print(f"{rank:15d}   {zipf.probability(rank):13.3f}   {network.provider_count(resource_ids[rank]):8d}")
    assert network.provider_count(resource_ids[0]) > 1, \
        "the most popular track must have been replicated by the downloads"

    # ------------------------------------------------------------------
    # Live membership: lifecycle becomes protocol traffic.
    # ------------------------------------------------------------------
    print("\ngoing live: joins, heartbeats and re-registrations now cost messages…")
    network.go_live()
    network.stats.reset()
    population = PopulationModel(network, mean_session_ms=2_500.0,
                                 mean_absence_ms=1_500.0, seed=13)
    population.start([servent.peer_id for servent in servents[5:]])

    simulator = network.simulator
    print("\nvirtual s   online   all tracks reachable   top-5 reachable   control KB   stale purges")
    for window in range(1, 6):
        simulator.run(until_ms=simulator.now + 2_000)
        reachable = sum(1 for rid in resource_ids if network.provider_count(rid) > 0)
        top = sum(1 for rank in range(5) if network.provider_count(resource_ids[rank]) > 0)
        stats = network.stats
        print(f"{window * 2:9d}   {len(network.online_peers()):6d}   "
              f"{reachable / OBJECTS:20.2f}   {top / 5:15.2f}   "
              f"{stats.control_bytes / 1024:10.1f}   {len(stats.staleness_windows_ms):12d}")
        assert top == 5, "the replicated top-5 tracks must stay reachable through churn"
    assert network.stats.control_bytes > 0, "live membership must cost control traffic"

    print(f"\nmean staleness window: {network.stats.mean_staleness_ms():.0f} ms "
          f"(how long a departed peer's registrations outlived it)")
    print("popular objects stay reachable through churn because their replicas "
          "re-register from many hosts — the robustness argument of the paper.")

    # ------------------------------------------------------------------
    # Flash crowd: a burst of brand-new peers joins mid-run.
    # ------------------------------------------------------------------
    before = len(network.peers)
    newcomer_ids = population.flash_crowd(8, at_ms=500.0)
    simulator.run(until_ms=simulator.now + 2_000)
    print(f"\nflash crowd: {len(network.peers) - before} newcomers joined "
          f"(population {before} -> {len(network.peers)}); "
          f"server now believes {len(network.believed_online())} peers alive")
    assert len(network.peers) - before == 8, "the whole flash crowd must have joined"
    # A newcomer can immediately use the network: search from it.
    from repro.storage.query import Query

    response = network.search(newcomer_ids[0],
                              Query.keyword(founder.community.community_id, "the"),
                              max_results=10)
    print(f"a flash-crowd newcomer's first search probed {response.peers_probed} peer(s) "
          f"and returned {response.result_count} result(s) "
          f"after {response.latency_ms:.0f} virtual ms")
    assert response.result_count > 0, "a newcomer's first search must find shared tracks"


if __name__ == "__main__":
    main()
