#!/usr/bin/env python3
"""Fault injection and reliable delivery: losing messages on purpose.

A deployment never gets the perfect links the simulator defaults to,
so this script turns the faults on and shows what the hardening buys:

1. a lossy network silently eats queries and downloads when delivery
   is fire-and-forget;
2. the reliable envelope (ACK + capped exponential backoff) rides out
   the same loss, and a scheduled partition heals into delivered
   registrations instead of lost ones;
3. a provider that crash-stops mid-download strands the transfer —
   unless a replica exists, in which case the requester's stall
   watchdog fails over and completes it.

Everything is deterministic: the fault stream is seeded, partitions
and crashes are scheduled in virtual time, and re-running the script
reproduces every number.

Run with:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.network.errors import TransferError
from repro.network.faults import FaultPlan, PartitionWindow
from repro.workloads.scenario import ScenarioConfig, build_scenario

BASE = dict(
    protocol="centralized",
    peers=16,
    members=8,
    publishers=3,
    corpus_size=12,
    queries=12,
    community="design-patterns",
    seed=11,
    concurrency=4,
    live_membership=True,
    retrieve_fraction=0.3,
)

HARDENED = dict(
    reliable_delivery=True,
    retry_timeout_ms=120.0,
    download_chunk_bytes=16 * 1024,
    download_stall_timeout_ms=800.0,
)


def run(loss_rate: float, hardened: bool):
    plan = FaultPlan(seed=43, loss_rate=loss_rate) if loss_rate else None
    knobs = dict(HARDENED) if hardened else {}
    scenario = build_scenario(ScenarioConfig(faults=plan, **knobs, **BASE))
    outcome = scenario.run_mixed_workload(max_results=50)
    return scenario, outcome


def main() -> None:
    print("--- 1. silent loss: 10% of deliveries dropped --------------------")
    clean_scenario, clean = run(0.0, hardened=False)
    lossy_scenario, lossy = run(0.10, hardened=False)
    hard_scenario, hard = run(0.10, hardened=True)
    for label, scenario, outcome in (
            ("clean network, fire-and-forget", clean_scenario, clean),
            ("10% loss,      fire-and-forget", lossy_scenario, lossy),
            ("10% loss,      reliable stack ", hard_scenario, hard)):
        stats = scenario.network.stats
        hits = sum(1 for count in outcome.result_counts if count > 0)
        print(f"  {label}: {hits}/{len(outcome.result_counts)} queries hit, "
              f"{outcome.downloads_completed}/{len(outcome.retrieves)} downloads, "
              f"dropped={stats.dropped} retries={stats.retries} "
              f"timeouts={stats.timeouts}")
    assert hard_scenario.network.stats.dropped > 0, "the plan must inject loss"
    assert hard_scenario.network.stats.retries > 0, "the envelope must retry"
    assert hard.downloads_completed >= lossy.downloads_completed, \
        "the hardened stack must not lose downloads the legacy stack completes"
    assert hard.downloads_completed == clean.downloads_completed, \
        "the hardened stack must complete every download a clean network does"

    print("\n--- 2. a scheduled partition, healed mid-workload -----------------")

    def publish_during_cut(hardened: bool):
        # A publisher is cut off from everyone (including the index
        # hub) for 400ms and publishes a new document during the cut.
        # Its REGISTER is dropped by the partition; the reliable
        # envelope's backoff (120ms, 360ms, 840ms) outlasts the cut and
        # lands the registration after the heal — fire-and-forget loses
        # it forever, because nothing ever re-sends it.
        scenario, _ = run(0.0, hardened=hardened)
        network = scenario.network
        publisher = scenario.servents[0].peer_id
        others = sorted((set(network.peers)
                         | set(network.kernel.virtual_nodes)) - {publisher})
        network.install_faults(FaultPlan(partitions=(
            PartitionWindow(0.0, 400.0, (publisher,), tuple(others)),)))
        record = dict(scenario.definition.sample_corpus(1, seed=99)[0],
                      name="Partition Survivor")
        published = scenario.applications[0].publish(record)
        network.simulator.run(until_ms=network.simulator.now + 3_000.0)
        response = scenario.applications[-1].search(
            "Partition Survivor", max_results=20)
        found = any(result.resource_id == published.resource_id
                    for result in response.results)
        return network, found

    lossy_network, lost = publish_during_cut(hardened=False)
    hard_network, survived = publish_during_cut(hardened=True)
    print(f"  fire-and-forget: registration "
          f"{'survived' if lost else 'lost'} "
          f"(partition_dropped={lossy_network.stats.partition_dropped})")
    print(f"  reliable stack:  registration "
          f"{'survived' if survived else 'lost'} "
          f"(partition_dropped={hard_network.stats.partition_dropped}, "
          f"retries={hard_network.stats.retries})")
    assert lossy_network.stats.partition_dropped > 0, "the cut must drop deliveries"
    assert not lost, "fire-and-forget cannot repair a registration the cut ate"
    assert survived, "the envelope must land the registration after the heal"
    assert hard_network.stats.retries > 0

    print("\n--- 3. provider crash mid-download: failover vs. stranded ---------")
    scenario, _ = run(0.0, hardened=True)
    network = scenario.network
    resource_id = scenario.resource_ids[0]
    provider = network.locate_provider(resource_id)
    requester = scenario.servents[BASE["members"] - 1].peer_id
    mirror = scenario.servents[BASE["members"] - 2].peer_id
    reference = network.retrieve(mirror, provider, resource_id)
    network.simulator.post(reference.latency_ms * 0.5,
                           network._fault_crash, provider)
    recovered = network.retrieve(requester, provider, resource_id)
    print(f"  {provider} crashed mid-transfer; watchdog failed over to "
          f"{recovered.provider_id}: {recovered.transfer_bytes:,} bytes in "
          f"{recovered.latency_ms:,.0f}ms "
          f"(clean: {reference.transfer_bytes:,} bytes in "
          f"{reference.latency_ms:,.0f}ms)")
    assert recovered.stored is not None
    assert recovered.provider_id == mirror
    assert network.stats.failovers == 1

    scenario, _ = run(0.0, hardened=True)
    network = scenario.network
    resource_id = scenario.resource_ids[0]
    provider = network.locate_provider(resource_id)
    network.simulator.post(reference.latency_ms * 0.5,
                           network._fault_crash, provider)
    try:
        network.retrieve(requester, provider, resource_id)
        raise AssertionError("a crash with no replica must strand the download")
    except TransferError:
        print(f"  same crash with no replica: download stranded, "
              f"timeouts={network.stats.timeouts} (recorded, not silent)")
    assert network.stats.timeouts >= 1

    print("\nAll fault-tolerance behaviours verified.")


if __name__ == "__main__":
    main()
