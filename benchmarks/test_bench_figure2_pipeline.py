"""F2 — Fig. 2: schema + XSL → Create / Search / View functions.

Measures the generation pipeline's cost as the community schema grows
from 4 to 64 fields: XSD parsing, form generation by XSLT and view
rendering.  The paper's architecture implies this cost is paid per
screen render (JSP model); the series shows it stays linear in schema
width, i.e. the generative approach does not blow up for rich objects.
"""

from __future__ import annotations

import pytest

from repro.core.stylesheets import StylesheetSet
from repro.schema.builder import SchemaBuilder
from repro.schema.instance import InstanceSynthesizer
from repro.schema.parser import parse_schema_text
from repro.xmlkit.serializer import serialize

WIDTHS = (4, 8, 16, 32, 64)


def build_wide_schema(width: int) -> str:
    builder = SchemaBuilder("object")
    for index in range(width):
        builder.field(f"field{index:02d}", searchable=(index % 2 == 0))
    return builder.to_xsd()


def full_pipeline(schema_xsd: str) -> dict[str, int]:
    styles = StylesheetSet()
    schema = parse_schema_text(schema_xsd)
    instance = InstanceSynthesizer(schema, seed=2).synthesize()
    object_xml = serialize(instance, xml_declaration=False)
    return {
        "fields": len(schema.fields()),
        "create": len(styles.render_create_form(schema_xsd)),
        "search": len(styles.render_search_form(schema_xsd)),
        "view": len(styles.render_view(object_xml)),
    }


@pytest.mark.parametrize("width", WIDTHS)
def test_bench_figure2_pipeline_scales_with_schema_width(benchmark, width):
    schema_xsd = build_wide_schema(width)
    sizes = benchmark(full_pipeline, schema_xsd)
    assert sizes["fields"] == width
    assert sizes["create"] > 0 and sizes["search"] > 0 and sizes["view"] > 0


def test_bench_figure2_report(benchmark, report):
    schemas = {width: build_wide_schema(width) for width in WIDTHS}
    results = benchmark.pedantic(
        lambda: {width: full_pipeline(xsd) for width, xsd in schemas.items()},
        rounds=1, iterations=1,
    )
    rows = [[width, sizes["create"], sizes["search"], sizes["view"]]
            for width, sizes in results.items()]
    report("F2  generated artefact sizes vs schema width (fields)",
           ["fields", "create form chars", "search form chars", "view chars"], rows)
    # Output grows monotonically with schema width — the pipeline is
    # driven entirely by the schema.
    creates = [row[1] for row in rows]
    assert creates == sorted(creates)
