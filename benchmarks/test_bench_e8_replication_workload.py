"""E8 — download-and-replicate on the event kernel, all four protocols.

The paper's §II availability argument measured end to end: a mixed
search/retrieve workload (Zipf-popular downloads interleaved with
queries on the shared event clock) grows the replica set while queries
are in flight.  The experiment reports replica count per popularity
rank, hit latency for the most popular object before and after the
replication wave, and availability under random departures with and
without the replicas — for every network organisation, since the
replication layer rides the protocol-independent retrieve path.
"""

from __future__ import annotations

import random

import pytest

from repro.storage.query import Query
from repro.storage.replicas import REPLICA
from repro.workloads.scenario import ScenarioConfig, build_scenario

PROTOCOLS = ("centralized", "gnutella", "super-peer", "rendezvous")

CONFIG = dict(
    peers=24,
    members=12,
    publishers=4,
    corpus_size=24,
    queries=48,
    retrieve_fraction=0.5,
    popularity_skew=1.2,
    concurrency=6,
    query_interarrival_ms=10.0,
    ttl=8,
    seed=17,
)


def build_and_run(protocol: str, *, retrieve_fraction: float = CONFIG["retrieve_fraction"]):
    scenario = build_scenario(ScenarioConfig(**{
        **CONFIG, "protocol": protocol, "retrieve_fraction": retrieve_fraction,
    }))
    outcome = scenario.run_mixed_workload(max_results=100)
    return scenario, outcome


def availability_after_departures(scenario, *, departures: int, seed: int = 37) -> float:
    """Fraction of corpus objects still held by some online peer."""
    network = scenario.network
    rng = random.Random(seed)
    online = [peer_id for peer_id in network.peers if network.peer(peer_id).online]
    departed = rng.sample(online, min(departures, len(online) - 1))
    for peer_id in departed:
        network.set_online(peer_id, False)
    available = sum(
        1 for resource_id in scenario.resource_ids
        if network.locate_provider(resource_id) is not None
    )
    for peer_id in departed:
        network.set_online(peer_id, True)
    return available / len(scenario.resource_ids)


@pytest.fixture(scope="module", params=PROTOCOLS)
def world(request):
    scenario, outcome = build_and_run(request.param)
    return request.param, scenario, outcome


def test_bench_e8_mixed_workload(benchmark):
    benchmark.pedantic(
        lambda: build_and_run("gnutella"),
        rounds=1, iterations=1,
    )


def test_bench_e8_replicas_grow_with_popularity(world, report):
    protocol, scenario, outcome = world
    assert outcome.downloads_completed > 0
    degrees = scenario.replication_degrees()
    rows = [
        [rank, scenario.resource_ids[rank][:10], degrees[rank]]
        for rank in (0, 1, 2, 5, 11, len(degrees) - 1)
    ]
    report(f"E8  [{protocol}] replicas per popularity rank after the mixed workload",
           ["popularity rank", "resource", "copies"], rows)
    head = sum(degrees[:5])
    tail = sum(degrees[-5:])
    assert head > tail, "popular objects must accumulate more copies"
    assert max(degrees[:3]) >= 2, "the head of the distribution must have replicated"


def test_bench_e8_queries_resolve_to_midrun_replicas(world):
    """Acceptance: every protocol resolves queries to replicas created
    while the workload was running."""
    protocol, scenario, outcome = world
    network = scenario.network
    replicas = network.replicas
    community_id = scenario.community_id
    # Pick downloaded objects that now have replicas recorded mid-run.
    replicated = [
        resource_id for resource_id in scenario.resource_ids
        if any(entry.provenance == REPLICA and entry.recorded_at_ms > 0
               for entry in replicas.entries_for(resource_id))
    ]
    assert replicated, "the workload must have created replicas"
    hit_on_replica = False
    searcher = scenario.members()[-1].peer_id
    for resource_id in replicated[:6]:
        response = network.search(searcher, Query(community_id), max_results=2000)
        for result in response.results:
            if result.resource_id != resource_id:
                continue
            if replicas.provenance(result.resource_id, result.provider_id) == REPLICA:
                hit_on_replica = True
                break
        if hit_on_replica:
            break
    assert hit_on_replica, f"{protocol} never resolved a query to a mid-run replica"


def test_bench_e8_hit_latency_before_and_after_replication(report):
    """First-hit distance for the most popular object, before any
    downloads versus after the replication wave (gnutella, where
    proximity matters most)."""
    rows = []
    before_after = {}
    for phase, fraction in (("before", 0.0), ("after", CONFIG["retrieve_fraction"])):
        scenario, _ = build_and_run("gnutella", retrieve_fraction=fraction)
        network = scenario.network
        popular = scenario.resource_ids[0]
        searcher = scenario.members()[-1].peer_id
        response = network.search(searcher, Query(scenario.community_id), max_results=2000)
        providers = [r for r in response.results if r.resource_id == popular]
        closest = min((r.hops for r in providers), default=None)
        degree = network.replication_degree(popular)
        before_after[phase] = (closest, degree, len(providers))
        rows.append([phase, degree, len(providers), closest])
    report("E8  most-popular object: copies and first-hit distance (gnutella)",
           ["phase", "copies", "providers found", "closest hit (hops)"], rows)
    assert before_after["after"][1] > before_after["before"][1]
    # More copies can only bring the object closer, never farther.
    if before_after["before"][0] is not None and before_after["after"][0] is not None:
        assert before_after["after"][0] <= before_after["before"][0]


def test_bench_e8_availability_with_and_without_replicas(report):
    rows = []
    for protocol in PROTOCOLS:
        without_scenario, _ = build_and_run(protocol, retrieve_fraction=0.0)
        with_scenario, _ = build_and_run(protocol)
        for departures in (6, 12):
            without = availability_after_departures(without_scenario, departures=departures)
            with_replicas = availability_after_departures(with_scenario, departures=departures)
            rows.append([protocol, departures, f"{without:.2f}", f"{with_replicas:.2f}"])
            assert with_replicas >= without
    report("E8  availability after random departures, without vs with replication",
           ["protocol", "departed", "no replicas", "with replicas"], rows)
