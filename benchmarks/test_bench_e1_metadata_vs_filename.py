"""E1 — meta-data search vs filename search.

The paper's motivating claim (§I, §II): filename matching "acts as a
barrier to sharing of complex objects — for example, a design patterns
community requires the ability to search not just name but purpose,
keywords, applications, etc."

The experiment publishes the design-pattern corpus, then runs the same
information needs twice: as U-P2P field queries over indexed meta-data,
and as Napster/Gnutella-style substring matching over a synthetic
filename (``<name>.pattern.xml``).  Recall of meta-data search should be
dramatically higher for every need that refers to anything but the name.
"""

from __future__ import annotations

import pytest

from repro.communities.design_patterns import generate_pattern_corpus
from repro.storage.index import AttributeIndex, tokenize
from repro.storage.query import Criterion, Operator, Query

CORPUS_SIZE = 92

#: (information need, field query criteria, relevant-record predicate)
NEEDS = [
    ("patterns about notifying dependents",
     [("intent", "dependents notified", Operator.CONTAINS)],
     lambda record: "notified" in record["intent"] or "notify" in record["intent"]),
    ("creational patterns",
     [("category", "creational", Operator.EQUALS)],
     lambda record: record["category"] == "creational"),
    ("patterns applicable to tree structures",
     [("intent", "tree structures", Operator.CONTAINS)],
     lambda record: "tree structures" in record["intent"]),
    ("patterns about families of objects",
     [("intent", "families", Operator.CONTAINS)],
     lambda record: "families" in record["intent"]),
    ("patterns named Observer",
     [("name", "Observer", Operator.CONTAINS)],
     lambda record: "observer" in record["name"].lower()),
]


def filename_of(record: dict[str, object]) -> str:
    """The only thing a filename-matching network exposes."""
    return f"{str(record['name']).lower().replace(' ', '_')}.pattern.xml"


def filename_search(corpus, text: str) -> set[int]:
    """Napster-style substring match of every query word against filenames."""
    tokens = tokenize(text)
    matches = set()
    for index, record in enumerate(corpus):
        name = filename_of(record)
        if all(token in name for token in tokens):
            matches.add(index)
    return matches


def build_index(corpus) -> AttributeIndex:
    index = AttributeIndex()
    for number, record in enumerate(corpus):
        metadata = {path: [str(value)] if isinstance(value, str) else [str(v) for v in value]
                    for path, value in record.items()}
        index.add("patterns", f"r{number}", metadata)
    return index


def metadata_search(index: AttributeIndex, criteria) -> set[str]:
    query = Query("patterns", [Criterion(path, value, operator) for path, value, operator in criteria])
    return query.evaluate(index)


@pytest.fixture(scope="module")
def corpus():
    return generate_pattern_corpus(CORPUS_SIZE, seed=5)


def test_bench_e1_metadata_vs_filename_recall(benchmark, corpus, report):
    index = build_index(corpus)

    def run_all():
        return [metadata_search(index, criteria) for _, criteria, _ in NEEDS]

    benchmark(run_all)

    rows = []
    metadata_wins = 0
    for need, criteria, is_relevant in NEEDS:
        relevant = {index_ for index_, record in enumerate(corpus) if is_relevant(record)}
        found_metadata = {int(rid[1:]) for rid in metadata_search(index, criteria)}
        found_filename = filename_search(corpus, " ".join(value for _, value, _ in criteria))
        recall_metadata = len(found_metadata & relevant) / max(1, len(relevant))
        recall_filename = len(found_filename & relevant) / max(1, len(relevant))
        rows.append([need, len(relevant), f"{recall_metadata:.2f}", f"{recall_filename:.2f}"])
        if recall_metadata > recall_filename:
            metadata_wins += 1
        assert recall_metadata >= recall_filename
    report("E1  recall: meta-data field search vs filename substring search",
           ["information need", "relevant", "metadata recall", "filename recall"], rows)
    # Meta-data search must win strictly for the majority of needs (everything
    # that is not a pure name lookup).
    assert metadata_wins >= 3


def test_bench_e1_index_stays_small(benchmark, corpus, report):
    """Only searchable fields are indexed, so 'only fields with small
    portions of content [are] present in the search engine instead of the
    entire XML object' (paper §IV-C.2)."""
    index = benchmark.pedantic(build_index, args=(corpus,), rounds=1, iterations=1)
    searchable_only = AttributeIndex()
    searchable_fields = ("name", "category", "intent", "keywords", "applicability", "consequences")
    full_bytes = 0
    for number, record in enumerate(corpus):
        metadata = {path: [str(value)] if isinstance(value, str) else [str(v) for v in value]
                    for path, value in record.items()}
        full_bytes += sum(len(path) + sum(len(v) for v in values) for path, values in metadata.items())
        searchable_only.add("patterns", f"r{number}",
                            {path: values for path, values in metadata.items()
                             if path in searchable_fields})
    report("E1  index size: searchable fields vs whole objects",
           ["store", "bytes"],
           [["full objects", full_bytes],
            ["all fields indexed", index.size_bytes()],
            ["searchable fields only", searchable_only.size_bytes()]])
    assert searchable_only.size_bytes() < full_bytes
