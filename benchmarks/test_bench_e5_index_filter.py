"""E5 — the case study's index filter: index size vs query capability.

The design-pattern case study (§V) lets the community designer decide
"which parts of the design pattern should be indexed" through an
index-filter stylesheet.  The experiment publishes the same corpus under
three filter policies and reports index size and which query classes
remain answerable — the trade-off the community designer is making.
"""

from __future__ import annotations

import pytest

from repro.communities.design_patterns import generate_pattern_corpus, pattern_schema_xsd
from repro.core.community import Community, CommunityDescriptor
from repro.core.resource import Resource
from repro.schema.instance import build_instance
from repro.schema.parser import parse_schema_text
from repro.storage.index import AttributeIndex
from repro.storage.query import Query

CORPUS_SIZE = 69

POLICIES = {
    "everything": None,                                        # every leaf field indexed
    "case-study filter": ("name", "category", "intent", "keywords",
                          "applicability", "consequences"),
    "name only": ("name",),
}


def build_index_for(policy_fields, corpus):
    schema = parse_schema_text(pattern_schema_xsd())
    community = Community(CommunityDescriptor(name="patterns"), pattern_schema_xsd(),
                          index_filter_fields=policy_fields)
    index = AttributeIndex()
    for number, record in enumerate(corpus):
        instance = build_instance(schema, record)
        resource = Resource("patterns", instance)
        metadata = community.extract_metadata(resource)
        if policy_fields is None:
            metadata = resource.metadata(schema, searchable_only=False)
        index.add("patterns", f"r{number}", metadata)
    return index


QUERY_CLASSES = {
    "by name": Query("patterns").where("name", "Observer"),
    "by intent": Query("patterns").where("intent", "families of related objects"),
    "by consequences": Query("patterns").where("consequences", "flexibility for indirection"),
    "by participants": Query("patterns").where("solution/participants", "ConcreteObserver"),
}


@pytest.fixture(scope="module")
def corpus():
    return generate_pattern_corpus(CORPUS_SIZE, seed=13)


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_bench_e5_indexing_cost(benchmark, policy, corpus):
    index = benchmark(build_index_for, POLICIES[policy], corpus)
    assert index.indexed_objects() == CORPUS_SIZE


def test_bench_e5_report(benchmark, corpus, report):
    indexes = benchmark.pedantic(
        lambda: {policy: build_index_for(fields, corpus) for policy, fields in POLICIES.items()},
        rounds=1, iterations=1,
    )
    rows = []
    answerable = {}
    sizes = {}
    for policy in POLICIES:
        index = indexes[policy]
        sizes[policy] = index.size_bytes()
        answered = {name for name, query in QUERY_CLASSES.items() if query.evaluate(index)}
        answerable[policy] = answered
        rows.append([policy, index.entry_count(), index.size_bytes(),
                     ", ".join(sorted(answered)) or "-"])
    report("E5  index-filter policies on the design-pattern community",
           ["policy", "index entries", "index bytes", "answerable query classes"], rows)

    # The paper's trade-off: the filter shrinks the index but narrows the
    # answerable queries; the case-study filter keeps every meta-data
    # query class except participant search while indexing far less than
    # the full object.
    assert sizes["name only"] < sizes["case-study filter"] < sizes["everything"]
    assert answerable["everything"] == set(QUERY_CLASSES)
    assert answerable["case-study filter"] == {"by name", "by intent", "by consequences"}
    assert answerable["name only"] == {"by name"}
