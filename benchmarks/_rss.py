"""Peak-RSS measurement helpers for the scale benchmarks.

``resource.getrusage`` reports the high-water resident set of the
calling process (``RUSAGE_SELF``) and of its *reaped* children
(``RUSAGE_CHILDREN``) — together they cover both execution modes of the
scale benchmark: sequential in-process runs and process-per-shard
fan-out through ``multiprocessing``.  On Linux ``ru_maxrss`` is in
kilobytes (macOS reports bytes; normalized here).

Peak RSS is a high-water mark, not a live gauge: a big run early in a
process dominates everything after it.  Workloads that need an
uncontaminated number run in a fresh child via :func:`measure_in_child`.
"""

from __future__ import annotations

import multiprocessing
import resource
import sys
from typing import Any, Callable

_KILO = 1 if sys.platform == "darwin" else 1024


def self_peak_rss_bytes() -> int:
    """High-water resident set of this process, in bytes.

    On Linux this reads ``VmHWM`` (the current address space's peak)
    rather than ``getrusage``'s ``ru_maxrss``: at ``execve`` the kernel
    folds the old address space's peak into the rusage accounting, so a
    child — even a *spawned* one, which is fork+exec underneath —
    inherits its parent's resident footprint as an ``ru_maxrss`` floor.
    A 100 MB pytest parent would drown every child workload smaller
    than itself.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _KILO


def children_peak_rss_bytes() -> int:
    """High-water resident set over all reaped children, in bytes.

    The kernel tracks the maximum over children individually, not their
    sum — exactly the "biggest worker" number the per-process memory
    comparison wants.  Valid only after the children have been waited
    on (a closed ``multiprocessing.Pool`` qualifies).  Caveat: each
    child's contribution is its ``ru_maxrss``, which inherits the
    parent's footprint across ``execve`` (see
    :func:`self_peak_rss_bytes`) — workers report their own ``VmHWM``
    through application channels instead when that matters.
    """
    return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * _KILO


def peak_rss_bytes() -> int:
    """High-water resident set of this process and any reaped child."""
    return max(self_peak_rss_bytes(), children_peak_rss_bytes())


def _child_entry(fn, args, kwargs, pipe) -> None:  # pragma: no cover - subprocess
    result = fn(*args, **kwargs)
    pipe.send((result, self_peak_rss_bytes()))
    pipe.close()


def measure_in_child(fn: Callable[..., Any], *args, **kwargs) -> tuple[Any, int]:
    """Run ``fn(*args, **kwargs)`` in a fresh process; return
    ``(result, peak_rss_bytes)`` of that process alone.

    The child is *spawned*, not forked: a forked child inherits the
    parent's resident pages, so its ``ru_maxrss`` floor is whatever the
    parent (say, an earlier benchmark in the same pytest session) had
    already touched — which would drown the very difference an A/B
    memory comparison measures.  A spawned interpreter starts from a
    clean footprint.  ``fn`` and its result must be picklable, and
    ``fn`` must be importable by qualified name in a fresh interpreter
    (a module-level function).
    """
    ctx = multiprocessing.get_context(
        "spawn" if "spawn" in multiprocessing.get_all_start_methods() else "fork")
    receiver, sender = ctx.Pipe(duplex=False)
    process = ctx.Process(target=_child_entry, args=(fn, args, kwargs, sender))
    process.start()
    sender.close()
    result, rss = receiver.recv()
    process.join()
    return result, rss
