"""E2 — community discovery scales like ordinary resource search.

The paper's claim (§I, §IV-A, §VI): by treating a community as a shared
resource, "the community discovery problem becomes just a specific case
of the more general problem of resource discovery."  The experiment
creates 10–200 communities, discovers them through root-community
searches and measures discovery cost and precision as the population
grows.
"""

from __future__ import annotations

import pytest

from repro.core.community import ROOT_COMMUNITY_ID
from repro.core.servent import Servent
from repro.network.centralized import CentralizedProtocol
from repro.schema.builder import SchemaBuilder

COMMUNITY_COUNTS = (10, 50, 100, 200)

_CATEGORIES = ("media", "science", "software", "teaching", "games")


def community_schema_for(index: int) -> str:
    builder = SchemaBuilder(f"item{index}")
    builder.field("title", searchable=True)
    builder.field("summary", searchable=True)
    return builder.to_xsd()


def build_world(community_count: int):
    network = CentralizedProtocol(seed=7)
    founder = Servent("founder", network)
    seeker = Servent("seeker", network)
    for index in range(community_count):
        category = _CATEGORIES[index % len(_CATEGORIES)]
        founder.create_community(
            f"Community {index:03d} ({category})",
            community_schema_for(index),
            description=f"A {category} sharing community number {index}",
            keywords=f"{category} shared resources group{index % 10}",
            category=category,
        )
    return network, founder, seeker


@pytest.mark.parametrize("community_count", COMMUNITY_COUNTS)
def test_bench_e2_discovery_scales(benchmark, community_count):
    network, founder, seeker = build_world(community_count)

    def discover():
        return seeker.search_communities("science")

    response = benchmark(discover)
    expected = sum(1 for index in range(community_count)
                   if _CATEGORIES[index % len(_CATEGORIES)] == "science")
    assert response.result_count == expected
    assert all(result.community_id == ROOT_COMMUNITY_ID for result in response.results)


def test_bench_e2_report(benchmark, report):
    worlds = benchmark.pedantic(
        lambda: {count: build_world(count) for count in COMMUNITY_COUNTS},
        rounds=1, iterations=1,
    )
    rows = []
    for community_count in COMMUNITY_COUNTS:
        network, founder, seeker = worlds[community_count]
        network.stats.reset()
        browse = seeker.search_communities(max_results=1000)
        narrowed = seeker.search_communities("science group6", max_results=1000)
        rows.append([
            community_count,
            browse.result_count,
            narrowed.result_count,
            network.stats.mean_messages_per_query(),
            f"{network.stats.mean_latency_ms():.1f}",
        ])
        assert browse.result_count == community_count
        assert 0 < narrowed.result_count < community_count
    report("E2  community discovery via root-community search",
           ["communities", "browse results", "narrowed results", "msgs/query", "latency ms"], rows)
    # Message cost per discovery query does not grow with the number of
    # communities (it is one query + one hit, like any other search).
    assert rows[0][3] == rows[-1][3]


def test_bench_e2_join_after_discovery(benchmark):
    """Joining a discovered community (download object + fetch schema) is a
    constant-cost operation regardless of how many communities exist."""
    network, founder, seeker = build_world(100)

    discovery = seeker.search_communities("group7")
    target = discovery.results[0]

    def join():
        community = seeker.join_community(target)
        seeker.registry.leave(community.community_id)
        return community

    community = benchmark(join)
    assert community.root_element_name.startswith("item")
