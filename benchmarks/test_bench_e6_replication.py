"""E6 — replication of popular objects increases availability.

The paper's §II observation about Napster: "by downloading popular
files, users increased the robustness of the network by increasing the
probability of finding a host sharing the file."  The experiment drives
a Zipf-distributed download workload, then measures per-rank replica
counts and the probability that an object can still be found after
random peer departures.
"""

from __future__ import annotations

import pytest

from repro.communities.mp3 import mp3_community
from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.centralized import CentralizedProtocol
from repro.storage.query import Query
from repro.workloads.popularity import ZipfDistribution

PEERS = 30
OBJECTS = 40
DOWNLOADS = 150


def build_world(seed=29):
    network = CentralizedProtocol(seed=seed)
    definition = mp3_community()
    servents = [Servent(f"peer-{index:02d}", network) for index in range(PEERS)]
    founder_app = definition.application_on(servents[0])
    applications = [founder_app]
    for servent in servents[1:]:
        found = [r for r in servent.search_communities("music").results
                 if r.title == definition.name]
        applications.append(Application(servent, servent.join_community(found[0])))
    corpus = definition.sample_corpus(OBJECTS, seed=seed)
    resource_ids = []
    for index, record in enumerate(corpus):
        resource_ids.append(applications[index % 5].publish(record).resource_id)
    return network, applications, resource_ids


def run_downloads(network, applications, resource_ids, *, downloads=DOWNLOADS, seed=31):
    zipf = ZipfDistribution(len(resource_ids), exponent=1.0, seed=seed)
    community_id = applications[0].community.community_id
    rng_targets = zipf.sample_many(downloads)
    for number, rank in enumerate(rng_targets):
        application = applications[number % len(applications)]
        wanted = resource_ids[rank]
        response = application.servent.network.search(
            application.servent.peer_id, Query(community_id), max_results=2000)
        hits = [result for result in response.results if result.resource_id == wanted]
        if not hits:
            continue
        hit = next((h for h in hits if h.provider_id != application.servent.peer_id), None)
        if hit is None:
            continue
        if application.servent.repository.documents.contains(wanted):
            continue
        application.download(hit)
    return zipf


def availability_after_departures(network, resource_ids, *, departures: int, seed=37):
    """Fraction of objects still reachable after ``departures`` random peers leave."""
    import random
    rng = random.Random(seed)
    online = [peer_id for peer_id in network.peers if network.peer(peer_id).online]
    for peer_id in rng.sample(online, min(departures, len(online) - 1)):
        network.set_online(peer_id, False)
    available = sum(1 for resource_id in resource_ids if network.provider_count(resource_id) > 0)
    for peer_id in network.peers:
        network.set_online(peer_id, True)
    return available / len(resource_ids)


@pytest.fixture(scope="module")
def world():
    network, applications, resource_ids = build_world()
    zipf = run_downloads(network, applications, resource_ids)
    return network, applications, resource_ids, zipf


def test_bench_e6_download_workload(benchmark):
    network, applications, resource_ids = build_world(seed=41)
    benchmark.pedantic(
        lambda: run_downloads(network, applications, resource_ids, downloads=25, seed=43),
        rounds=1, iterations=1,
    )


def test_bench_e6_report(benchmark, world, report):
    network, applications, resource_ids, zipf = world
    benchmark.pedantic(
        lambda: [network.provider_count(resource_id) for resource_id in resource_ids],
        rounds=1, iterations=1,
    )
    replica_rows = []
    for rank in (0, 1, 4, 9, 19, 39):
        if rank >= len(resource_ids):
            continue
        replica_rows.append([rank, f"{zipf.probability(rank):.3f}",
                             network.provider_count(resource_ids[rank])])
    report("E6  replicas per popularity rank after the download workload",
           ["popularity rank", "request probability", "providers"], replica_rows)

    popular_replicas = network.provider_count(resource_ids[0])
    unpopular_replicas = network.provider_count(resource_ids[-1])
    assert popular_replicas > unpopular_replicas
    assert popular_replicas >= 3

    availability_rows = []
    for departures in (5, 10, 15, 20):
        fraction = availability_after_departures(network, resource_ids, departures=departures)
        top = sum(
            1 for rank in range(5) if network.provider_count(resource_ids[rank]) > 0
        ) / 5
        availability_rows.append([departures, f"{fraction:.2f}", f"{top:.2f}"])
    report("E6  availability after random departures",
           ["departed peers", "all objects reachable", "top-5 popular reachable"],
           availability_rows)
    # Popular objects survive departures better than the corpus average.
    last_all = float(availability_rows[-1][1])
    last_top = float(availability_rows[-1][2])
    assert last_top >= last_all
