"""F3 — Fig. 3: the community bootstrap schema.

Checks that the verbatim Fig. 3 schema drives the whole bootstrap
machinery (parse, validate community objects, generate the community
create/search forms) and measures those operations.
"""

from __future__ import annotations

from repro.core.community import (
    COMMUNITY_SCHEMA_XSD,
    CommunityDescriptor,
    KNOWN_PROTOCOLS,
    community_schema,
    root_community,
)
from repro.core.stylesheets import StylesheetSet
from repro.schema.parser import parse_schema_text
from repro.schema.validator import validate

FIG3_FIELDS = [
    "name", "description", "keywords", "category", "security",
    "protocol", "schema", "displaystyle", "createstyle", "searchstyle",
]


def test_bench_figure3_schema_parse(benchmark, report):
    schema = benchmark(parse_schema_text, COMMUNITY_SCHEMA_XSD)
    assert [info.path for info in schema.fields()] == FIG3_FIELDS
    assert schema.field_by_path("protocol").enumeration == list(KNOWN_PROTOCOLS)
    report("F3  Fig. 3 community schema",
           ["field", "type", "enumerated values"],
           [[info.path, info.type_name, ", ".join(info.enumeration) or "-"]
            for info in schema.fields()])


def test_bench_figure3_community_object_validation(benchmark):
    schema = community_schema()
    descriptor = CommunityDescriptor(
        name="MP3 community", description="songs", keywords="music mp3",
        category="media", protocol="Gnutella", schema_uri="up2p:mp3/schema.xsd",
    )
    document = descriptor.to_xml()
    report_outcome = benchmark(validate, schema, document)
    assert report_outcome.is_valid


def test_bench_figure3_bootstrap_forms(benchmark, report):
    """The root community's own Create/Search forms are generated from the
    Fig. 3 schema by the same default stylesheets (the metaclass move)."""
    styles = StylesheetSet()

    def generate():
        return (styles.render_create_form(COMMUNITY_SCHEMA_XSD),
                styles.render_search_form(COMMUNITY_SCHEMA_XSD))

    create_html, search_html = benchmark(generate)
    for field in FIG3_FIELDS:
        assert f'name="{field}"' in create_html
    assert "up2p-search" in search_html
    root = root_community()
    report("F3  root community bootstrap",
           ["property", "value"],
           [["community id", root.community_id],
            ["root element", root.root_element_name],
            ["searchable fields", len(root.searchable_field_paths())],
            ["create form chars", len(create_html)],
            ["search form chars", len(search_html)]])
