"""P1 — the kernel→index hot path: wall-clock throughput trajectory.

Unlike the E-series benchmarks (which reproduce the paper's *virtual*
cost metrics), this suite measures what the repository had no record of:
real wall-clock throughput of the evaluation hot path — messages/sec
and queries/sec for flood-heavy and mixed workloads across all four
protocols — and writes the result to ``BENCH_perf.json`` at the repo
root so the perf trajectory is tracked commit over commit (CI fails on
a >20% queries/sec regression against the committed file; see
``benchmarks/check_perf_regression.py``).

It also pins the two properties the compiled-plan fast path must keep:

* *identity*: with compilation disabled the same scenario produces the
  same results, hit counts, message counts and byte counts;
* *speed*: compiled evaluation beats naive evaluation, and the whole
  flood scenario is at least as fast with compilation on.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.storage.plan import compile_query
from repro.workloads.scenario import ScenarioConfig, build_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_PATH = REPO_ROOT / "BENCH_perf.json"

PROTOCOLS = ("centralized", "gnutella", "super-peer", "rendezvous")

#: the E3 concurrent-query scenario, scaled to 200 peers (the headline
#: hot-path measurement; BASE mirrors test_bench_e3_protocol_comparison)
E3_200 = dict(peers=200, members=24, publishers=12, corpus_size=90, queries=16,
              community="design-patterns", ttl=6, seed=11,
              concurrency=8, query_interarrival_ms=20.0)

#: mixed search/download workload (the paper's download-and-replicate load)
MIXED = dict(peers=120, members=24, publishers=12, corpus_size=90, queries=24,
             community="design-patterns", ttl=6, seed=11,
             concurrency=8, query_interarrival_ms=20.0,
             retrieve_fraction=0.3, popularity_skew=1.0)

#: collected by the tests below; the final test writes it to disk
RECORD: dict = {
    "suite": "p1_hot_path",
    "schema_version": 1,
    "protocols": {},
    # Pre-compiled-plan reference, measured once (same machine, clean
    # worktree at the commit below, best of 5): the e3 concurrent
    # gnutella scenario at 200 peers took 0.157 s wall — compare with
    # e3_concurrent_200.wall_s_compiled for the fast-path speedup.
    "baseline_reference": {
        "commit": "3c79856",
        "e3_concurrent_200_wall_s_gnutella": 0.157,
    },
}


def timed_run(config: dict, *, repeats: int = 3, mixed: bool = False) -> dict:
    """Best-of-``repeats`` wall-clock measurement of one scenario's
    query phase (build time excluded)."""
    best = None
    for _ in range(repeats):
        scenario = build_scenario(ScenarioConfig(**config))
        start = time.perf_counter()
        if mixed:
            outcome = scenario.run_mixed_workload(max_results=200)
            operations = len(outcome.responses) + len(outcome.retrieves)
        else:
            counts = scenario.run_queries(max_results=200)
            operations = len(counts)
        wall = time.perf_counter() - start
        stats = scenario.network.stats
        sample = {
            "wall_s": round(wall, 6),
            "messages": stats.total_messages,
            "bytes": stats.total_bytes,
            "operations": operations,
            "messages_per_s": round(stats.total_messages / wall, 1),
            "queries_per_s": round(operations / wall, 1),
        }
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


def scenario_signature(config: dict) -> dict:
    """Everything the identity contract compares between two runs."""
    scenario = build_scenario(ScenarioConfig(**config))
    counts = scenario.run_queries(max_results=200)
    stats = scenario.network.stats
    return {
        "counts": counts,
        "messages": stats.total_messages,
        "bytes": stats.total_bytes,
        "by_type": dict(stats.messages_by_type),
        "per_query": [(r.results, r.messages, r.bytes, r.peers_probed,
                       round(r.latency_ms, 6)) for r in stats.queries],
    }


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_p1_flood_throughput(benchmark, protocol):
    """Wall-clock throughput of the concurrent query phase at 200 peers."""
    config = dict(protocol=protocol, **E3_200)
    sample = benchmark.pedantic(lambda: timed_run(config), rounds=1, iterations=1)
    RECORD["protocols"].setdefault(protocol, {})["flood"] = sample
    assert sample["operations"] == E3_200["queries"]
    assert sample["messages"] > 0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_p1_mixed_throughput(benchmark, protocol):
    """Wall-clock throughput with downloads interleaved mid-flood."""
    config = dict(protocol=protocol, **MIXED)
    sample = benchmark.pedantic(lambda: timed_run(config, mixed=True),
                                rounds=1, iterations=1)
    RECORD["protocols"].setdefault(protocol, {})["mixed"] = sample
    assert sample["operations"] == MIXED["queries"]


def test_bench_p1_compiled_identical_to_naive(benchmark):
    """Contract: identical search results, hit counts, message counts
    and byte counts with and without the compiled fast path — the e3
    concurrent scenario at 200 peers, fixed seed."""
    config = dict(protocol="gnutella", **E3_200)
    compiled = benchmark.pedantic(
        lambda: scenario_signature({**config, "compile_queries": True}),
        rounds=1, iterations=1)
    naive = scenario_signature({**config, "compile_queries": False})
    assert compiled == naive
    RECORD["e3_concurrent_200_contract"] = {
        "messages": compiled["messages"],
        "bytes": compiled["bytes"],
        "results_total": sum(compiled["counts"]),
    }


def test_bench_p1_compiled_vs_naive_wall(benchmark):
    """The compiled path must not be slower than the naive path on the
    same build (10% noise allowance), and the ratio is recorded."""
    config = dict(protocol="gnutella", **E3_200)
    compiled = benchmark.pedantic(
        lambda: timed_run({**config, "compile_queries": True}),
        rounds=1, iterations=1)
    naive = timed_run({**config, "compile_queries": False})
    # The two variants are measured in separate blocks, so a sustained
    # machine stall during one block reads as a spurious slowdown of
    # that variant alone; when the comparison inverts, interleave rescue
    # rounds and keep each variant's best wall clock.
    for _ in range(2):
        if compiled["wall_s"] <= naive["wall_s"] * 1.10:
            break
        compiled = min(compiled, timed_run({**config, "compile_queries": True}),
                       key=lambda sample: sample["wall_s"])
        naive = min(naive, timed_run({**config, "compile_queries": False}),
                    key=lambda sample: sample["wall_s"])
    ratio = naive["wall_s"] / compiled["wall_s"]
    RECORD["e3_concurrent_200"] = {
        "wall_s_compiled": compiled["wall_s"],
        "wall_s_naive": naive["wall_s"],
        "messages": compiled["messages"],
        "messages_per_s": compiled["messages_per_s"],
        "queries_per_s": compiled["queries_per_s"],
        "speedup_compiled_vs_naive": round(ratio, 3),
    }
    assert compiled["wall_s"] <= naive["wall_s"] * 1.10


def test_bench_p1_evaluate_microbench(benchmark):
    """Compile-once/evaluate-everywhere beats per-visit re-evaluation.

    This isolates what a flood actually repeats per peer: evaluating
    one query against many local indices.  Gate is conservative (1.3×)
    to stay robust on noisy CI hardware; typical is >2×.
    """
    scenario = build_scenario(ScenarioConfig(
        protocol="gnutella", peers=60, members=24, publishers=12, corpus_size=90,
        queries=30, community="design-patterns", ttl=6, seed=11))
    indices = [servent.repository.index for servent in scenario.servents[:24]]
    queries = list(scenario.workload)

    def naive_pass():
        for query in queries:
            for index in indices:
                query.evaluate(index)

    def compiled_pass():
        for query in queries:
            plan = compile_query(query)
            for index in indices:
                plan.evaluate(index)

    def measure(function, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(10):
                function()
            best = min(best, time.perf_counter() - start)
        return best

    naive_s = measure(naive_pass)
    compiled_s = benchmark.pedantic(lambda: measure(compiled_pass),
                                    rounds=1, iterations=1)
    # Sanity: the two passes agree on a sample query/index.
    sample = queries[0]
    assert compile_query(sample).evaluate(indices[0]) == sample.evaluate(indices[0])
    speedup = naive_s / compiled_s
    RECORD["evaluate_microbench"] = {
        "naive_s": round(naive_s, 6),
        "compiled_s": round(compiled_s, 6),
        "speedup": round(speedup, 3),
    }
    assert speedup >= 1.3


def measure_calibration() -> float:
    """Events/sec of a synthetic kernel-shaped loop on this machine.

    Recorded alongside the throughput samples so the CI regression
    checker can normalize away hardware speed: a slower runner scores
    proportionally lower on both the calibration and the scenarios, and
    the *normalized* queries/sec stays comparable across machines.
    """
    from repro.network.simulator import NetworkSimulator

    def tick() -> None:
        return None

    best = 0.0
    for _ in range(3):
        simulator = NetworkSimulator(seed=0)
        count = 200_000
        start = time.perf_counter()
        for index in range(count):
            simulator.post(float(index % 50), tick)
        simulator.run(max_events=count + 1)
        wall = time.perf_counter() - start
        best = max(best, count / wall)
    return round(best, 1)


def test_bench_p1_write_record(benchmark, report, request):
    """Write ``BENCH_perf.json`` — the perf trajectory record — and
    print the throughput table.

    Skipped under ``--benchmark-disable`` (the tier-1/fast-CI mode):
    timings from that mode are not meaningful and rewriting the
    committed record on every plain test run would dirty working trees.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(RECORD["protocols"]) == set(PROTOCOLS), \
        "run the whole module so every protocol is measured"
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("benchmark timing disabled; not rewriting BENCH_perf.json")
    RECORD["calibration_events_per_s"] = measure_calibration()
    from conftest import write_perf_record
    write_perf_record(PERF_PATH, RECORD)
    rows = []
    for protocol in PROTOCOLS:
        for workload in ("flood", "mixed"):
            sample = RECORD["protocols"][protocol][workload]
            rows.append([protocol, workload, f"{sample['wall_s']:.3f}",
                         f"{sample['messages_per_s']:.0f}",
                         f"{sample['queries_per_s']:.0f}"])
    report("P1  wall-clock hot-path throughput (written to BENCH_perf.json)",
           ["protocol", "workload", "wall s", "msgs/s", "queries/s"], rows)
    assert PERF_PATH.exists()
