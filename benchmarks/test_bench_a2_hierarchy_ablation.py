"""A2 (ablation) — how much hierarchy does the overlay need?

Two knobs control the two-tier organisations: the super-peer ratio of
the FastTrack-style network and the walk limit of the JXTA-style
rendezvous network.  The ablation sweeps both and reports the message
cost / recall frontier, locating the regime where a hierarchy beats both
the flat flood and the single central server on robustness grounds while
staying within a small factor of the central server's cost.
"""

from __future__ import annotations

import pytest

from repro.network.rendezvous import RendezvousProtocol
from repro.network.superpeer import SuperPeerProtocol
from repro.storage.query import Query
from repro.xmlkit.parser import parse

PEERS = 60
RATIOS = (0.05, 0.1, 0.2, 0.4)
WALK_LIMITS = (1, 2, 4, None)


def populate(network) -> int:
    for index in range(PEERS):
        network.create_peer(f"peer-{index:03d}")
    if isinstance(network, SuperPeerProtocol):
        network.elect_super_peers()
    else:
        network.elect_rendezvous()
    published = 0
    for index in range(0, PEERS, 4):
        peer = network.peer(f"peer-{index:03d}")
        document = parse(f"<mp3><title>Blue Train {index}</title><artist>Coltrane</artist></mp3>").root
        metadata = {"title": [f"Blue Train {index}"], "artist": ["Coltrane"]}
        result = peer.repository.publish("mp3s", document, metadata)
        network.publish(peer.peer_id, "mp3s", result.resource_id, metadata)
        published += 1
    return published


def measure(network, published: int) -> dict[str, float]:
    network.stats.reset()
    origins = [f"peer-{index:03d}" for index in (1, 11, 21, 31, 41)]
    recall_total = 0.0
    for origin in origins:
        response = network.search(origin, Query.keyword("mp3s", "coltrane"), max_results=500)
        remote_expected = published - (1 if network.peer(origin).repository.documents else 0)
        found = len({result.resource_id for result in response.results})
        recall_total += found / max(1, remote_expected)
    return {
        "recall": recall_total / len(origins),
        "msgs_per_query": network.stats.mean_messages_per_query(),
    }


@pytest.fixture(scope="module")
def superpeer_sweep():
    outcomes = {}
    for ratio in RATIOS:
        network = SuperPeerProtocol(seed=3, super_peer_ratio=ratio)
        published = populate(network)
        outcomes[ratio] = measure(network, published)
        outcomes[ratio]["super_peers"] = len(network.super_peer_ids())
    return outcomes


@pytest.fixture(scope="module")
def rendezvous_sweep():
    outcomes = {}
    for limit in WALK_LIMITS:
        network = RendezvousProtocol(seed=3, rendezvous_ratio=0.2, walk_limit=limit)
        published = populate(network)
        outcomes[limit] = measure(network, published)
    return outcomes


@pytest.mark.parametrize("ratio", RATIOS)
def test_bench_a2_superpeer_ratio(benchmark, ratio):
    network = SuperPeerProtocol(seed=3, super_peer_ratio=ratio)
    published = populate(network)
    benchmark.pedantic(lambda: measure(network, published), rounds=1, iterations=1)


def test_bench_a2_report(benchmark, superpeer_sweep, rendezvous_sweep, report):
    benchmark.pedantic(lambda: (dict(superpeer_sweep), dict(rendezvous_sweep)),
                       rounds=1, iterations=1)
    report("A2  super-peer ratio sweep (FastTrack-style, 60 peers)",
           ["ratio", "super-peers", "recall", "msgs/query"],
           [[ratio, values["super_peers"], f"{values['recall']:.2f}",
             f"{values['msgs_per_query']:.1f}"]
            for ratio, values in superpeer_sweep.items()])
    report("A2  rendezvous walk-limit sweep (JXTA-style, 60 peers, ratio 0.2)",
           ["walk limit", "recall", "msgs/query"],
           [[limit if limit is not None else "full ring", f"{values['recall']:.2f}",
             f"{values['msgs_per_query']:.1f}"]
            for limit, values in rendezvous_sweep.items()])

    # Recall is full whenever the hierarchy covers all advertisements:
    # every super-peer ratio achieves it, but message cost rises with the
    # number of super-peers that must be contacted.
    costs = [superpeer_sweep[ratio]["msgs_per_query"] for ratio in RATIOS]
    assert costs[0] < costs[-1]
    assert all(values["recall"] >= 0.99 for values in superpeer_sweep.values())
    # Truncating the rendezvous walk trades recall for messages.
    assert rendezvous_sweep[1]["recall"] < rendezvous_sweep[None]["recall"]
    assert rendezvous_sweep[1]["msgs_per_query"] < rendezvous_sweep[None]["msgs_per_query"]
    assert rendezvous_sweep[None]["recall"] >= 0.99
