"""E4 — TTL sweep on the Gnutella-style network.

The search horizon of a flooding network is bounded by the query TTL.
The sweep measures recall, messages and probed peers as the TTL grows
from 1 to 7 — the knob a U-P2P deployment on Gnutella would have to
tune, and the reason the paper lists protocol/routing attributes in the
community schema for future use.
"""

from __future__ import annotations

import pytest

from repro.workloads.scenario import ScenarioConfig, build_scenario

TTLS = (1, 2, 3, 5, 7)
BASE = dict(protocol="gnutella", peers=80, members=30, publishers=15,
            corpus_size=80, queries=25, community="mp3", degree=3, seed=23)


def run_ttl(ttl: int):
    scenario = build_scenario(ScenarioConfig(ttl=ttl, **BASE))
    counts = scenario.run_queries(max_results=300)
    stats = scenario.network.stats
    recall_samples = [min(found, expected) / expected
                      for found, expected in zip(counts, scenario.workload.expected_matches,
                                                 strict=True)
                      if expected]
    return {
        "recall": sum(recall_samples) / len(recall_samples) if recall_samples else 0.0,
        "msgs_per_query": stats.mean_messages_per_query(),
        "peers_probed": sum(record.peers_probed for record in stats.queries) / len(stats.queries),
        "latency_ms": stats.mean_latency_ms(),
    }


@pytest.fixture(scope="module")
def sweep():
    return {ttl: run_ttl(ttl) for ttl in TTLS}


@pytest.mark.parametrize("ttl", (2, 7))
def test_bench_e4_query_phase(benchmark, ttl):
    scenario = build_scenario(ScenarioConfig(ttl=ttl, **{**BASE, "queries": 8}))
    benchmark(lambda: scenario.run_queries(max_results=300))


def test_bench_e4_report(benchmark, sweep, report):
    benchmark.pedantic(lambda: dict(sweep), rounds=1, iterations=1)
    rows = [[ttl,
             f"{values['recall']:.2f}",
             f"{values['msgs_per_query']:.1f}",
             f"{values['peers_probed']:.1f}",
             f"{values['latency_ms']:.0f}"]
            for ttl, values in sweep.items()]
    report("E4  Gnutella TTL sweep (80 peers, power-law overlay, degree 3)",
           ["TTL", "recall", "msgs/query", "peers probed", "latency ms"], rows)

    recalls = [sweep[ttl]["recall"] for ttl in TTLS]
    messages = [sweep[ttl]["msgs_per_query"] for ttl in TTLS]
    probed = [sweep[ttl]["peers_probed"] for ttl in TTLS]
    # Horizon and cost both grow with TTL (allowing tiny numerical jitter),
    # and the extremes are clearly separated.
    assert probed[0] < probed[-1]
    assert messages[0] < messages[-1]
    assert recalls[0] <= recalls[-1]
    assert recalls[-1] > 0.8
    assert recalls[0] < 0.7
