"""P2 — population scale-out: msgs/s and peak RSS vs population × shards.

The ROADMAP's north star is populations orders of magnitude beyond the
~200 peers the E-series measures.  This suite charts the scale grid —
population (200 / 2k / 10k) × shard count (1 / 2 / 4) — through the
process-per-shard island runner (:mod:`repro.workloads.scale`),
recording wall-clock message throughput and peak resident memory per
cell, plus two supporting samples:

* the *windowed determinism contract* cell: a 200-peer scenario run on
  the in-process ``ShardedSimulator`` with ``shards=4`` must reproduce
  the ``shards=1`` counters bit-for-bit (the cheap always-on echo of
  the full contract suite);
* the *index layout A/B*: peak RSS of a worker that builds thousands of
  per-peer ``AttributeIndex`` instances under the lean (numeric-id
  array) layout versus the historical set layout.

Results merge into ``BENCH_perf.json`` under the ``scale`` key;
``check_perf_regression.py`` guards the per-cell ``messages_per_s``
(cells absent from one side warn instead of failing, so capped CI runs
coexist with the committed full grid).

Grid capping: ``P2_MAX_POPULATION`` bounds the populations measured;
without it, benchmark runs stop at 2k (CI pins that explicitly) and
plain (``--benchmark-disable``) test runs at 200, so the tier-1 suite
stays fast.  The committed record's 10k rows are produced locally with
the full grid::

    P2_MAX_POPULATION=10000 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_p2_scale.py -q
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.storage.index import AttributeIndex
from repro.workloads.scale import run_population
from repro.workloads.scenario import ScenarioConfig, build_scenario

from _rss import measure_in_child

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_PATH = REPO_ROOT / "BENCH_perf.json"

POPULATIONS = (200, 2_000, 10_000)
SHARD_COUNTS = (1, 2, 4)
GRID = [(population, shards) for population in POPULATIONS
        for shards in SHARD_COUNTS]

#: merged into BENCH_perf.json under the "scale" key by the write test
RECORD: dict = {"grid": {}}


def max_population(request) -> int:
    env = os.environ.get("P2_MAX_POPULATION")
    if env:
        return int(env)
    # Without explicit opt-in, plain test runs only touch the smallest
    # population and benchmark runs stop at 2k: the 10k rows cost
    # minutes and are refreshed deliberately (see the module docstring),
    # while the per-cell merge below keeps their committed values.
    if request.config.getoption("benchmark_disable", False):
        return 200
    return 2_000


def cell_label(population: int, shards: int) -> str:
    return f"gnutella/p{population}/s{shards}"


@pytest.mark.parametrize("population,shards", GRID,
                         ids=[cell_label(*cell) for cell in GRID])
def test_bench_p2_grid_cell(population, shards, request):
    """One grid cell: run the population, record throughput and RSS."""
    if population > max_population(request):
        pytest.skip(f"population {population} beyond P2_MAX_POPULATION")
    report = run_population(population, shards=shards, protocol="gnutella",
                            seed=11, queries_per_island=8)
    assert report.results > 0, "a scale run must produce search hits"
    assert report.messages > 0
    assert len(report.islands) == shards
    RECORD["grid"][cell_label(population, shards)] = {
        "population": population,
        "shards": shards,
        "parallel": report.parallel,
        "messages": report.messages,
        "bytes": report.bytes,
        "queries": report.queries,
        "results": report.results,
        "wall_s": round(report.wall_s, 3),
        "messages_per_s": round(report.messages_per_s, 1),
        "peak_rss_mb": round(report.peak_rss_bytes / (1 << 20), 1),
    }


def test_bench_p2_windowed_contract():
    """The in-process sharded simulator reproduces shards=1 exactly
    (the full matrix lives in tests/network/test_contract.py; this cell
    keeps a sample in the perf record)."""

    def signature(shards):
        scenario = build_scenario(ScenarioConfig(
            protocol="gnutella", peers=200, members=24, publishers=12,
            corpus_size=90, queries=16, ttl=6, seed=11, concurrency=8,
            query_interarrival_ms=20.0, shards=shards))
        counts = scenario.run_queries(max_results=50)
        stats = scenario.network.stats
        return {"counts": counts,
                "messages": dict(stats.messages_by_type),
                "bytes": dict(stats.bytes_by_type)}

    single, sharded = signature(1), signature(4)
    assert single == sharded
    RECORD["windowed_contract"] = {
        "peers": 200, "shards_compared": [1, 4],
        "identical": True,
        "messages": sum(single["messages"].values()),
    }


def _build_indexes(layout: str, indexes: int, objects_per_index: int) -> int:
    """Worker: the per-peer index population of a large network."""
    built = []
    for index_number in range(indexes):
        index = AttributeIndex(layout=layout)
        for object_number in range(objects_per_index):
            # Realistic sharing: corpus objects replicated across peers
            # produce identical ids/values on many indexes.
            resource_id = f"res-{(index_number * 7 + object_number) % 600:05d}"
            index.add("patterns", resource_id, {
                "name": [f"Pattern {object_number % 40}"],
                "intent": [f"decouple part {object_number % 12} from whole "
                           f"{index_number % 9}"],
                "category": ["behavioral" if object_number % 2 else "creational"],
            })
        built.append(index)
    return sum(index.entry_count() for index in built)


def test_bench_p2_index_layout_rss(request):
    """The lean posting layout must hold a 10k-peer population's worth
    of per-peer indexes in measurably less memory than the set layout."""
    indexes = 10_000 if max_population(request) >= 10_000 else 1_000
    entries_set, rss_set = measure_in_child(_build_indexes, "set", indexes, 20)
    entries_lean, rss_lean = measure_in_child(_build_indexes, "lean", indexes, 20)
    assert entries_set == entries_lean
    # Peak RSS only ever flakes upward (an allocator or kernel artifact
    # making extra pages resident), never below the true footprint, so
    # when a transient inverts the comparison re-measure and keep the
    # minimum per layout.
    for _ in range(2):
        if rss_lean < rss_set:
            break
        _, again_set = measure_in_child(_build_indexes, "set", indexes, 20)
        _, again_lean = measure_in_child(_build_indexes, "lean", indexes, 20)
        rss_set, rss_lean = min(rss_set, again_set), min(rss_lean, again_lean)
    assert rss_lean < rss_set, (
        f"lean layout should be smaller: {rss_lean} vs {rss_set} bytes")
    RECORD["index_rss"] = {
        "indexes": indexes,
        "objects_per_index": 20,
        "set_mb": round(rss_set / (1 << 20), 1),
        "lean_mb": round(rss_lean / (1 << 20), 1),
        "ratio": round(rss_lean / rss_set, 3),
    }


def test_bench_p2_write_record(report, request):
    """Merge the scale samples into ``BENCH_perf.json``.

    Cells skipped by the population cap keep their committed values —
    the merge is per-cell, never wholesale — so a capped run refreshes
    what it measured and leaves the 10k rows alone.
    """
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("benchmark timing disabled; not rewriting BENCH_perf.json")
    import json

    from conftest import write_perf_record
    existing = {}
    if PERF_PATH.exists():
        existing = json.loads(PERF_PATH.read_text(encoding="utf-8")).get("scale", {})
    merged_grid = {**existing.get("grid", {}), **RECORD["grid"]}
    scale = {**existing, **RECORD, "grid": merged_grid}
    write_perf_record(PERF_PATH, {"scale": scale})
    rows = [[label,
             sample["population"], sample["shards"],
             f"{sample['wall_s']:.2f}", f"{sample['messages_per_s']:.0f}",
             f"{sample['peak_rss_mb']:.1f}"]
            for label, sample in sorted(merged_grid.items())]
    report("P2  scale grid (written to BENCH_perf.json)",
           ["cell", "population", "shards", "wall s", "msgs/s", "peak RSS MB"],
           rows)
    assert PERF_PATH.exists()
