"""A3 (ablation) — churn rate vs. search success on each organisation.

The robustness claim behind the paper's Napster observation only holds
if the system keeps answering queries while peers come and go.  The
ablation drives the same MP3 workload under increasing churn (shorter
sessions) over the centralized, flooding and super-peer organisations
and reports search success, quantifying how each organisation degrades.
"""

from __future__ import annotations

import pytest

from repro.communities.mp3 import mp3_community
from repro.core.application import Application
from repro.core.servent import Servent
from repro.network.centralized import CentralizedProtocol
from repro.network.churn import ChurnModel
from repro.network.gnutella import GnutellaProtocol
from repro.network.superpeer import SuperPeerProtocol

PEERS = 40
OBJECTS = 40
QUERIES = 30
#: availability = session / (session + absence); absence fixed at 2 s of
#: virtual time, session swept downwards.
SESSIONS_MS = (18_000.0, 6_000.0, 2_000.0)
ABSENCE_MS = 2_000.0

PROTOCOLS = {
    "centralized": lambda: CentralizedProtocol(seed=51),
    "gnutella": lambda: GnutellaProtocol(seed=51, degree=4, default_ttl=7),
    "super-peer": lambda: SuperPeerProtocol(seed=51, super_peer_ratio=0.2),
}


def build_world(factory):
    network = factory()
    definition = mp3_community()
    servents = [Servent(f"peer-{index:02d}", network) for index in range(PEERS)]
    founder = definition.application_on(servents[0])
    applications = [founder]
    for servent in servents[1:12]:
        found = [r for r in servent.search_communities("music").results
                 if r.title == definition.name]
        applications.append(Application(servent, servent.join_community(found[0])))
    if isinstance(network, GnutellaProtocol):
        network.build_overlay()
    if isinstance(network, SuperPeerProtocol):
        network.elect_super_peers()
    corpus = definition.sample_corpus(OBJECTS, seed=51)
    for index, record in enumerate(corpus):
        applications[index % len(applications)].publish(record)
    return network, applications, corpus


def run_under_churn(factory, session_ms: float) -> dict[str, float]:
    network, applications, corpus = build_world(factory)
    # Searchers (the first 12 peers) stay up; the rest churn.
    churn = ChurnModel(network, mean_session_ms=session_ms, mean_absence_ms=ABSENCE_MS, seed=5)
    churn.start([f"peer-{index:02d}" for index in range(12, PEERS)])
    network.stats.reset()
    answered = 0
    for number in range(QUERIES):
        network.simulator.run(until_ms=network.simulator.now + 500)
        searcher = applications[number % len(applications)]
        record = corpus[number % len(corpus)]
        response = searcher.search({"artist": str(record["artist"])}, max_results=100)
        answered += 1 if response.result_count > 0 else 0
    return {
        "success": answered / QUERIES,
        "availability": churn.observed_availability(),
        "msgs_per_query": network.stats.mean_messages_per_query(),
    }


def test_bench_a3_churn_strikes_inflight_queries(benchmark):
    """Churn events interleave with eight concurrent in-flight queries
    on the shared event queue; every query still quiesces, and the
    whole run is deterministic for the fixed seed."""
    from repro.workloads.scenario import ScenarioConfig, build_scenario

    def run_once():
        scenario = build_scenario(ScenarioConfig(
            protocol="gnutella", community="mp3", peers=PEERS, members=12,
            publishers=8, corpus_size=OBJECTS, queries=24, ttl=7, seed=51,
            concurrency=8, query_interarrival_ms=15.0,
            churn_session_ms=SESSIONS_MS[1], churn_absence_ms=ABSENCE_MS))
        counts = scenario.run_queries(max_results=100)
        stats = scenario.network.stats
        departures = sum(1 for event in scenario.churn.events if not event.online)
        return counts, stats.total_messages, stats.total_bytes, departures

    first = benchmark.pedantic(run_once, rounds=1, iterations=1)
    second = run_once()
    assert first == second
    counts, messages, _, departures = first
    assert len(counts) == 24
    assert messages > 0
    # Churn genuinely struck during the query phase, not around it.
    assert departures > 0
    answered = sum(1 for count in counts if count > 0)
    assert answered >= 12


@pytest.fixture(scope="module")
def churn_grid():
    grid = {}
    for protocol, factory in PROTOCOLS.items():
        for session_ms in SESSIONS_MS:
            grid[(protocol, session_ms)] = run_under_churn(factory, session_ms)
    return grid


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_bench_a3_one_cell(benchmark, protocol):
    benchmark.pedantic(lambda: run_under_churn(PROTOCOLS[protocol], SESSIONS_MS[1]),
                       rounds=1, iterations=1)


def test_bench_a3_report(benchmark, churn_grid, report):
    benchmark.pedantic(lambda: dict(churn_grid), rounds=1, iterations=1)
    rows = []
    for (protocol, session_ms), values in churn_grid.items():
        expected_availability = session_ms / (session_ms + ABSENCE_MS)
        rows.append([protocol, f"{session_ms / 1000:.0f}s", f"{expected_availability:.2f}",
                     f"{values['availability']:.2f}", f"{values['success']:.2f}",
                     f"{values['msgs_per_query']:.1f}"])
    report("A3  search success under churn (40 peers, 30 queries)",
           ["protocol", "mean session", "expected avail.", "observed avail.",
            "search success", "msgs/query"], rows)

    # Under light churn every organisation answers nearly every query;
    # heavy churn hurts, but queries keep being answered (> half) because
    # publishers among the stable searchers still hold replicas.
    for protocol in PROTOCOLS:
        light = churn_grid[(protocol, SESSIONS_MS[0])]["success"]
        heavy = churn_grid[(protocol, SESSIONS_MS[-1])]["success"]
        assert light >= 0.85
        assert heavy >= 0.5
        assert light >= heavy - 0.05
