"""F1 — Fig. 1: the shared-object model.

The schema plus the stylesheet set instantiate the Create form, Search
form, View page and the indexed attributes of a shared object.  The
benchmark measures the cost of each generated artefact for every
bundled community and checks that all four artefacts are produced from
the schema alone.
"""

from __future__ import annotations

import pytest

from repro.communities import ALL_COMMUNITIES
from repro.core.stylesheets import StylesheetSet
from repro.schema.instance import InstanceSynthesizer
from repro.schema.parser import parse_schema_text
from repro.xmlkit.serializer import serialize

COMMUNITIES = sorted(ALL_COMMUNITIES)


def _artefacts_for(definition):
    """Generate all four Fig. 1 artefacts for one community."""
    styles = definition.stylesheets or StylesheetSet()
    schema = parse_schema_text(definition.schema_xsd)
    instance = InstanceSynthesizer(schema, seed=1).synthesize()
    object_xml = serialize(instance, xml_declaration=False)
    return {
        "create_form": styles.render_create_form(definition.schema_xsd),
        "search_form": styles.render_search_form(definition.schema_xsd),
        "view_page": styles.render_view(object_xml),
        "indexed": styles.extract_indexed_attributes(object_xml),
    }


@pytest.mark.parametrize("community_key", COMMUNITIES)
def test_bench_figure1_artefact_generation(benchmark, community_key, report):
    definition = ALL_COMMUNITIES[community_key]()
    artefacts = benchmark(_artefacts_for, definition)
    assert "<form" in artefacts["create_form"]
    assert "<form" in artefacts["search_form"]
    assert "<table" in artefacts["view_page"] or "<h1>" in artefacts["view_page"]
    assert artefacts["indexed"], "the index filter must extract at least one attribute"
    report(
        f"F1  Fig.1 artefacts generated from the {definition.name!r} schema",
        ["artefact", "size (chars)"],
        [["create form", len(artefacts["create_form"])],
         ["search form", len(artefacts["search_form"])],
         ["view page", len(artefacts["view_page"])],
         ["indexed attributes", sum(len(v) for v in artefacts["indexed"].values())]],
    )


def test_bench_figure1_schema_is_the_only_input(benchmark, report):
    """The same default stylesheets serve every community: no per-community
    code is needed, only the schema (the paper's central claim)."""
    styles = StylesheetSet()
    benchmark.pedantic(
        lambda: [styles.render_create_form(ALL_COMMUNITIES[key]().schema_xsd) for key in COMMUNITIES],
        rounds=1, iterations=1,
    )
    rows = []
    for key in COMMUNITIES:
        definition = ALL_COMMUNITIES[key]()
        create_html = styles.render_create_form(definition.schema_xsd)
        schema = parse_schema_text(definition.schema_xsd)
        field_count = len(schema.fields())
        input_count = create_html.count("<input")
        rows.append([definition.name, field_count, input_count])
        assert input_count >= field_count  # one input per leaf field plus submit
    report("F1  one stylesheet set, every community", ["community", "schema fields", "form inputs"], rows)
