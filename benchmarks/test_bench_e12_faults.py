"""E12 — fault injection: reliable delivery, partition survival, failover.

The seed simulator's links are perfect, so none of the paper's four
organisations ever paid for the faults a deployment actually sees.
This experiment injects deterministic faults (uniform message loss,
scheduled partitions, crash-stop provider failures) and measures what
the reliable-delivery hardening buys per protocol:

* **loss sweep** — a mixed search+download workload under 2% and 10%
  uniform loss, hardened (ack/retry envelope + chunked downloads with
  stall watchdog) versus legacy fire-and-forget.  The headline is
  download survival: a legacy download dies with its dropped request
  or response, a hardened one re-requests and completes.
* **partition outage** — a scheduled 2-second cut between the pure
  searchers and the rest of the network (providers, relays, hubs),
  healing mid-workload.  Deterministic: no RNG draws, so the hardened
  and legacy cells face the *identical* outage.  Hardened retries with
  backoff ride out the cut; legacy downloads inside the window are
  lost for good.
* **crash failover** — a provider crash-stopping between chunks of an
  in-flight download; the requester's stall watchdog fails over to the
  next-ranked replica and completes, where the legacy path (or a
  network with no second replica) strands the transfer.

Gnutella's query plane is best-effort by design (flood redundancy is
its loss recovery), so its hardening applies to downloads only — the
record shows that honestly rather than forcing an envelope onto the
flood.  The record lands in ``BENCH_perf.json`` under ``faults``.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.network.errors import TransferError
from repro.network.faults import FaultPlan, PartitionWindow
from repro.workloads.scenario import ScenarioConfig, build_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_PATH = REPO_ROOT / "BENCH_perf.json"

PROTOCOLS = ("centralized", "gnutella", "super-peer", "rendezvous")

#: 0.0 is the clean-network reference cell: a few workload downloads
#: fail deterministically even without faults (the drawn requester is
#: the object's only holder), so survival is judged against it
LOSS_RATES = (0.0, 0.02, 0.10)
FAULT_SEED = 17

BASE = dict(
    peers=30,
    members=12,
    publishers=6,
    corpus_size=40,
    queries=48,
    community="design-patterns",
    ttl=6,
    seed=29,
    concurrency=6,
    query_interarrival_ms=20.0,
    live_membership=True,
    retrieve_fraction=0.35,
    popularity_skew=0.8,
)

#: knobs of the hardened cells: ack/retry envelope on control traffic
#: and chunked downloads with a stall watchdog
HARDENED = dict(
    reliable_delivery=True,
    retry_timeout_ms=120.0,
    # ~150ms transmission per 16KB chunk at the modelled bandwidth: the
    # stall watchdog must comfortably outlast the inter-chunk cadence or
    # healthy streams read as stalled.
    download_chunk_bytes=16 * 1024,
    download_stall_timeout_ms=800.0,
)

#: the outage cell needs a backoff span and attempt budget that can
#: ride out the full 2-second cut
OUTAGE_HARDENED = dict(
    reliable_delivery=True,
    retry_timeout_ms=300.0,
    retry_max_attempts=6,
    download_chunk_bytes=16 * 1024,
    download_stall_timeout_ms=800.0,
)

OUTAGE_WINDOW = (500.0, 2_500.0)

RECORD: dict = {
    "suite": "e12_faults",
    "schema_version": 1,
    "loss_rates": list(LOSS_RATES),
    "fault_seed": FAULT_SEED,
    "outage_window_ms": list(OUTAGE_WINDOW),
    "protocols": {},
    "failover": {},
}


def run_loss_cell(protocol: str, loss_rate: float, hardened: bool,
                  *, repeats: int = 3) -> dict:
    """One loss-sweep cell: mixed workload under uniform message loss.

    The simulation is deterministic, so every repeat produces the same
    counters; only the wall clock varies.  Best-of-``repeats`` keeps a
    one-off slow (or fast) sample from landing in the committed record
    as if it were the trajectory — these cells run in tens of
    milliseconds, where a single scheduler stall reads as a 5x swing."""
    best = None
    for _ in range(repeats):
        sample = _run_loss_cell_once(protocol, loss_rate, hardened)
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


def _run_loss_cell_once(protocol: str, loss_rate: float, hardened: bool) -> dict:
    knobs = dict(HARDENED) if hardened else {}
    plan = FaultPlan(seed=FAULT_SEED, loss_rate=loss_rate) if loss_rate else None
    scenario = build_scenario(ScenarioConfig(
        protocol=protocol, faults=plan, **knobs, **BASE))
    start = time.perf_counter()
    outcome = scenario.run_mixed_workload(max_results=100)
    wall = time.perf_counter() - start
    stats = scenario.network.stats
    counts = outcome.result_counts
    return {
        "wall_s": round(wall, 6),
        "hardened": hardened,
        "loss_rate": loss_rate,
        "messages": stats.total_messages,
        "bytes": stats.total_bytes,
        "hit_rate": round(sum(1 for count in counts if count > 0)
                          / max(1, len(counts)), 4),
        "downloads_attempted": len(outcome.retrieves),
        "downloads_completed": outcome.downloads_completed,
        "download_failures": outcome.retrieve_failures,
        **stats.fault_summary(),
        "queries_per_s": round(len(counts) / wall, 1) if counts else 0.0,
    }


def run_outage_cell(protocol: str, hardened: bool, *, repeats: int = 3) -> dict:
    """One partition-outage cell: a deterministic mid-workload cut
    between the pure searchers and everyone else (providers, relays and
    the organisations' virtual hubs), healing before the workload ends.
    Best-of-``repeats`` wall clock, same counters every repeat."""
    best = None
    for _ in range(repeats):
        sample = _run_outage_cell_once(protocol, hardened)
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


def _run_outage_cell_once(protocol: str, hardened: bool) -> dict:
    knobs = dict(OUTAGE_HARDENED) if hardened else {}
    config = ScenarioConfig(protocol=protocol, **knobs, **BASE)
    scenario = build_scenario(config)
    searchers = tuple(servent.peer_id
                      for servent in scenario.servents[config.publishers:config.members])
    others = tuple(sorted(
        set(scenario.network.peers) - set(searchers)
        | set(scenario.network.kernel.virtual_nodes)))
    plan = FaultPlan(partitions=(
        PartitionWindow(OUTAGE_WINDOW[0], OUTAGE_WINDOW[1], searchers, others),))
    scenario.network.install_faults(plan)
    start = time.perf_counter()
    outcome = scenario.run_mixed_workload(max_results=100)
    wall = time.perf_counter() - start
    stats = scenario.network.stats
    counts = outcome.result_counts
    return {
        "wall_s": round(wall, 6),
        "hardened": hardened,
        "messages": stats.total_messages,
        "hit_rate": round(sum(1 for count in counts if count > 0)
                          / max(1, len(counts)), 4),
        "downloads_attempted": len(outcome.retrieves),
        "downloads_completed": outcome.downloads_completed,
        "download_failures": outcome.retrieve_failures,
        **stats.fault_summary(),
        "queries_per_s": round(len(counts) / wall, 1) if counts else 0.0,
    }


def run_failover_demo() -> dict:
    """Crash a provider mid-chunked-download, with and without a second
    replica: failover completes the transfer the crash would strand."""
    def build():
        scenario = build_scenario(ScenarioConfig(
            protocol="centralized", peers=12, members=6, publishers=2,
            corpus_size=10, queries=4, community="design-patterns", seed=5,
            reliable_delivery=True, download_chunk_bytes=16 * 1024,
            download_stall_timeout_ms=400.0))
        network = scenario.network
        resource_id = scenario.resource_ids[0]
        return network, resource_id, network.locate_provider(resource_id)

    # Treatment: a replica exists (an earlier download made one), so
    # the stall watchdog fails over and the download completes.
    network, resource_id, provider = build()
    reference = network.retrieve("peer-0004", provider, resource_id)
    crash_at_ms = reference.latency_ms * 0.5
    network.simulator.post(crash_at_ms, network._fault_crash, provider)
    recovered = network.retrieve("peer-0005", provider, resource_id)
    treatment = {
        "completed": True,
        "provider_after_failover": recovered.provider_id,
        "clean_latency_ms": round(reference.latency_ms, 3),
        "recovered_latency_ms": round(recovered.latency_ms, 3),
        "clean_bytes": reference.transfer_bytes,
        "recovered_bytes": recovered.transfer_bytes,
        "failovers": network.stats.failovers,
    }

    # Control: identically-built network, identical crash point, but no
    # replica exists -> the transfer is stranded and times out.
    network, resource_id, provider = build()
    stranded = False
    network.simulator.post(crash_at_ms, network._fault_crash, provider)
    try:
        network.retrieve("peer-0005", provider, resource_id)
    except TransferError:
        stranded = True
    control = {"completed": not stranded,
               "timeouts": network.stats.timeouts,
               "failovers": network.stats.failovers}
    return {"control_no_replica": control, "treatment_with_replica": treatment}


def sweep_protocol(protocol: str, *, repeats: int = 3) -> dict:
    cells = []
    for loss_rate in LOSS_RATES:
        for hardened in (False, True):
            cells.append(run_loss_cell(protocol, loss_rate, hardened,
                                       repeats=repeats))
    outage = {
        "legacy": run_outage_cell(protocol, False, repeats=repeats),
        "hardened": run_outage_cell(protocol, True, repeats=repeats),
    }
    return {"cells": cells, "outage": outage}


def _timing_repeats(request) -> int:
    """Best-of-3 when wall time lands in the record; a single run under
    ``--benchmark-disable`` (tier-1/fast-CI mode), where the record is
    never written and only the deterministic counters matter."""
    return 1 if request.config.getoption("benchmark_disable", False) else 3


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_e12_fault_grid(benchmark, protocol, request):
    """Loss sweep + partition outage for one protocol, timed as one."""
    repeats = _timing_repeats(request)
    samples = {}

    def measure():
        samples["sweep"] = sweep_protocol(protocol, repeats=repeats)
        return samples["sweep"]

    benchmark.pedantic(measure, rounds=1, iterations=1)
    sweep = samples["sweep"]
    RECORD["protocols"][protocol] = sweep

    by_key = {(cell["loss_rate"], cell["hardened"]): cell for cell in sweep["cells"]}
    for loss_rate in LOSS_RATES:
        legacy, hardened = by_key[(loss_rate, False)], by_key[(loss_rate, True)]
        # The acceptance claim: under loss, the hardened stack recovers
        # at least the legacy stack's recall — downloads are the traffic
        # the envelope protects on every protocol (gnutella's query
        # plane stays best-effort by design).
        assert hardened["downloads_completed"] >= legacy["downloads_completed"], (
            f"{protocol} @ {loss_rate:.0%} loss: hardening must not lose downloads")
        if loss_rate > 0.0:
            assert hardened["dropped"] > 0, (
                f"{protocol} @ {loss_rate:.0%} loss: the plan injected nothing")
        if loss_rate >= 0.10:
            assert hardened["retries"] + hardened["failovers"] > 0, (
                f"{protocol} @ {loss_rate:.0%} loss: recovery never engaged")
    clean = by_key[(0.0, True)]
    at_ten = by_key[(0.10, True)]
    assert at_ten["downloads_completed"] == clean["downloads_completed"], (
        f"{protocol}: every download a clean network completes must also "
        f"survive 10% loss under the hardened stack")

    outage_legacy, outage_hardened = sweep["outage"]["legacy"], sweep["outage"]["hardened"]
    assert outage_hardened["partition_dropped"] > 0
    assert outage_legacy["partition_dropped"] > 0
    assert outage_hardened["downloads_completed"] >= outage_legacy["downloads_completed"]
    assert outage_hardened["downloads_completed"] == clean["downloads_completed"], (
        f"{protocol}: hardened downloads must ride out the partition")


def test_bench_e12_failover_demo(benchmark):
    samples = {}
    benchmark.pedantic(lambda: samples.update(run_failover_demo()),
                       rounds=1, iterations=1)
    RECORD["failover"] = samples
    assert samples["control_no_replica"]["completed"] is False
    assert samples["control_no_replica"]["failovers"] == 0
    treatment = samples["treatment_with_replica"]
    assert treatment["completed"] is True
    assert treatment["failovers"] == 1
    assert treatment["recovered_latency_ms"] > treatment["clean_latency_ms"]


def test_bench_e12_write_record(benchmark, report, request):
    """Merge the fault record into ``BENCH_perf.json`` and print it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(RECORD["protocols"]) == set(PROTOCOLS), (
        "run the whole module so every protocol is measured")
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("benchmark timing disabled; not rewriting BENCH_perf.json")
    from conftest import write_perf_record

    write_perf_record(PERF_PATH, {"faults": RECORD})
    rows = []
    for protocol in PROTOCOLS:
        sweep = RECORD["protocols"][protocol]
        for cell in sweep["cells"]:
            rows.append([
                protocol,
                f"{cell['loss_rate']:.0%}",
                "hardened" if cell["hardened"] else "legacy",
                f"{cell['hit_rate']:.2f}",
                f"{cell['downloads_completed']}/{cell['downloads_attempted']}",
                int(cell["dropped"]),
                int(cell["retries"]),
                int(cell["failovers"]),
                int(cell["timeouts"]),
            ])
        for label in ("legacy", "hardened"):
            cell = sweep["outage"][label]
            rows.append([
                protocol, "cut 2s", label,
                f"{cell['hit_rate']:.2f}",
                f"{cell['downloads_completed']}/{cell['downloads_attempted']}",
                int(cell["partition_dropped"]),
                int(cell["retries"]),
                int(cell["failovers"]),
                int(cell["timeouts"]),
            ])
    report(
        "E12  fault injection: loss sweep + partition outage "
        "(30 peers, mixed search+download workload)",
        ["protocol", "faults", "stack", "hit rate", "downloads",
         "dropped", "retries", "failovers", "timeouts"],
        rows,
    )
    assert PERF_PATH.exists()
