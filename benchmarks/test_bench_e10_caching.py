"""E10 — query-result caching: hit ratio, messages saved, staleness paid.

Every network organisation re-pays its full discovery cost when a
popular query is re-issued.  With ``result_caching`` on, finished
result sets are cached where each organisation concentrates traffic —
the central server, flooding peers along the query path, super-peers
for their leaf fan-in, rendezvous edges — and repeats are answered
from the cache within TTL / version / membership-invalidation bounds.

This experiment sweeps cache size x TTL x churn per protocol over a
repeat-heavy workload (``query_repeat_alpha``) and records, per cell:

* **hit ratio** — cached answers / cache lookups;
* **messages saved** — total messages versus a caching-off run of the
  same seed and churn (the discovery cost the cache avoided);
* **stale served per hit** — cached results served whose provider
  was already offline (counted per result, so a single hit can
  contribute several), the bounded staleness the TTL pays for
  coverage.

Churn strikes everyone but two searchers — publishers included — so
cached entries genuinely go stale; membership stays in the instant
(off) mode so the message delta is purely the cache's doing.  The
record lands in ``BENCH_perf.json`` under the ``caching`` key.

At this workload's scale the capacity dimension binds only at the
centralized server (the one site that sees all 48 queries); per-peer
sites (gnutella origins, entry supers, rendezvous edges) hold too few
distinct keys for eviction to occur, so their capacity-8 and
capacity-256 cells are identical — itself a placement finding the
record reports honestly rather than a knob left unexercised.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.network.membership import PopulationModel
from repro.workloads.scenario import ScenarioConfig, build_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_PATH = REPO_ROOT / "BENCH_perf.json"

PROTOCOLS = ("centralized", "gnutella", "super-peer", "rendezvous")

CACHE_SIZES = (8, 256)
CACHE_TTLS_MS = (400.0, 4_000.0)
#: mean online-session length per churn level (None = static population)
CHURN_LEVELS = {"static": None, "churny": 1_200.0}

BASE = dict(
    peers=30,
    members=12,
    publishers=6,
    corpus_size=40,
    queries=48,
    community="design-patterns",
    ttl=6,
    seed=29,
    concurrency=6,
    query_interarrival_ms=20.0,
    query_repeat_alpha=0.6,
)

RECORD: dict = {
    "suite": "e10_caching",
    "schema_version": 1,
    "query_repeat_alpha": BASE["query_repeat_alpha"],
    "churn_levels_session_ms": dict(CHURN_LEVELS),
    "protocols": {},
}


def run_cell(
    protocol: str, session_ms, *, caching: bool, capacity: int = 128, ttl_ms: float = 2_000.0
) -> dict:
    """One grid cell: a repeat-heavy workload, churn on everyone but two
    searchers, caching per the cell's knobs."""
    scenario = build_scenario(
        ScenarioConfig(
            protocol=protocol,
            result_caching=caching,
            cache_capacity=capacity,
            cache_ttl_ms=ttl_ms,
            **BASE,
        )
    )
    if session_ms is not None:
        population = PopulationModel(
            scenario.network,
            mean_session_ms=session_ms,
            mean_absence_ms=session_ms * 0.6,
            seed=5,
        )
        population.start([servent.peer_id for servent in scenario.servents[2:]])
    start = time.perf_counter()
    counts = scenario.run_queries(max_results=100)
    wall = time.perf_counter() - start
    stats = scenario.network.stats
    return {
        "wall_s": round(wall, 6),
        "messages": stats.total_messages,
        "bytes": stats.total_bytes,
        "hit_rate": round(sum(1 for count in counts if count > 0) / len(counts), 4),
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "cache_hit_ratio": round(stats.cache_hit_ratio(), 4),
        "stale_served": stats.cache_stale_served,
        # Mean stale results per cache hit (a hit can serve several
        # offline-provider results, so this can exceed 1.0).
        "stale_per_hit": round(stats.cache_stale_served / max(1, stats.cache_hits), 4),
        "queries_per_s": round(len(counts) / wall, 1),
    }


def sweep_protocol(protocol: str) -> dict:
    """The full cache-size x TTL x churn grid for one protocol, plus a
    caching-off baseline per churn level for the messages-saved delta."""
    baselines = {
        level: run_cell(protocol, session_ms, caching=False)
        for level, session_ms in CHURN_LEVELS.items()
    }
    cells = []
    for level, session_ms in CHURN_LEVELS.items():
        for capacity in CACHE_SIZES:
            for ttl_ms in CACHE_TTLS_MS:
                sample = run_cell(
                    protocol, session_ms, caching=True, capacity=capacity, ttl_ms=ttl_ms
                )
                sample.update(
                    churn=level,
                    cache_capacity=capacity,
                    cache_ttl_ms=ttl_ms,
                    messages_saved=baselines[level]["messages"] - sample["messages"],
                )
                cells.append(sample)
    return {"baseline": baselines, "cells": cells}


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_e10_caching_grid(benchmark, protocol):
    """Cache knob sweep for one protocol; the headline cell is timed."""
    samples = {}

    def measure_headline():
        samples["sweep"] = sweep_protocol(protocol)
        return samples["sweep"]

    benchmark.pedantic(measure_headline, rounds=1, iterations=1)
    sweep = samples["sweep"]
    RECORD["protocols"][protocol] = sweep
    for cell in sweep["cells"]:
        assert cell["cache_hits"] > 0, f"{protocol}: a repeat-heavy workload must hit the cache"
        assert cell["hit_rate"] > 0.0, f"{protocol}: every query failed"
    best = max(cell["messages_saved"] for cell in sweep["cells"])
    if protocol in ("gnutella", "super-peer"):
        assert best > 0, f"{protocol}: caching must save broadcast traffic on repeats"


def test_bench_e10_write_record(benchmark, report, request):
    """Merge the caching record into ``BENCH_perf.json`` (preserving all
    other suites' keys) and print the sweep table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(RECORD["protocols"]) == set(PROTOCOLS), (
        "run the whole module so every protocol is measured"
    )
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("benchmark timing disabled; not rewriting BENCH_perf.json")
    from conftest import write_perf_record

    write_perf_record(PERF_PATH, {"caching": RECORD})
    rows = []
    for protocol in PROTOCOLS:
        for cell in RECORD["protocols"][protocol]["cells"]:
            rows.append(
                [
                    protocol,
                    cell["churn"],
                    cell["cache_capacity"],
                    int(cell["cache_ttl_ms"]),
                    f"{cell['cache_hit_ratio']:.3f}",
                    cell["messages_saved"],
                    f"{cell['stale_per_hit']:.3f}",
                    f"{cell['hit_rate']:.2f}",
                ]
            )
    report(
        "E10  query-result caching: hit ratio / messages saved / staleness "
        "(30 peers, repeat-heavy workload)",
        ["protocol", "churn", "size", "ttl ms", "hit ratio", "msgs saved", "stale/hit", "success"],
        rows,
    )
    assert PERF_PATH.exists()
