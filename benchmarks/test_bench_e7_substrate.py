"""E7 — substrate micro-benchmarks: XML, XML Schema, XSLT, index, query.

The generative architecture pays for schema parsing, validation and
XSLT execution on the object path.  These micro-benchmarks quantify each
substrate operation on the bundled communities so the higher-level
experiment numbers can be interpreted.
"""

from __future__ import annotations

import pytest

from repro.communities.design_patterns import generate_pattern_corpus, pattern_schema_xsd
from repro.core.community import COMMUNITY_SCHEMA_XSD
from repro.core.stylesheets import StylesheetSet
from repro.schema.instance import build_instance
from repro.schema.parser import parse_schema_text
from repro.schema.validator import validate
from repro.storage.index import AttributeIndex
from repro.storage.query import Query
from repro.xmlkit.parser import parse
from repro.xmlkit.serializer import pretty, serialize
from repro.xmlkit.xpath import XPath


@pytest.fixture(scope="module")
def pattern_objects():
    schema = parse_schema_text(pattern_schema_xsd())
    corpus = generate_pattern_corpus(40, seed=3)
    instances = [build_instance(schema, record) for record in corpus]
    texts = [serialize(instance, xml_declaration=False) for instance in instances]
    return schema, instances, texts


def test_bench_e7_xml_parse(benchmark, pattern_objects):
    _, _, texts = pattern_objects
    documents = benchmark(lambda: [parse(text) for text in texts])
    assert len(documents) == len(texts)


def test_bench_e7_xml_serialize(benchmark, pattern_objects):
    _, instances, _ = pattern_objects
    outputs = benchmark(lambda: [pretty(instance) for instance in instances])
    assert all(output.startswith("<?xml") for output in outputs)


def test_bench_e7_schema_parse(benchmark):
    schema = benchmark(parse_schema_text, pattern_schema_xsd())
    assert schema.root_element().name == "pattern"


def test_bench_e7_fig3_schema_parse(benchmark):
    schema = benchmark(parse_schema_text, COMMUNITY_SCHEMA_XSD)
    assert schema.root_element().name == "community"


def test_bench_e7_validation(benchmark, pattern_objects):
    schema, instances, _ = pattern_objects
    reports = benchmark(lambda: [validate(schema, instance) for instance in instances])
    assert all(report.is_valid for report in reports)


def test_bench_e7_xpath(benchmark, pattern_objects):
    _, instances, _ = pattern_objects
    expression = XPath("solution/participants")
    counts = benchmark(lambda: [len(expression.select(instance)) for instance in instances])
    assert all(count >= 1 for count in counts)


def test_bench_e7_view_transform(benchmark, pattern_objects):
    _, _, texts = pattern_objects
    styles = StylesheetSet()
    pages = benchmark(lambda: [styles.render_view(text) for text in texts[:10]])
    assert all("<table" in page for page in pages)


def test_bench_e7_index_build_and_query(benchmark, pattern_objects, report):
    schema, instances, _ = pattern_objects
    metadata_list = []
    from repro.core.resource import Resource
    for instance in instances:
        resource = Resource("patterns", instance)
        metadata_list.append(resource.metadata(schema))

    def build_and_query():
        index = AttributeIndex()
        for number, metadata in enumerate(metadata_list):
            index.add("patterns", f"r{number}", metadata)
        hits = Query.keyword("patterns", "factory").evaluate(index)
        return index, hits

    index, hits = benchmark(build_and_query)
    assert hits
    report("E7  substrate inventory on the pattern corpus (40 objects)",
           ["metric", "value"],
           [["indexed objects", index.indexed_objects()],
            ["index entries", index.entry_count()],
            ["index bytes", index.size_bytes()],
            ["'factory' keyword hits", len(hits)]])
