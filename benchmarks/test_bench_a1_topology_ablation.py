"""A1 (ablation) — overlay topology of the flooding network.

DESIGN.md calls for ablations of the design choices; the first is the
Gnutella overlay shape.  The default is the power-law overlay measured
for the real Gnutella network of 2001/2002; the ablation compares it to
random, ring and star overlays under the same TTL and workload, showing
why the default matters for the E4 numbers.
"""

from __future__ import annotations

import pytest

from repro.network.gnutella import GnutellaProtocol
from repro.storage.query import Query
from repro.xmlkit.parser import parse

TOPOLOGIES = ("power-law", "random", "ring", "star")
PEERS = 60
TTL = 4


def build(topology_kind: str) -> GnutellaProtocol:
    network = GnutellaProtocol(seed=9, degree=4, default_ttl=TTL, topology_kind=topology_kind)
    for index in range(PEERS):
        network.create_peer(f"peer-{index:03d}")
    network.build_overlay()
    for index in range(0, PEERS, 5):
        peer = network.peer(f"peer-{index:03d}")
        document = parse(f"<pattern><name>Observer {index}</name></pattern>").root
        metadata = {"name": [f"Observer {index}"]}
        result = peer.repository.publish("patterns", document, metadata)
        network.publish(peer.peer_id, "patterns", result.resource_id, metadata)
    return network


def measure(network: GnutellaProtocol) -> dict[str, float]:
    network.stats.reset()
    origins = [f"peer-{index:03d}" for index in (1, 7, 13, 29, 41)]
    results = 0
    for origin in origins:
        response = network.search(origin, Query.keyword("patterns", "observer"), max_results=500)
        results += response.result_count
    return {
        "results": results / len(origins),
        "msgs_per_query": network.stats.mean_messages_per_query(),
        "reach": sum(network.reachable_peers(origin, ttl=TTL) for origin in origins) / len(origins),
        "path_length": network.topology.average_path_length(),
    }


@pytest.fixture(scope="module")
def ablation():
    return {kind: measure(build(kind)) for kind in TOPOLOGIES}


@pytest.mark.parametrize("kind", TOPOLOGIES)
def test_bench_a1_topology(benchmark, kind):
    network = build(kind)
    benchmark.pedantic(
        lambda: network.search("peer-001", Query.keyword("patterns", "observer"), max_results=500),
        rounds=3, iterations=1,
    )


def test_bench_a1_report(benchmark, ablation, report):
    benchmark.pedantic(lambda: dict(ablation), rounds=1, iterations=1)
    rows = [[kind,
             f"{values['reach']:.1f}",
             f"{values['results']:.1f}",
             f"{values['msgs_per_query']:.1f}",
             f"{values['path_length']:.2f}"]
            for kind, values in ablation.items()]
    report(f"A1  overlay ablation for flooding search (TTL={TTL}, {PEERS} peers)",
           ["topology", "peers reached", "results/query", "msgs/query", "avg path length"], rows)

    # The short-diameter overlays (power-law hubs, star) reach far more of
    # the network within the TTL than the ring does.
    assert ablation["power-law"]["reach"] > ablation["ring"]["reach"] * 2
    assert ablation["star"]["reach"] >= ablation["ring"]["reach"]
    # Reaching more peers yields more results under the same TTL.
    assert ablation["power-law"]["results"] >= ablation["ring"]["results"]
    # And path length explains it: the ring has by far the longest paths.
    assert ablation["ring"]["path_length"] > ablation["power-law"]["path_length"]
