"""P3 — process-parallel shard execution: throughput and per-worker RSS.

P2 scales *out* by splitting the population into disconnected islands;
P3 keeps **one connected topology** and splits its event queue across
worker processes (:mod:`repro.engine.parallel`), so the measured runs
are bit-identical to ``shards=1`` — every cell here is an exactness
echo as well as a perf sample.

The grid charts population × shard count × execution mode (serial
drive loop vs. ``workers=2`` barrier lockstep), recording wall-clock
message throughput and each worker's peak resident set.  The record
lands in ``BENCH_perf.json`` under the ``parallel`` key and its
``messages_per_s`` samples are guarded by ``check_perf_regression.py``.

Hardware honesty: the record carries ``cores_available``.  On a
single-core host the parallel cells pay the full barrier/serialization
cost with zero overlap to show for it, so their throughput reads
*below* serial — that is the honest number, not a bug; the speedup
column only means anything when ``cores_available >= workers``.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from repro.engine.parallel import run_parallel_scenario
from repro.workloads.scenario import ScenarioConfig, build_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_PATH = REPO_ROOT / "BENCH_perf.json"

POPULATIONS = (30, 60)
SHARD_COUNTS = (2, 4)
WORKERS = 2

#: merged into BENCH_perf.json under the "parallel" key by the write test
RECORD: dict = {"grid": {}}


def scenario_config(population: int, shards: int, *, parallel: bool) -> ScenarioConfig:
    return ScenarioConfig(
        protocol="gnutella", peers=population,
        members=max(8, population // 3), publishers=max(4, population // 5),
        corpus_size=population + 10, queries=16, ttl=6, seed=23,
        concurrency=8, query_interarrival_ms=20.0,
        shards=shards, parallel=parallel)


def signature(stats, counts) -> dict:
    return {
        "counts": counts,
        "messages": dict(stats.messages_by_type),
        "bytes": dict(stats.bytes_by_type),
        "latencies": [round(query.latency_ms, 6) for query in stats.queries],
    }


def cell_label(population: int, shards: int, mode: str) -> str:
    return f"gnutella/p{population}/s{shards}/{mode}"


@pytest.mark.parametrize(
    "population,shards",
    [(population, shards) for population in POPULATIONS
     for shards in SHARD_COUNTS],
    ids=[f"p{population}-s{shards}" for population in POPULATIONS
         for shards in SHARD_COUNTS])
def test_bench_p3_cell(population, shards):
    """One grid cell: serial and parallel runs of the same scenario,
    asserted bit-identical, both timed."""
    scenario = build_scenario(scenario_config(population, 1, parallel=False))
    started = time.perf_counter()
    counts = scenario.run_queries(max_results=100)
    serial_wall = time.perf_counter() - started
    serial_sig = signature(scenario.network.stats, counts)
    serial_messages = scenario.network.stats.total_messages

    report = run_parallel_scenario(
        scenario_config(population, shards, parallel=True),
        workers=WORKERS, max_results=100)
    parallel_sig = signature(report.stats, report.counts)
    assert parallel_sig == serial_sig, (
        f"parallel run diverged from serial at p{population}/s{shards}")
    assert report.windows > 0 and report.cross_shard_messages > 0

    RECORD["grid"][cell_label(population, 1, "serial")] = {
        "population": population, "shards": 1, "mode": "serial",
        "messages": serial_messages,
        "wall_s": round(serial_wall, 3),
        "messages_per_s": round(serial_messages / serial_wall, 1),
    }
    RECORD["grid"][cell_label(population, shards, f"workers{WORKERS}")] = {
        "population": population, "shards": shards,
        "mode": f"workers{WORKERS}",
        "messages": report.stats.total_messages,
        "wall_s": round(report.query_wall_s, 3),
        "messages_per_s": round(
            report.stats.total_messages / report.query_wall_s, 1),
        "windows": report.windows,
        "barriers": report.barriers,
        "cross_shard_messages": report.cross_shard_messages,
        "bytes_shipped": report.bytes_shipped,
        "worker_peak_rss_mb": [round(rss / (1 << 20), 1)
                               for rss in report.worker_peak_rss_bytes],
    }


def test_bench_p3_write_record(report, request):
    """Merge the parallel-execution samples into ``BENCH_perf.json``."""
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("benchmark timing disabled; not rewriting BENCH_perf.json")
    import json

    from conftest import write_perf_record
    existing = {}
    if PERF_PATH.exists():
        existing = json.loads(
            PERF_PATH.read_text(encoding="utf-8")).get("parallel", {})
    merged_grid = {**existing.get("grid", {}), **RECORD["grid"]}
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    parallel = {**existing, **RECORD, "grid": merged_grid,
                "workers": WORKERS, "cores_available": cores}
    write_perf_record(PERF_PATH, {"parallel": parallel})
    rows = [[label, sample["population"], sample["shards"], sample["mode"],
             f"{sample['wall_s']:.2f}", f"{sample['messages_per_s']:.0f}",
             "/".join(str(rss) for rss in sample.get("worker_peak_rss_mb", []))
             or "-"]
            for label, sample in sorted(merged_grid.items())]
    report(f"P3  parallel shard execution ({cores} core(s) available)",
           ["cell", "population", "shards", "mode", "wall s", "msgs/s",
            "worker RSS MB"],
           rows)
    assert PERF_PATH.exists()
