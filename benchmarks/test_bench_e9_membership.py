"""E9 — membership maintenance: control overhead vs. availability.

The paper's robustness comparison between network organisations is only
honest when peers pay to come and go.  With ``live_membership`` on,
joins, heartbeats, lease renewals and re-registrations are real kernel
traffic, and a departed peer's state decays only when repair traffic
notices.  This experiment sweeps churn rate × protocol and records, per
cell:

* **control bytes / fraction** — what the organisation spends on
  maintenance (its standing overhead);
* **hit rate** — queries answered with at least one result while the
  population moves (availability);
* **staleness window** — how long stale registrations/ads/leaf records
  outlive their owner's departure before repair purges them.

A headline membership-on flood throughput sample (gnutella, moderate
churn) is appended to ``BENCH_perf.json`` under the ``membership`` key
so CI regression-guards the live-mode hot path alongside the plain
queries/sec trajectory (``benchmarks/check_perf_regression.py``).
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.network.membership import PopulationModel
from repro.workloads.scenario import ScenarioConfig, build_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_PATH = REPO_ROOT / "BENCH_perf.json"

PROTOCOLS = ("centralized", "gnutella", "super-peer", "rendezvous")

#: mean online-session length per churn level (absence scales with it)
CHURN_RATES = {"harsh": 700.0, "moderate": 1_500.0, "gentle": 3_000.0}

BASE = dict(peers=40, members=16, publishers=8, corpus_size=60, queries=24,
            community="design-patterns", ttl=6, seed=17, concurrency=6,
            query_interarrival_ms=20.0, live_membership=True,
            maintenance_interval_ms=250.0, rendezvous_lease_ms=1_000.0)

#: steady-state epilogue after the query phase, so maintenance keeps
#: ticking (and staleness keeps resolving) beyond the last query
EPILOGUE_MS = 4_000.0

RECORD: dict = {
    "suite": "e9_membership",
    "schema_version": 1,
    "churn_rates_session_ms": dict(CHURN_RATES),
    "protocols": {},
}


def run_membership(protocol: str, session_ms: float, *, repeats: int = 3) -> dict:
    """One grid cell: live-membership workload under churn that strikes
    everyone but two searchers — publishers included, so each protocol's
    stale state (registrations, ads, leaf records) genuinely decays.

    The simulation is deterministic, so every repeat produces the same
    counters; only the wall clock varies.  Best-of-``repeats`` keeps a
    one-off slow (or fast) sample from landing in the committed record
    as if it were the trajectory."""
    best = None
    for _ in range(repeats):
        sample = _run_membership_once(protocol, session_ms)
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


def _run_membership_once(protocol: str, session_ms: float) -> dict:
    scenario = build_scenario(ScenarioConfig(protocol=protocol, **BASE))
    population = PopulationModel(scenario.network, mean_session_ms=session_ms,
                                 mean_absence_ms=session_ms * 0.6, seed=5)
    population.start([servent.peer_id for servent in scenario.servents[2:]])
    start = time.perf_counter()
    counts = scenario.run_queries(max_results=100)
    simulator = scenario.network.simulator
    simulator.run(until_ms=simulator.now + EPILOGUE_MS)
    wall = time.perf_counter() - start
    # Close out still-open sessions so uptime reflects actual
    # availability over the window, not just how many sessions ended.
    scenario.network.snapshot_uptime()
    stats = scenario.network.stats
    return {
        "wall_s": round(wall, 6),
        "messages": stats.total_messages,
        "bytes": stats.total_bytes,
        "control_messages": stats.control_messages,
        "control_bytes": stats.control_bytes,
        "control_fraction": round(stats.control_fraction(), 4),
        "hit_rate": round(sum(1 for count in counts if count > 0) / len(counts), 4),
        "staleness_events": len(stats.staleness_windows_ms),
        "mean_staleness_ms": round(stats.mean_staleness_ms(), 1),
        "max_staleness_ms": round(stats.max_staleness_ms(), 1),
        "uptime_s_total": round(stats.uptime_ms_total / 1000, 1),
        "messages_per_s": round(stats.total_messages / wall, 1),
        "queries_per_s": round(len(counts) / wall, 1),
    }


def _timing_repeats(request) -> int:
    """Best-of-3 when wall time lands in the record; a single run under
    ``--benchmark-disable`` (tier-1/fast-CI mode), where the record is
    never written and only the deterministic counters matter."""
    return 1 if request.config.getoption("benchmark_disable", False) else 3


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_e9_membership_grid(benchmark, protocol, request):
    """Churn-rate sweep for one protocol; the moderate cell is timed."""
    repeats = _timing_repeats(request)
    samples = {}

    def measure_moderate():
        samples["moderate"] = run_membership(protocol, CHURN_RATES["moderate"],
                                             repeats=repeats)
        return samples["moderate"]

    benchmark.pedantic(measure_moderate, rounds=1, iterations=1)
    for level, session_ms in CHURN_RATES.items():
        if level not in samples:
            samples[level] = run_membership(protocol, session_ms, repeats=repeats)
    RECORD["protocols"][protocol] = samples
    for level, sample in samples.items():
        assert sample["control_bytes"] > 0, f"{protocol}/{level}: no maintenance traffic"
        assert sample["hit_rate"] > 0.0, f"{protocol}/{level}: every query failed"
    # Stale state must actually decay somewhere in the sweep: the churn
    # hits publishers, so registrations/ads/leaf records outlive owners.
    assert any(sample["staleness_events"] > 0 for sample in samples.values()), \
        f"{protocol}: no staleness window was ever paid"


def test_bench_e9_flood_live_throughput(benchmark, request):
    """Headline regression-guarded sample: membership-on flood
    throughput (gnutella, moderate churn), best of three."""
    sample = benchmark.pedantic(
        lambda: run_membership("gnutella", CHURN_RATES["moderate"],
                               repeats=_timing_repeats(request)),
        rounds=1, iterations=1)
    RECORD["flood_live"] = sample
    assert sample["queries_per_s"] > 0


def test_bench_e9_write_record(benchmark, report, request):
    """Merge the membership record into ``BENCH_perf.json`` (preserving
    every other suite's keys) and print the sweep table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(RECORD["protocols"]) == set(PROTOCOLS), \
        "run the whole module so every protocol is measured"
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("benchmark timing disabled; not rewriting BENCH_perf.json")
    from conftest import write_perf_record
    write_perf_record(PERF_PATH, {"membership": RECORD})
    rows = []
    for protocol in PROTOCOLS:
        for level in CHURN_RATES:
            sample = RECORD["protocols"][protocol][level]
            rows.append([protocol, level,
                         f"{sample['control_fraction']:.3f}",
                         sample["control_bytes"],
                         f"{sample['hit_rate']:.2f}",
                         f"{sample['mean_staleness_ms']:.0f}",
                         sample["staleness_events"]])
    report("E9  membership maintenance: control overhead vs availability "
           "(40 peers, live membership)",
           ["protocol", "churn", "ctrl frac", "ctrl bytes", "hit rate",
            "stale ms", "purges"], rows)
    assert PERF_PATH.exists()
