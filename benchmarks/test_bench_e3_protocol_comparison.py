"""E3 — protocol independence: the same workload over three networks.

The paper (§IV-B): U-P2P "is meant to be layered on top of any
peer-to-peer network organization", naming Napster, Gnutella and
FastTrack in the community schema.  The experiment runs an identical
design-pattern workload over the three organisations and reports the
cost/recall trade-off each one makes.
"""

from __future__ import annotations

import pytest

from repro.workloads.scenario import ScenarioConfig, build_scenario

PROTOCOLS = ("centralized", "gnutella", "super-peer")
BASE = dict(peers=60, members=24, publishers=12, corpus_size=90, queries=30,
            community="design-patterns", ttl=6, seed=11)


def run_protocol(protocol: str):
    scenario = build_scenario(ScenarioConfig(protocol=protocol, **BASE))
    counts = scenario.run_queries(max_results=200)
    stats = scenario.network.stats
    recall_samples = []
    for found, expected in zip(counts, scenario.workload.expected_matches, strict=True):
        if expected:
            recall_samples.append(min(found, expected) / expected)
    recall = sum(recall_samples) / len(recall_samples) if recall_samples else 0.0
    return scenario, {
        "msgs_per_query": stats.mean_messages_per_query(),
        "bytes_per_query": stats.total_bytes / max(1, len(stats.queries)),
        "latency_ms": stats.mean_latency_ms(),
        "recall": recall,
        "success": stats.success_rate(),
    }


@pytest.fixture(scope="module")
def results():
    return {protocol: run_protocol(protocol)[1] for protocol in PROTOCOLS}


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_e3_protocol_query_phase(benchmark, protocol):
    scenario = build_scenario(ScenarioConfig(protocol=protocol, **{**BASE, "queries": 10}))

    def query_phase():
        return scenario.run_queries(max_results=200)

    counts = benchmark(query_phase)
    assert len(counts) == 10


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_e3_concurrent_query_load(benchmark, protocol):
    """The same workload with eight queries in flight at once on the
    event kernel: later queries launch while earlier floods are still
    travelling, so elapsed virtual time undercuts the latency sum."""
    scenario = build_scenario(ScenarioConfig(
        protocol=protocol, concurrency=8, query_interarrival_ms=20.0,
        **{**BASE, "queries": 16}))

    def concurrent_phase():
        return scenario.run_queries(max_results=200)

    counts = benchmark.pedantic(concurrent_phase, rounds=1, iterations=1)
    assert len(counts) == 16
    stats = scenario.network.stats
    assert len(stats.queries) == 16


def test_bench_e3_concurrent_load_is_deterministic(benchmark):
    """Two identical concurrent runs produce identical message and byte
    counts — the repeatability the event kernel guarantees."""

    def run_once():
        scenario = build_scenario(ScenarioConfig(
            protocol="super-peer", concurrency=8, query_interarrival_ms=20.0,
            **{**BASE, "queries": 16}))
        counts = scenario.run_queries(max_results=200)
        stats = scenario.network.stats
        return counts, stats.total_messages, stats.total_bytes

    first = benchmark.pedantic(run_once, rounds=1, iterations=1)
    second = run_once()
    assert first == second


def test_bench_e3_warm_vs_cold_index(benchmark):
    """A cold-index query phase answers the same workload identically;
    the rebuild only restates what publishing had already indexed."""
    warm = build_scenario(ScenarioConfig(protocol="centralized", **BASE))
    cold = build_scenario(ScenarioConfig(protocol="centralized", cold_index=True, **BASE))

    def cold_phase():
        return cold.run_queries(max_results=200)

    cold_counts = benchmark.pedantic(cold_phase, rounds=1, iterations=1)
    warm_counts = warm.run_queries(max_results=200)
    assert cold_counts == warm_counts


def test_bench_e3_report(benchmark, results, report):
    benchmark.pedantic(lambda: dict(results), rounds=1, iterations=1)
    rows = [[protocol,
             f"{values['msgs_per_query']:.1f}",
             f"{values['bytes_per_query']:.0f}",
             f"{values['latency_ms']:.0f}",
             f"{values['recall']:.2f}",
             f"{values['success']:.2f}"]
            for protocol, values in results.items()]
    report("E3  the same workload over the three network organisations",
           ["protocol", "msgs/query", "bytes/query", "latency ms", "recall", "success rate"], rows)

    centralized, gnutella, superpeer = (results[p] for p in PROTOCOLS)
    # Shape of the trade-off the paper's protocol table implies:
    # the centralized index answers with the fewest messages; flooding
    # pays an order of magnitude more messages; super-peers sit between.
    assert centralized["msgs_per_query"] <= superpeer["msgs_per_query"] < gnutella["msgs_per_query"]
    assert gnutella["msgs_per_query"] > 10 * centralized["msgs_per_query"]
    # All three organisations answer the non-miss queries (U-P2P works on
    # each of them — the protocol-independence claim).
    for values in results.values():
        assert values["success"] >= 0.6
        assert values["recall"] >= 0.5
