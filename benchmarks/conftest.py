"""Shared helpers for the experiment/benchmark harness.

Every benchmark module reproduces one row of the experiment index in
DESIGN.md.  Besides the pytest-benchmark timings, each module prints the
table or series the experiment is about (workload → measured values) so
that running ``pytest benchmarks/ --benchmark-only`` regenerates the
figures' data; EXPERIMENTS.md records the interpretation.
"""

from __future__ import annotations

import json
import pathlib

import pytest


def write_perf_record(path: pathlib.Path, updates: dict) -> None:
    """Merge ``updates`` into the perf record at ``path`` and write it.

    Each benchmark suite owns a disjoint set of top-level keys (p1 the
    hot-path samples, e9 the ``membership`` section); merging instead
    of overwriting lets the modules run — and rewrite — in any order.
    """
    merged = {}
    if path.exists():
        merged = json.loads(path.read_text(encoding="utf-8"))
    merged.update(updates)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def print_table(title: str, columns: list[str], rows: list[list]) -> None:
    """Print a small aligned table to the terminal (captured by -s or shown
    in the benchmark summary when a row assertion fails)."""
    widths = [max(len(str(column)), *(len(str(row[index])) for row in rows)) if rows else len(str(column))
              for index, column in enumerate(columns)]
    line = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "-" * len(line)
    print(f"\n{title}\n{separator}\n{line}\n{separator}")
    for row in rows:
        print("  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(row)))
    print(separator)


@pytest.fixture(scope="session")
def report():
    """The table printer, as a fixture so benchmarks stay terse."""
    return print_table
