"""Fail CI when hot-path throughput regresses against the committed record.

Usage::

    python benchmarks/check_perf_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.20]

Compares every ``queries_per_s`` (and ``messages_per_s``) sample of the
current ``BENCH_perf.json`` against the committed baseline and exits
non-zero if any workload is more than ``tolerance`` slower.  Faster is
always fine — the committed file is refreshed by re-running
``pytest benchmarks/test_bench_p1_hot_path.py`` and committing the
result, which is how intentional trajectory changes land.

When both records carry ``calibration_events_per_s`` (a synthetic
kernel-shaped loop measured in the same run), throughput is normalized
by the calibration ratio first, so a slower or faster machine — a
shared CI runner versus the laptop that committed the baseline — does
not read as a code regression or mask one.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys


def samples(record: dict):
    """Yield (label, metrics) pairs comparable across runs."""
    for protocol, workloads in sorted(record.get("protocols", {}).items()):
        for workload, sample in sorted(workloads.items()):
            yield f"{protocol}/{workload}", sample
    headline = record.get("e3_concurrent_200")
    if headline:
        yield "e3_concurrent_200", headline
    # Live-membership flood throughput (E9's headline sample): the
    # maintenance-traffic hot path is guarded alongside the plain one.
    flood_live = record.get("membership", {}).get("flood_live")
    if flood_live:
        yield "membership/flood_live", flood_live
    # P2 scale grid: msgs/s per (protocol, population, shard count) cell.
    # CI caps the population (P2_MAX_POPULATION), so cells present in
    # the committed record may be absent from a CI run — samples missing
    # from the current record warn instead of failing (see main()).
    for label, sample in sorted(record.get("scale", {}).get("grid", {}).items()):
        yield f"scale/{label}", sample
    # P3 parallel grid: one connected topology, serial vs. worker-
    # process cells.  Guarding both modes catches a barrier-protocol
    # change that quietly doubles the handshake cost as well as a serial
    # hot-path regression smuggled in through the instrumentation hooks.
    for label, sample in sorted(record.get("parallel", {}).get("grid", {}).items()):
        yield f"parallel/{label}", sample
    # E12 fault grid: the faulty cells pay for drops, retries and the
    # chunked-download pacing, so their throughput is guarded per
    # (protocol, loss rate, hardened/legacy stack) cell — a reliable-
    # delivery change that quietly doubles the retry traffic shows up
    # here even while the recall assertions still pass.
    for protocol, sweep in sorted(record.get("faults", {}).get("protocols", {}).items()):
        for cell in sweep.get("cells", []):
            stack = "hardened" if cell.get("hardened") else "legacy"
            label = f"faults/{protocol}/loss{round(cell.get('loss_rate', 0) * 100)}_{stack}"
            yield label, cell
        for stack, cell in sorted(sweep.get("outage", {}).items()):
            yield f"faults/{protocol}/outage_{stack}", cell
    # E11 informed-routing grid: blind baselines and filter cells are
    # guarded per (filter geometry, churn) label — the filter rebuild
    # and probe machinery sits on the flood hot path, so a change that
    # quietly slows either the pruned or the blind spelling shows here.
    for label, sample in sorted(record.get("routing", {}).get("grid", {}).items()):
        yield f"routing/{label}", sample


def write_step_summary(rows, hardware: float, tolerance: float, failures) -> None:
    """Append a before/after markdown table to ``$GITHUB_STEP_SUMMARY``
    (when running under GitHub Actions) so perf deltas are readable from
    the run page without downloading the artifact."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    lines = [
        "## Hot-path throughput: baseline vs. this run",
        "",
        f"Hardware normalization factor: `{hardware:.2f}x` · "
        f"allowed regression: `{tolerance:.0%}`",
        "",
        "| workload | metric | baseline | current | ratio | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for label, metric, base_value, now_value, ratio, status in rows:
        icon = {"ok": "✅", "regressed": "❌", "missing": "⚠️"}.get(status, "")
        if base_value is None:
            lines.append(f"| `{label}` | {metric} | — | — | — | {icon} {status} |")
            continue
        lines.append(
            f"| `{label}` | {metric} | {base_value:,.1f} | {now_value:,.1f} "
            f"| {ratio:.2f}x | {icon} {status} |")
    lines.append("")
    verdict = (f"**{len(failures)} regression(s) beyond tolerance.**"
               if failures else "**No regression beyond tolerance.**")
    lines.append(verdict)
    lines.append("")
    with open(summary_path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def write_rss_summary(current: dict) -> None:
    """Append the P2 peak-RSS table (population × shards) to the CI
    step summary.  Memory is informational, not gated: RSS on a shared
    runner is too noisy for a hard threshold, but the trend belongs
    next to the throughput table."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    grid = current.get("scale", {}).get("grid", {})
    if not summary_path or not grid:
        return
    lines = [
        "## Scale grid: peak RSS by population × shard count",
        "",
        "| cell | messages/s | peak RSS (MB) | wall (s) |",
        "|---|---:|---:|---:|",
    ]
    for label, sample in sorted(grid.items()):
        rss_mb = sample.get("peak_rss_mb")
        lines.append(
            f"| `{label}` | {sample.get('messages_per_s', 0):,.0f} "
            f"| {rss_mb:,.1f} | {sample.get('wall_s', 0):.2f} |"
            if rss_mb is not None else f"| `{label}` | — | — | — |")
    index_rss = current.get("scale", {}).get("index_rss")
    if index_rss:
        lines += [
            "",
            f"Index layout A/B at {index_rss.get('indexes', 0):,} indexes: "
            f"set `{index_rss.get('set_mb', 0):,.1f} MB` → lean "
            f"`{index_rss.get('lean_mb', 0):,.1f} MB` "
            f"({index_rss.get('ratio', 0):.2f}x)",
        ]
    lines.append("")
    with open(summary_path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional queries/sec regression (default 0.20)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    current = json.loads(args.current.read_text(encoding="utf-8"))
    current_samples = dict(samples(current))

    # Hardware normalization: scale the current numbers as if they had
    # been measured on the baseline machine.
    base_calibration = baseline.get("calibration_events_per_s")
    now_calibration = current.get("calibration_events_per_s")
    if base_calibration and now_calibration:
        hardware = now_calibration / base_calibration
        print(f"calibration: baseline={base_calibration:.0f} ev/s, "
              f"current={now_calibration:.0f} ev/s -> normalizing by {hardware:.2f}x")
    else:
        hardware = 1.0
        print("calibration missing from one record; comparing raw throughput")

    failures = []
    rows = []
    missing = []
    for label, base in samples(baseline):
        now = current_samples.get(label)
        if now is None:
            # Not a failure: a capped CI grid (P2_MAX_POPULATION) or a
            # benchmark family that first lands in this very PR can
            # legitimately be absent from one side.  Warn so a sample
            # silently vanishing is still visible in the log and the
            # step summary.
            missing.append(label)
            rows.append((label, "-", None, None, None, "missing"))
            print(f"WARN {label:27s} missing from current record (skipped)")
            continue
        for metric in ("queries_per_s", "messages_per_s"):
            base_value = base.get(metric)
            now_value = now.get(metric)
            if not base_value or not now_value:
                continue
            ratio = now_value / hardware / base_value
            regressed = ratio < 1.0 - args.tolerance
            marker = "REG" if regressed else "OK "
            print(f"{marker} {label:28s} {metric:16s} "
                  f"baseline={base_value:>12.1f} current={now_value:>12.1f} "
                  f"({ratio:.2f}x)")
            rows.append((label, metric, base_value, now_value, ratio,
                         "regressed" if regressed else "ok"))
            if regressed:
                failures.append(
                    f"{label} {metric} regressed to {ratio:.2f}x of baseline "
                    f"({base_value:.1f} -> {now_value:.1f})")

    write_step_summary(rows, hardware, args.tolerance, failures)
    write_rss_summary(current)

    if missing:
        print(f"\n{len(missing)} baseline sample(s) missing from the current "
              "record (warned, not failed): " + ", ".join(missing))
    if failures:
        print("\nPerformance regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nNo hot-path regression beyond tolerance.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
