"""E11 — informed routing: messages saved vs. recall vs. filter size.

Gnutella's blind flood forwards every query to every neighbour; with
``informed_routing`` on, each hop consults per-neighbour attenuated
Bloom filters and forwards only where a filter admits the query within
the remaining TTL, falling back to the blind fan-out when no neighbour
admits (the no-lost-results contract).  This experiment sweeps the
filter geometry — bits per level x depth — against churn and records,
per cell:

* **messages saved** — total messages versus the blind flood of the
  same seed and churn (the fan-out the filters pruned);
* **recall** — per-query result counts, asserted *identical* to the
  blind flood's in every cell: pruning may never cost a result;
* **pruned / fallbacks / FP forwards** — where the savings came from
  and what the Bloom false-positive rate actually cost in messages.

The grid runs with membership in the instant (off) mode so the message
delta is purely the filters' doing; one extra live-membership cell
measures the advertisement bytes the filters add to keepalive PONGs
(``routing_filter_bytes``) — the steady-state price of keeping the
filters current through the lease machinery.

Churn here is the scenario's relay churn (``churn_session_ms``): the
member core — query origins and every content holder — stays online
while the relay population cycles.  That scoping is load-bearing for
the recall assertion: duplicate suppression is first-copy-wins, so
pruning an early low-TTL copy makes a peer process a *later* copy and
re-flood on a shifted timetable.  When content holders or origins
churn, those timing shifts change who is online at arrival and blind
versus informed result sets diverge in *both* directions — not a
routing hole, but a property of flood timing under churn.  With the
content core pinned, every arriving copy gets answered and the strict
identical-recall contract holds in every cell.

A deliberately visible trade-off: *larger* filters are more precise,
so more hops see every neighbour refuse — and each such hop falls back
to the full blind fan-out.  Cells where precision rises but savings
fall (fallbacks climbing) are the experiment's finding, not a bug.

The record lands in ``BENCH_perf.json`` under the ``routing`` key;
``check_perf_regression.py`` guards each cell's throughput.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.workloads.scenario import ScenarioConfig, build_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
PERF_PATH = REPO_ROOT / "BENCH_perf.json"

FILTER_BITS = (512, 2_048)
DEPTHS = (2, 4)
#: mean online-session length per churn level (None = static population)
CHURN_LEVELS = {"static": None, "churny": 1_200.0}

BASE = dict(
    protocol="gnutella",
    peers=30,
    members=12,
    publishers=6,
    corpus_size=40,
    queries=48,
    community="design-patterns",
    ttl=6,
    seed=29,
    concurrency=6,
    query_interarrival_ms=20.0,
)

RECORD: dict = {
    "suite": "e11_informed_routing",
    "schema_version": 1,
    "filter_bits": list(FILTER_BITS),
    "depths": list(DEPTHS),
    "churn_levels_session_ms": dict(CHURN_LEVELS),
    "grid": {},
    "live": {},
}


def _run_once(session_ms, **overrides) -> dict:
    """One run: relay churn per the scenario knobs, filters per cell."""
    if session_ms is not None:
        overrides = dict(overrides, churn_session_ms=session_ms,
                         churn_absence_ms=session_ms * 0.6)
    scenario = build_scenario(ScenarioConfig(**{**BASE, **overrides}))
    start = time.perf_counter()
    counts = scenario.run_queries(max_results=100)
    wall = time.perf_counter() - start
    stats = scenario.network.stats
    return {
        "wall_s": round(wall, 6),
        "messages": stats.total_messages,
        "bytes": stats.total_bytes,
        "counts": counts,
        "hit_rate": round(sum(1 for count in counts if count > 0) / len(counts), 4),
        "routing_pruned": stats.routing_pruned,
        "routing_fallbacks": stats.routing_fallbacks,
        "routing_fp_forwards": stats.routing_fp_forwards,
        "routing_filter_bytes": stats.routing_filter_bytes,
        "queries_per_s": round(len(counts) / wall, 1),
    }


def run_cell(session_ms, *, repeats: int, **overrides) -> dict:
    """Best-of-``repeats`` wall time; the simulation is deterministic,
    so every repeat produces the same counters and only the clock
    varies — the minimum keeps a one-off slow sample out of the
    committed record."""
    best = None
    for _ in range(repeats):
        sample = _run_once(session_ms, **overrides)
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


def _timing_repeats(request) -> int:
    """Best-of-3 when wall time lands in the record; a single run under
    ``--benchmark-disable`` (tier-1/fast-CI mode), where the record is
    never written and only the deterministic counters matter."""
    return 1 if request.config.getoption("benchmark_disable", False) else 3


def test_bench_e11_routing_grid(benchmark, request):
    """The filter-geometry x churn grid, with a blind baseline per
    churn level; recall is asserted identical in every cell."""
    repeats = _timing_repeats(request)
    grid = {}

    def measure():
        for level, session_ms in CHURN_LEVELS.items():
            blind = run_cell(session_ms, repeats=repeats)
            grid[f"{level}/blind"] = blind
            for bits in FILTER_BITS:
                for depth in DEPTHS:
                    sample = run_cell(session_ms, repeats=repeats,
                                      informed_routing=True,
                                      routing_filter_bits=bits,
                                      routing_depth=depth)
                    sample.update(
                        churn=level, filter_bits=bits, depth=depth,
                        messages_saved=blind["messages"] - sample["messages"],
                        bytes_saved=blind["bytes"] - sample["bytes"],
                    )
                    grid[f"{level}/bits{bits}_depth{depth}"] = sample
        return grid

    benchmark.pedantic(measure, rounds=1, iterations=1)
    RECORD["grid"] = grid
    for level in CHURN_LEVELS:
        blind = grid[f"{level}/blind"]
        for bits in FILTER_BITS:
            for depth in DEPTHS:
                cell = grid[f"{level}/bits{bits}_depth{depth}"]
                # The tentpole contract, asserted in the benchmark too:
                # identical recall, never more messages.
                assert cell["counts"] == blind["counts"], (
                    f"{level}/bits{bits}_depth{depth}: informed routing "
                    "changed a result count")
                assert cell["messages"] <= blind["messages"]
        # The knob must actually bite somewhere in each churn level.
        assert any(grid[f"{level}/bits{bits}_depth{depth}"]["messages_saved"] > 0
                   for bits in FILTER_BITS for depth in DEPTHS), (
            f"{level}: no filter geometry saved any messages")


def test_bench_e11_live_advertisement_cost(benchmark, request):
    """One live-membership cell: the filters ride keepalive PONGs, so
    the advertisement bytes they add are real measured control traffic."""
    repeats = _timing_repeats(request)
    samples = {}

    def measure():
        cell = dict(live_membership=True, maintenance_interval_ms=250.0)
        samples["blind"] = run_cell(CHURN_LEVELS["churny"], repeats=repeats, **cell)
        samples["informed"] = run_cell(CHURN_LEVELS["churny"], repeats=repeats,
                                       informed_routing=True, **cell)
        return samples

    benchmark.pedantic(measure, rounds=1, iterations=1)
    blind, informed = samples["blind"], samples["informed"]
    assert informed["counts"] == blind["counts"], (
        "live cell: informed routing changed a result count")
    assert informed["routing_filter_bytes"] > 0, (
        "live membership must bill filter advertisements")
    informed["advert_bytes_per_message_saved"] = round(
        informed["routing_filter_bytes"]
        / max(1, blind["messages"] - informed["messages"]), 1)
    RECORD["live"] = {"blind": blind, "informed": informed}


def test_bench_e11_write_record(benchmark, report, request):
    """Merge the routing record into ``BENCH_perf.json`` (preserving
    all other suites' keys) and print the sweep table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert RECORD["grid"], "run the whole module so the grid is measured"
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("benchmark timing disabled; not rewriting BENCH_perf.json")
    from conftest import write_perf_record

    # Per-query counts pin recall inside this run; they are bulky and
    # per-cell identical to the blind baseline, so the committed record
    # keeps the scalar summaries only.
    record = {**RECORD, "grid": {
        label: {key: value for key, value in sample.items() if key != "counts"}
        for label, sample in RECORD["grid"].items()
    }}
    if RECORD["live"]:
        record["live"] = {
            which: {key: value for key, value in sample.items() if key != "counts"}
            for which, sample in RECORD["live"].items()
        }
    write_perf_record(PERF_PATH, {"routing": record})
    rows = []
    for level in CHURN_LEVELS:
        blind = RECORD["grid"][f"{level}/blind"]
        rows.append([level, "blind", "-", blind["messages"], "-", "-", "-", "-",
                     f"{blind['hit_rate']:.2f}"])
        for bits in FILTER_BITS:
            for depth in DEPTHS:
                cell = RECORD["grid"][f"{level}/bits{bits}_depth{depth}"]
                rows.append([
                    level, bits, depth, cell["messages"],
                    cell["messages_saved"], cell["routing_pruned"],
                    cell["routing_fallbacks"], cell["routing_fp_forwards"],
                    f"{cell['hit_rate']:.2f}",
                ])
    report(
        "E11  informed routing: messages saved vs. filter geometry "
        "(30 peers, recall identical to blind flood in every cell)",
        ["churn", "bits", "depth", "msgs", "saved", "pruned", "fallback",
         "fp fwd", "success"],
        rows,
    )
    assert PERF_PATH.exists()
