"""The chemical-molecule community (CML, paper §I and reference [8]).

"XML descriptions of chemical molecules for chemists or chemistry
students" — the schema follows the spirit of Chemical Markup Language:
a molecule with a name, formula, identifiers and a list of atoms.
"""

from __future__ import annotations

import random

from repro.communities.base import CommunityDefinition
from repro.schema.builder import SchemaBuilder, schema_to_xsd

#: (name, formula, weight, atoms) of some well-known molecules.
_MOLECULES = (
    ("water", "H2O", 18.015, ("H", "H", "O")),
    ("benzene", "C6H6", 78.11, ("C",) * 6 + ("H",) * 6),
    ("ethanol", "C2H6O", 46.07, ("C", "C", "H", "H", "H", "H", "H", "H", "O")),
    ("caffeine", "C8H10N4O2", 194.19, ("C",) * 8 + ("H",) * 10 + ("N",) * 4 + ("O",) * 2),
    ("aspirin", "C9H8O4", 180.16, ("C",) * 9 + ("H",) * 8 + ("O",) * 4),
    ("glucose", "C6H12O6", 180.16, ("C",) * 6 + ("H",) * 12 + ("O",) * 6),
    ("methane", "CH4", 16.04, ("C", "H", "H", "H", "H")),
    ("ammonia", "NH3", 17.03, ("N", "H", "H", "H")),
    ("penicillin G", "C16H18N2O4S", 334.39, ("C",) * 16 + ("H",) * 18 + ("N", "N", "O", "O", "O", "O", "S")),
    ("dopamine", "C8H11NO2", 153.18, ("C",) * 8 + ("H",) * 11 + ("N", "O", "O")),
)

_FAMILIES = ("alkane", "aromatic", "alcohol", "amine", "acid", "ester", "sugar", "alkaloid")


def molecule_schema_xsd() -> str:
    """The molecule community schema (CML-flavoured)."""
    builder = SchemaBuilder("molecule")
    builder.field("name", searchable=True, documentation="Trivial or IUPAC name")
    builder.field("formula", searchable=True, documentation="Molecular formula, Hill notation")
    builder.field("family", enumeration=_FAMILIES, searchable=True, optional=True)
    builder.field("weight", "decimal", documentation="Molecular weight in g/mol")
    builder.field("cas", optional=True, searchable=True, documentation="CAS registry number")
    atoms = builder.group("atoms")
    atoms.field("atom", repeated=True, documentation="Element symbol of one atom")
    atoms.end()
    builder.field("smiles", optional=True, documentation="SMILES string")
    builder.field("structure", "anyURI", attachment=True, optional=True,
                  documentation="A structure file (e.g. MOL) downloaded with the molecule")
    return schema_to_xsd(builder.build())


def generate_molecule_corpus(size: int, seed: int = 0) -> list[dict[str, object]]:
    """``size`` molecule descriptions (known molecules plus derivatives)."""
    rng = random.Random(seed)
    corpus: list[dict[str, object]] = []
    for index in range(size):
        name, formula, weight, atoms = _MOLECULES[index % len(_MOLECULES)]
        derivative = index // len(_MOLECULES)
        display_name = name if derivative == 0 else f"{name} derivative {derivative}"
        corpus.append({
            "name": display_name,
            "formula": formula,
            "family": rng.choice(_FAMILIES),
            "weight": f"{weight + derivative * 14.03:.2f}",
            "cas": f"{rng.randint(50, 9999)}-{rng.randint(10, 99)}-{rng.randint(0, 9)}",
            "atoms/atom": list(atoms),
            "smiles": "".join(rng.choices("CNOH()=123", k=rng.randint(4, 16))),
            "structure": f"http://chem.example.org/mol/{index:05d}.mol",
        })
    return corpus


def molecule_community() -> CommunityDefinition:
    return CommunityDefinition(
        name="Chemical Molecules",
        schema_xsd=molecule_schema_xsd(),
        description="Share CML-style descriptions of chemical molecules.",
        keywords="chemistry molecule cml formula",
        category="science",
        protocol="Gnutella",
        corpus=generate_molecule_corpus,
        attachments_field="structure",
    )
