"""Shared plumbing for the bundled community definitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.application import Application
from repro.core.community import Community
from repro.core.servent import Servent
from repro.core.stylesheets import StylesheetSet


@dataclass
class CommunityDefinition:
    """Everything needed to instantiate one bundled community.

    ``corpus`` is a generator of form-value dictionaries; feeding them to
    the generated application's ``publish`` produces a realistic shared
    collection for examples and experiments.
    """

    name: str
    schema_xsd: str
    description: str = ""
    keywords: str = ""
    category: str = ""
    protocol: str = ""
    stylesheets: Optional[StylesheetSet] = None
    index_filter_fields: Optional[tuple[str, ...]] = None
    corpus: Optional[Callable[[int, int], list[dict[str, object]]]] = None
    attachments_field: str = ""

    def create_on(self, servent: Servent) -> Community:
        """Create (and join) this community through ``servent``."""
        return servent.create_community(
            self.name,
            self.schema_xsd,
            description=self.description,
            keywords=self.keywords,
            category=self.category,
            protocol=self.protocol,
            stylesheets=self.stylesheets,
            index_filter_fields=self.index_filter_fields,
        )

    def application_on(self, servent: Servent) -> Application:
        """Generate the single-community application on ``servent``."""
        return Application(servent, self.create_on(servent))

    def sample_corpus(self, size: int, *, seed: int = 0) -> list[dict[str, object]]:
        """``size`` synthetic objects as form-value dictionaries."""
        if self.corpus is None:
            return []
        return self.corpus(size, seed)


def spread_corpus(values: Sequence[dict[str, object]], publishers: Sequence[Application]) -> None:
    """Publish a corpus round-robin across several peers' applications."""
    for index, record in enumerate(values):
        application = publishers[index % len(publishers)]
        application.publish(record)
