"""The gene community for genome researchers (paper §I, ref. [7], AGAVE-style)."""

from __future__ import annotations

import random

from repro.communities.base import CommunityDefinition
from repro.schema.builder import SchemaBuilder, schema_to_xsd

_ORGANISMS = ("Homo sapiens", "Mus musculus", "Drosophila melanogaster",
              "Saccharomyces cerevisiae", "Escherichia coli", "Danio rerio")
_CHROMOSOMES = tuple(str(number) for number in range(1, 23)) + ("X", "Y")

_GENES = (
    ("BRCA1", "breast cancer type 1 susceptibility protein", "DNA repair"),
    ("TP53", "cellular tumor antigen p53", "tumor suppression"),
    ("CFTR", "cystic fibrosis transmembrane conductance regulator", "chloride transport"),
    ("HBB", "hemoglobin subunit beta", "oxygen transport"),
    ("INS", "insulin", "glucose regulation"),
    ("MYC", "myc proto-oncogene protein", "transcription regulation"),
    ("APOE", "apolipoprotein E", "lipid metabolism"),
    ("EGFR", "epidermal growth factor receptor", "signal transduction"),
)


def gene_schema_xsd() -> str:
    """The gene community schema (AGAVE-flavoured annotation record)."""
    builder = SchemaBuilder("gene")
    builder.field("symbol", searchable=True, documentation="Official gene symbol")
    builder.field("name", searchable=True, documentation="Full gene name")
    builder.field("organism", enumeration=_ORGANISMS, searchable=True)
    builder.field("chromosome", searchable=True)
    builder.field("function", searchable=True)
    builder.field("sequence_length", "positiveInteger")
    exons = builder.group("annotation", optional=True)
    exons.field("exon_count", "positiveInteger", optional=True)
    exons.field("note", repeated=True, optional=True)
    exons.end()
    builder.field("sequence", "anyURI", attachment=True, optional=True,
                  documentation="FASTA sequence file downloaded with the record")
    return schema_to_xsd(builder.build())


def generate_gene_corpus(size: int, seed: int = 0) -> list[dict[str, object]]:
    rng = random.Random(seed)
    corpus: list[dict[str, object]] = []
    for index in range(size):
        symbol, name, function = _GENES[index % len(_GENES)]
        variant = index // len(_GENES)
        suffix = "" if variant == 0 else f"-{variant}"
        corpus.append({
            "symbol": symbol + suffix,
            "name": name,
            "organism": rng.choice(_ORGANISMS),
            "chromosome": rng.choice(_CHROMOSOMES),
            "function": function,
            "sequence_length": str(rng.randint(500, 250000)),
            "annotation/exon_count": str(rng.randint(1, 60)),
            "annotation/note": [f"annotated by curator {rng.randint(1, 9)}"],
            "sequence": f"http://genome.example.org/fasta/{symbol.lower()}{suffix}.fa",
        })
    return corpus


def gene_community() -> CommunityDefinition:
    return CommunityDefinition(
        name="Genome Annotations",
        schema_xsd=gene_schema_xsd(),
        description="Share gene annotation records and sequences for genome research.",
        keywords="gene genome annotation agave bioinformatics",
        category="science",
        protocol="Napster",
        corpus=generate_gene_corpus,
        attachments_field="sequence",
    )
