"""Bundled example communities.

The paper motivates U-P2P with a list of communities that become easy
to create once the application is generated from a schema (§I):

* XML descriptions of chemical molecules (CML),
* descriptions of species for biodiversity research,
* descriptions of genes,
* design patterns for computer science students (the §V case study),
* software components,
* MP3 trading communities narrowed by artist or genre.

Each module in this package defines one of those communities: its XML
Schema, optional custom stylesheets and index filters, and a synthetic
corpus generator used by the examples, tests and benchmarks.
"""

from repro.communities.base import CommunityDefinition
from repro.communities.design_patterns import design_pattern_community, generate_pattern_corpus
from repro.communities.genes import gene_community, generate_gene_corpus
from repro.communities.molecules import molecule_community, generate_molecule_corpus
from repro.communities.mp3 import mp3_community, generate_mp3_corpus
from repro.communities.species import species_community, generate_species_corpus

ALL_COMMUNITIES = {
    "mp3": mp3_community,
    "design-patterns": design_pattern_community,
    "molecules": molecule_community,
    "species": species_community,
    "genes": gene_community,
}

__all__ = [
    "CommunityDefinition",
    "ALL_COMMUNITIES",
    "mp3_community",
    "generate_mp3_corpus",
    "design_pattern_community",
    "generate_pattern_corpus",
    "molecule_community",
    "generate_molecule_corpus",
    "species_community",
    "generate_species_corpus",
    "gene_community",
    "generate_gene_corpus",
]
