"""The design-pattern community — the paper's §V case study.

The Carleton Pattern Repository represented software design patterns in
XML; the paper derives an XML Schema from its DTD and builds a U-P2P
community around it, with a custom view stylesheet (the default one is
"tailored to more simple formats") and a custom index filter deciding
"which parts of the design pattern should be indexed".

This module reproduces all three artefacts: the pattern schema, the
custom stylesheets, and a corpus of the 23 GoF patterns plus synthetic
variations for scale experiments.
"""

from __future__ import annotations

import random

from repro.communities.base import CommunityDefinition
from repro.core.stylesheets import (
    DEFAULT_CREATE_STYLESHEET,
    DEFAULT_SEARCH_STYLESHEET,
    StylesheetSet,
)
from repro.schema.builder import SchemaBuilder, schema_to_xsd

CATEGORIES = ("creational", "structural", "behavioral")

#: The 23 GoF patterns: (name, category, intent, participants).
GOF_PATTERNS: tuple[tuple[str, str, str, tuple[str, ...]], ...] = (
    ("Abstract Factory", "creational",
     "Provide an interface for creating families of related objects without specifying their concrete classes",
     ("AbstractFactory", "ConcreteFactory", "AbstractProduct", "Client")),
    ("Builder", "creational",
     "Separate the construction of a complex object from its representation",
     ("Builder", "ConcreteBuilder", "Director", "Product")),
    ("Factory Method", "creational",
     "Define an interface for creating an object but let subclasses decide which class to instantiate",
     ("Creator", "ConcreteCreator", "Product", "ConcreteProduct")),
    ("Prototype", "creational",
     "Specify the kinds of objects to create using a prototypical instance and create new objects by copying it",
     ("Prototype", "ConcretePrototype", "Client")),
    ("Singleton", "creational",
     "Ensure a class only has one instance and provide a global point of access to it",
     ("Singleton",)),
    ("Adapter", "structural",
     "Convert the interface of a class into another interface clients expect",
     ("Target", "Adapter", "Adaptee", "Client")),
    ("Bridge", "structural",
     "Decouple an abstraction from its implementation so that the two can vary independently",
     ("Abstraction", "RefinedAbstraction", "Implementor", "ConcreteImplementor")),
    ("Composite", "structural",
     "Compose objects into tree structures to represent part-whole hierarchies",
     ("Component", "Leaf", "Composite", "Client")),
    ("Decorator", "structural",
     "Attach additional responsibilities to an object dynamically",
     ("Component", "ConcreteComponent", "Decorator", "ConcreteDecorator")),
    ("Facade", "structural",
     "Provide a unified interface to a set of interfaces in a subsystem",
     ("Facade", "Subsystem")),
    ("Flyweight", "structural",
     "Use sharing to support large numbers of fine-grained objects efficiently",
     ("Flyweight", "ConcreteFlyweight", "FlyweightFactory", "Client")),
    ("Proxy", "structural",
     "Provide a surrogate or placeholder for another object to control access to it",
     ("Proxy", "Subject", "RealSubject")),
    ("Chain of Responsibility", "behavioral",
     "Avoid coupling the sender of a request to its receiver by giving more than one object a chance to handle the request",
     ("Handler", "ConcreteHandler", "Client")),
    ("Command", "behavioral",
     "Encapsulate a request as an object thereby letting you parameterize clients with different requests",
     ("Command", "ConcreteCommand", "Invoker", "Receiver")),
    ("Interpreter", "behavioral",
     "Given a language define a representation for its grammar along with an interpreter",
     ("AbstractExpression", "TerminalExpression", "NonterminalExpression", "Context")),
    ("Iterator", "behavioral",
     "Provide a way to access the elements of an aggregate object sequentially without exposing its underlying representation",
     ("Iterator", "ConcreteIterator", "Aggregate", "ConcreteAggregate")),
    ("Mediator", "behavioral",
     "Define an object that encapsulates how a set of objects interact",
     ("Mediator", "ConcreteMediator", "Colleague")),
    ("Memento", "behavioral",
     "Without violating encapsulation capture and externalize an object's internal state",
     ("Memento", "Originator", "Caretaker")),
    ("Observer", "behavioral",
     "Define a one-to-many dependency between objects so that when one object changes state all its dependents are notified",
     ("Subject", "ConcreteSubject", "Observer", "ConcreteObserver")),
    ("State", "behavioral",
     "Allow an object to alter its behavior when its internal state changes",
     ("Context", "State", "ConcreteState")),
    ("Strategy", "behavioral",
     "Define a family of algorithms encapsulate each one and make them interchangeable",
     ("Strategy", "ConcreteStrategy", "Context")),
    ("Template Method", "behavioral",
     "Define the skeleton of an algorithm in an operation deferring some steps to subclasses",
     ("AbstractClass", "ConcreteClass")),
    ("Visitor", "behavioral",
     "Represent an operation to be performed on the elements of an object structure",
     ("Visitor", "ConcreteVisitor", "Element", "ConcreteElement", "ObjectStructure")),
)

_PROBLEM_DOMAINS = (
    "a drawing editor", "a network supervision agent", "a compiler front end",
    "an order processing system", "a windowing toolkit", "a document converter",
    "a peer-to-peer file-sharing client", "a pattern repository", "a simulation engine",
)


def pattern_schema_xsd() -> str:
    """The design-pattern community schema (derived from the repository DTD).

    Name, intent, category, keywords and the consequences text are the
    searchable fields; the solution structure, participant list and
    sample code are stored but deliberately *not* indexed — that is the
    "which parts of the design pattern should be indexed" design choice
    the case study discusses.
    """
    builder = SchemaBuilder("pattern")
    builder.field("name", searchable=True, documentation="Canonical pattern name")
    builder.field("alias", optional=True, repeated=True, documentation="Also-known-as names")
    builder.field("category", enumeration=CATEGORIES, searchable=True)
    builder.field("intent", searchable=True, documentation="What the pattern is for")
    builder.field("keywords", searchable=True, optional=True)
    builder.field("motivation", optional=True, documentation="A motivating scenario")
    builder.field("applicability", searchable=True, optional=True,
                  documentation="When to apply the pattern")
    structure = builder.group("solution")
    structure.field("structure", documentation="Description of the class structure")
    structure.field("participants", repeated=True, documentation="Participating classes")
    structure.field("collaborations", optional=True)
    structure.end()
    builder.field("consequences", searchable=True, optional=True)
    builder.field("sample_code", optional=True, documentation="Illustrative source code")
    builder.field("related", optional=True, repeated=True, documentation="Related pattern names")
    builder.field("author", optional=True)
    builder.field("diagram", "anyURI", attachment=True, optional=True,
                  documentation="A class-diagram image downloaded with the pattern")
    return schema_to_xsd(builder.build())


#: Custom view stylesheet of the case study: section headings instead of
#: the default flat attribute table.
PATTERN_VIEW_STYLESHEET = """<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <div class="pattern-view">
      <h1><xsl:value-of select="pattern/name"/></h1>
      <p class="category">Category: <xsl:value-of select="pattern/category"/></p>
      <h2>Intent</h2>
      <p><xsl:value-of select="pattern/intent"/></p>
      <xsl:if test="pattern/applicability">
        <h2>Applicability</h2>
        <p><xsl:value-of select="pattern/applicability"/></p>
      </xsl:if>
      <h2>Structure</h2>
      <p><xsl:value-of select="pattern/solution/structure"/></p>
      <h2>Participants</h2>
      <ul>
        <xsl:for-each select="pattern/solution/participants">
          <li><xsl:value-of select="."/></li>
        </xsl:for-each>
      </ul>
      <xsl:if test="pattern/consequences">
        <h2>Consequences</h2>
        <p><xsl:value-of select="pattern/consequences"/></p>
      </xsl:if>
      <xsl:if test="pattern/related">
        <h2>Related patterns</h2>
        <ul>
          <xsl:for-each select="pattern/related">
            <li><xsl:value-of select="."/></li>
          </xsl:for-each>
        </ul>
      </xsl:if>
    </div>
  </xsl:template>
</xsl:stylesheet>
"""

#: Custom index-filter stylesheet: only name, category, intent, keywords,
#: applicability and consequences reach the index.
PATTERN_INDEX_FILTER_STYLESHEET = """<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="xml"/>
  <xsl:template match="/">
    <indexed>
      <attribute name="name"><xsl:value-of select="pattern/name"/></attribute>
      <attribute name="category"><xsl:value-of select="pattern/category"/></attribute>
      <attribute name="intent"><xsl:value-of select="pattern/intent"/></attribute>
      <xsl:if test="pattern/keywords">
        <attribute name="keywords"><xsl:value-of select="pattern/keywords"/></attribute>
      </xsl:if>
      <xsl:if test="pattern/applicability">
        <attribute name="applicability"><xsl:value-of select="pattern/applicability"/></attribute>
      </xsl:if>
      <xsl:if test="pattern/consequences">
        <attribute name="consequences"><xsl:value-of select="pattern/consequences"/></attribute>
      </xsl:if>
    </indexed>
  </xsl:template>
</xsl:stylesheet>
"""

#: Field paths the custom index filter keeps.
PATTERN_INDEX_FIELDS = (
    "name", "category", "intent", "keywords", "applicability", "consequences",
)


def pattern_stylesheets() -> StylesheetSet:
    """The case study's custom stylesheet set."""
    return StylesheetSet(
        create=DEFAULT_CREATE_STYLESHEET,
        search=DEFAULT_SEARCH_STYLESHEET,
        view=PATTERN_VIEW_STYLESHEET,
        index_filter=PATTERN_INDEX_FILTER_STYLESHEET,
    )


def gof_pattern_records() -> list[dict[str, object]]:
    """The 23 GoF patterns as form-value dictionaries."""
    records: list[dict[str, object]] = []
    for name, category, intent, participants in GOF_PATTERNS:
        keyword_tokens = {token.lower() for token in name.split()}
        keyword_tokens.update({category, "design", "pattern"})
        records.append({
            "name": name,
            "category": category,
            "intent": intent,
            "keywords": " ".join(sorted(keyword_tokens)),
            "applicability": f"Use {name} when designing {category} aspects of an object-oriented system",
            "solution/structure": f"The {name} pattern arranges {', '.join(participants)} as cooperating classes",
            "solution/participants": list(participants),
            "consequences": f"{name} trades flexibility for indirection; it decouples {participants[0]} from its clients",
            "author": "Gamma, Helm, Johnson, Vlissides",
            "diagram": f"http://repo.carleton.ca/patterns/{name.lower().replace(' ', '-')}.png",
        })
    return records


def generate_pattern_corpus(size: int, seed: int = 0) -> list[dict[str, object]]:
    """``size`` pattern documents: the 23 GoF patterns plus variations.

    Variations model the "rich collection of patterns" the case study
    anticipates: domain-specific adaptations of the canonical patterns
    with their own intent wording and keywords.
    """
    rng = random.Random(seed)
    base = gof_pattern_records()
    corpus = [dict(record) for record in base[:size]]
    used_names = {record["name"] for record in corpus}
    index = 0
    while len(corpus) < size:
        source = base[index % len(base)]
        domain = rng.choice(_PROBLEM_DOMAINS)
        variant = dict(source)
        name = f"{source['name']} for {domain}"
        if name in used_names:
            name = f"{name} (variant {index})"
        used_names.add(name)
        variant["name"] = name
        variant["intent"] = f"{source['intent']}, adapted to {domain}"
        variant["keywords"] = f"{source['keywords']} {domain.split()[-1]}"
        variant["author"] = rng.choice(("Deugo", "Ferguson", "Arthorne", "Esfandiari", "Mukherjee"))
        corpus.append(variant)
        index += 1
    return corpus[:size]


def design_pattern_community() -> CommunityDefinition:
    """The §V case-study community with its custom stylesheets and filter."""
    return CommunityDefinition(
        name="Carleton Design Patterns",
        schema_xsd=pattern_schema_xsd(),
        description="A peer-to-peer repository of software design patterns with meta-data search.",
        keywords="design patterns software gof repository carleton",
        category="software-engineering",
        protocol="Gnutella",
        stylesheets=pattern_stylesheets(),
        index_filter_fields=PATTERN_INDEX_FIELDS,
        corpus=generate_pattern_corpus,
        attachments_field="diagram",
    )
