"""The species community for biodiversity research (paper §I, ref. [6])."""

from __future__ import annotations

import random

from repro.communities.base import CommunityDefinition
from repro.schema.builder import SchemaBuilder, schema_to_xsd

_KINGDOMS = ("Animalia", "Plantae", "Fungi", "Protista", "Bacteria")
_STATUS = ("least concern", "near threatened", "vulnerable", "endangered", "critically endangered")

_SPECIES = (
    ("Ursus arctos", "brown bear", "Animalia", "Ursidae", "forests and tundra of the northern hemisphere"),
    ("Panthera leo", "lion", "Animalia", "Felidae", "savannahs of sub-Saharan Africa"),
    ("Quercus rubra", "northern red oak", "Plantae", "Fagaceae", "deciduous forests of eastern North America"),
    ("Amanita muscaria", "fly agaric", "Fungi", "Amanitaceae", "birch and pine woodland"),
    ("Salmo salar", "Atlantic salmon", "Animalia", "Salmonidae", "north Atlantic rivers and coastal waters"),
    ("Apis mellifera", "western honey bee", "Animalia", "Apidae", "temperate and tropical regions worldwide"),
    ("Sequoiadendron giganteum", "giant sequoia", "Plantae", "Cupressaceae", "western Sierra Nevada slopes"),
    ("Castor canadensis", "North American beaver", "Animalia", "Castoridae", "streams, ponds and wetlands"),
)


def species_schema_xsd() -> str:
    """The species community schema (field-guide style)."""
    builder = SchemaBuilder("species")
    builder.field("scientific_name", searchable=True, documentation="Binomial name")
    builder.field("common_name", searchable=True)
    builder.field("kingdom", enumeration=_KINGDOMS, searchable=True)
    builder.field("family", searchable=True)
    builder.field("habitat", searchable=True)
    builder.field("conservation_status", enumeration=_STATUS, searchable=True, optional=True)
    builder.field("description", optional=True)
    observations = builder.group("observations", optional=True)
    observations.field("location", repeated=True)
    observations.field("observer", optional=True)
    observations.end()
    builder.field("photo", "anyURI", attachment=True, optional=True)
    return schema_to_xsd(builder.build())


def generate_species_corpus(size: int, seed: int = 0) -> list[dict[str, object]]:
    rng = random.Random(seed)
    corpus: list[dict[str, object]] = []
    for index in range(size):
        scientific, common, kingdom, family, habitat = _SPECIES[index % len(_SPECIES)]
        population = index // len(_SPECIES)
        suffix = "" if population == 0 else f" (population {population})"
        corpus.append({
            "scientific_name": scientific + suffix,
            "common_name": common,
            "kingdom": kingdom,
            "family": family,
            "habitat": habitat,
            "conservation_status": rng.choice(_STATUS),
            "description": f"Field observations of {common} in {habitat}.",
            "observations/location": [f"site-{rng.randint(1, 40)}" for _ in range(rng.randint(1, 3))],
            "observations/observer": rng.choice(("Stevenson", "Morris", "field station")),
            "photo": f"http://efg.example.org/photos/{index:05d}.jpg",
        })
    return corpus


def species_community() -> CommunityDefinition:
    return CommunityDefinition(
        name="Biodiversity Species",
        schema_xsd=species_schema_xsd(),
        description="Electronic field guide entries for species, shared peer-to-peer.",
        keywords="species biodiversity field guide taxonomy",
        category="science",
        protocol="FastTrack",
        corpus=generate_species_corpus,
        attachments_field="photo",
    )
