"""The MP3-sharing community (the Napster-shaped example of the paper).

The paper repeatedly uses MP3 sharing as the canonical community — and
notes that "the focus of existing communities can be narrowed by
specifying additional attributes — for example: MP3 trading
sub-communities focused on the work of a single artist or genre."
``narrowed_mp3_community`` builds exactly such a sub-community.
"""

from __future__ import annotations

import random

from repro.communities.base import CommunityDefinition
from repro.schema.builder import SchemaBuilder, schema_to_xsd

GENRES = ("rock", "jazz", "classical", "electronic", "folk", "hip-hop", "blues")

_ARTISTS = (
    ("Miles Davis", "jazz", ("Kind of Blue", "Bitches Brew", "Sketches of Spain")),
    ("John Coltrane", "jazz", ("A Love Supreme", "Blue Train", "Giant Steps")),
    ("Glenn Gould", "classical", ("Goldberg Variations", "The Well-Tempered Clavier", "Partitas")),
    ("Kraftwerk", "electronic", ("Autobahn", "Trans-Europe Express", "Computer World")),
    ("Joni Mitchell", "folk", ("Blue", "Court and Spark", "Hejira")),
    ("Led Zeppelin", "rock", ("IV", "Physical Graffiti", "Houses of the Holy")),
    ("Muddy Waters", "blues", ("Hard Again", "Folk Singer", "At Newport")),
    ("A Tribe Called Quest", "hip-hop", ("The Low End Theory", "Midnight Marauders", "Peoples Travels")),
)

_TRACK_WORDS = (
    "blue", "night", "train", "river", "light", "dance", "echo", "summer", "winter",
    "road", "dream", "fire", "rain", "shadow", "golden", "electric", "slow", "fast",
)


def mp3_schema_xsd() -> str:
    """The MP3 community schema (title/artist/album/genre searchable)."""
    builder = SchemaBuilder("mp3")
    builder.field("title", searchable=True, documentation="Track title")
    builder.field("artist", searchable=True, documentation="Performing artist")
    builder.field("album", searchable=True, documentation="Album the track appears on")
    builder.field("genre", enumeration=GENRES, searchable=True)
    builder.field("year", "gYear", optional=True)
    builder.field("bitrate", "positiveInteger", documentation="Encoding bitrate in kbit/s")
    builder.field("duration", "positiveInteger", optional=True, documentation="Length in seconds")
    builder.field("file", "anyURI", attachment=True, optional=True,
                  documentation="The audio file itself, downloaded on retrieve")
    return schema_to_xsd(builder.build())


def generate_mp3_corpus(size: int, seed: int = 0) -> list[dict[str, object]]:
    """``size`` synthetic MP3 descriptions with a Zipf-ish artist skew."""
    rng = random.Random(seed)
    corpus: list[dict[str, object]] = []
    for index in range(size):
        # Popular artists appear more often (harmonic weighting).
        weights = [1.0 / (rank + 1) for rank in range(len(_ARTISTS))]
        artist, genre, albums = rng.choices(_ARTISTS, weights=weights, k=1)[0]
        title = " ".join(rng.sample(_TRACK_WORDS, rng.randint(1, 3))).title()
        corpus.append({
            "title": f"{title} No. {index % 19 + 1}",
            "artist": artist,
            "album": rng.choice(albums),
            "genre": genre,
            "year": str(rng.randint(1959, 2002)),
            "bitrate": str(rng.choice((128, 160, 192, 256, 320))),
            "duration": str(rng.randint(90, 780)),
            "file": f"http://peer.local/audio/{index:05d}.mp3",
        })
    return corpus


def mp3_community() -> CommunityDefinition:
    """The full MP3 community definition."""
    return CommunityDefinition(
        name="MP3 community",
        schema_xsd=mp3_schema_xsd(),
        description="Trade MP3 audio meta-data and files over any peer-to-peer network.",
        keywords="music mp3 audio napster",
        category="media",
        protocol="Gnutella",
        corpus=generate_mp3_corpus,
        attachments_field="file",
    )


def narrowed_mp3_community(artist: str) -> CommunityDefinition:
    """An artist-focused sub-community (the paper's narrowing example)."""
    definition = mp3_community()

    def corpus(size: int, seed: int = 0) -> list[dict[str, object]]:
        records = [record for record in generate_mp3_corpus(size * 3, seed)
                   if record["artist"] == artist]
        return records[:size]

    return CommunityDefinition(
        name=f"MP3 community: {artist}",
        schema_xsd=definition.schema_xsd,
        description=f"MP3 trading focused on the work of {artist}.",
        keywords=f"music mp3 {artist.lower()}",
        category="media",
        protocol=definition.protocol,
        corpus=corpus,
        attachments_field="file",
    )
