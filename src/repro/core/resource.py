"""Shared resources: the XML objects exchanged between peers.

"The shared object will always be an XML object described by the
community schema.  It may or may not have links to network accessible
files that are flagged as attachments" (paper §IV-C.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.schema.model import Schema
from repro.storage.document_store import resource_id_for
from repro.xmlkit.dom import Element
from repro.xmlkit.parser import parse as parse_xml
from repro.xmlkit.serializer import pretty, serialize


@dataclass
class Resource:
    """One shared object: an XML document plus its community context."""

    community_id: str
    document: Element
    title: str = ""
    attachments: tuple[str, ...] = ()
    provider_id: str = ""

    @property
    def resource_id(self) -> str:
        """The stable content-derived identity of this object."""
        return resource_id_for(self.community_id, self.document)

    @classmethod
    def from_xml_text(cls, community_id: str, text: str, **kwargs) -> "Resource":
        """Parse ``text`` into a resource of ``community_id``."""
        document = parse_xml(text, check_namespaces=False, keep_whitespace_text=False)
        return cls(community_id=community_id, document=document.root, **kwargs)

    # ------------------------------------------------------------------
    def metadata(self, schema: Schema, *, searchable_only: bool = True) -> dict[str, list[str]]:
        """Extract field values (path → values) according to ``schema``.

        With ``searchable_only`` (the default) only fields the schema
        author marked searchable are extracted — this is the index
        filter of the paper's case study.  Attachment URIs are always
        included under the reserved ``__attachments__`` key so the
        download path can find them.
        """
        fields = schema.searchable_fields() if searchable_only else schema.fields()
        values: dict[str, list[str]] = {}
        for info in fields:
            found = self._values_at(info.path)
            if found:
                values[info.path] = found
        attachment_uris = list(self.attachments)
        for info in schema.attachment_fields():
            attachment_uris.extend(self._values_at(info.path))
        if attachment_uris:
            values["__attachments__"] = sorted(set(uri for uri in attachment_uris if uri.strip()))
        return values

    def display_title(self, schema: Optional[Schema] = None) -> str:
        """A human-readable title: explicit title, else the first field value."""
        if self.title:
            return self.title
        if schema is not None:
            for info in schema.fields():
                values = self._values_at(info.path)
                if values and values[0]:
                    return values[0]
        text = self.document.text_content().strip()
        return text[:48] if text else self.resource_id

    def _values_at(self, path: str) -> list[str]:
        nodes = [self.document]
        for part in path.split("/"):
            found: list[Element] = []
            for node in nodes:
                found.extend(node.find_all(part))
            nodes = found
        return [node.text_content().strip() for node in nodes if node.text_content().strip()]

    # ------------------------------------------------------------------
    def to_xml_text(self, *, pretty_print: bool = False) -> str:
        if pretty_print:
            return pretty(self.document, xml_declaration=False)
        return serialize(self.document, xml_declaration=False)

    def size_bytes(self) -> int:
        return len(self.to_xml_text().encode("utf-8"))
