"""Communities, the community schema of Fig. 3 and the root community.

The central idea of the paper is the metaclass analogy:

    *metaclass is to a_class is to an_object* what
    *community is to mp3-community is to mp3*.

A community is described by an XML object conforming to the bootstrap
**community schema** (Fig. 3 of the paper, reproduced verbatim below).
Those community objects are shared inside the **root community** — the
"Community-sharing community" — so discovering a community is just
searching for an object, and joining one means downloading its schema.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.errors import CommunityError
from repro.core.resource import Resource
from repro.schema.model import Schema
from repro.schema.parser import parse_schema_text
from repro.schema.validator import validate
from repro.xmlkit.dom import Element
from repro.xmlkit.parser import parse as parse_xml
from repro.xmlkit.serializer import serialize

#: The identifier of the root ("community-sharing") community every peer
#: belongs to by default.
ROOT_COMMUNITY_ID = "up2p-root"

#: Protocols enumerated by the community schema (Fig. 3).
KNOWN_PROTOCOLS = ("", "Napster", "Gnutella", "FastTrack")

#: The XML Schema for resource-sharing communities, verbatim from Fig. 3
#: of the paper (whitespace normalized).
COMMUNITY_SCHEMA_XSD = """<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="community">
  <complexType>
   <sequence>
    <element name="name" type="xsd:string"/>
    <element name="description" type="xsd:string"/>
    <element name="keywords" type="xsd:string"/>
    <element name="category" type="xsd:string"/>
    <element name="security" type="xsd:string"/>
    <element name="protocol" type="protocolTypes"/>
    <element name="schema" type="xsd:anyURI"/>
    <element name="displaystyle" type="xsd:anyURI"/>
    <element name="createstyle" type="xsd:anyURI"/>
    <element name="searchstyle" type="xsd:anyURI"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="protocolTypes">
  <restriction base="string">
   <enumeration value=""/>
   <enumeration value="Napster"/>
   <enumeration value="Gnutella"/>
   <enumeration value="FastTrack"/>
  </restriction>
 </simpleType>
</schema>
"""


@dataclass(frozen=True)
class CommunityDescriptor:
    """The attributes of a community, one per element of the Fig. 3 schema."""

    name: str
    description: str = ""
    keywords: str = ""
    category: str = ""
    security: str = "none"
    protocol: str = ""
    schema_uri: str = ""
    displaystyle: str = ""
    createstyle: str = ""
    searchstyle: str = ""

    def __post_init__(self) -> None:
        if not self.name.strip():
            raise CommunityError("a community needs a non-empty name")
        if self.protocol not in KNOWN_PROTOCOLS:
            raise CommunityError(
                f"protocol {self.protocol!r} is not one of {KNOWN_PROTOCOLS}"
            )

    # ------------------------------------------------------------------
    def to_xml(self) -> Element:
        """The community object: an instance of the Fig. 3 schema."""
        root = Element("community")
        root.make_child("name", text=self.name)
        root.make_child("description", text=self.description)
        root.make_child("keywords", text=self.keywords)
        root.make_child("category", text=self.category)
        root.make_child("security", text=self.security)
        root.make_child("protocol", text=self.protocol)
        root.make_child("schema", text=self.schema_uri)
        root.make_child("displaystyle", text=self.displaystyle)
        root.make_child("createstyle", text=self.createstyle)
        root.make_child("searchstyle", text=self.searchstyle)
        return root

    def to_xml_text(self) -> str:
        return serialize(self.to_xml(), xml_declaration=False)

    @classmethod
    def from_xml(cls, node: Element) -> "CommunityDescriptor":
        if node.local_name != "community":
            raise CommunityError(f"expected a <community> object, found <{node.local_name}>")
        return cls(
            name=node.child_text("name").strip(),
            description=node.child_text("description").strip(),
            keywords=node.child_text("keywords").strip(),
            category=node.child_text("category").strip(),
            security=node.child_text("security").strip() or "none",
            protocol=node.child_text("protocol").strip(),
            schema_uri=node.child_text("schema").strip(),
            displaystyle=node.child_text("displaystyle").strip(),
            createstyle=node.child_text("createstyle").strip(),
            searchstyle=node.child_text("searchstyle").strip(),
        )

    @classmethod
    def from_xml_text(cls, text: str) -> "CommunityDescriptor":
        return cls.from_xml(parse_xml(text, check_namespaces=False).root)


class Community:
    """A resource-sharing community: descriptor + schema + stylesheets."""

    def __init__(
        self,
        descriptor: CommunityDescriptor,
        schema_xsd: str,
        *,
        community_id: Optional[str] = None,
        display_stylesheet: str = "",
        create_stylesheet: str = "",
        search_stylesheet: str = "",
        index_filter_fields: Optional[tuple[str, ...]] = None,
    ) -> None:
        self.descriptor = descriptor
        self.schema_xsd = schema_xsd
        try:
            self.schema: Schema = parse_schema_text(schema_xsd)
        except Exception as error:
            raise CommunityError(
                f"community {descriptor.name!r} has an unusable schema: {error}"
            ) from error
        self.community_id = community_id or derive_community_id(descriptor.name, schema_xsd)
        self.display_stylesheet = display_stylesheet
        self.create_stylesheet = create_stylesheet
        self.search_stylesheet = search_stylesheet
        # Optional override of which field paths get indexed (the custom
        # index-filter stylesheet of the design-pattern case study).
        self.index_filter_fields = index_filter_fields

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def root_element_name(self) -> str:
        return self.schema.root_element().name

    def searchable_field_paths(self) -> list[str]:
        """The field paths that feed the index for this community."""
        if self.index_filter_fields is not None:
            return list(self.index_filter_fields)
        return [info.path for info in self.schema.searchable_fields()]

    # ------------------------------------------------------------------
    def validate_object(self, document: Element):
        """Validate a shared object against this community's schema."""
        return validate(self.schema, document)

    def extract_metadata(self, resource: Resource) -> dict[str, list[str]]:
        """Apply the community's index filter to one resource."""
        metadata = resource.metadata(self.schema, searchable_only=True)
        if self.index_filter_fields is None:
            return metadata
        kept = {
            path: values
            for path, values in metadata.items()
            if path in self.index_filter_fields or path == "__attachments__"
        }
        # Fields named by the filter but not marked searchable in the
        # schema are extracted too: the filter stylesheet wins.
        full = resource.metadata(self.schema, searchable_only=False)
        for path in self.index_filter_fields:
            if path not in kept and path in full:
                kept[path] = full[path]
        return kept

    # ------------------------------------------------------------------
    # The community *as a shared resource* (the metaclass move)
    # ------------------------------------------------------------------
    def to_resource(self) -> Resource:
        """Wrap this community as an object of the root community."""
        return Resource(
            community_id=ROOT_COMMUNITY_ID,
            document=self.descriptor.to_xml(),
            title=self.descriptor.name,
            attachments=(self.descriptor.schema_uri,) if self.descriptor.schema_uri else (),
        )

    @classmethod
    def from_resource(cls, resource: Resource, schema_xsd: str, **kwargs) -> "Community":
        """Rebuild a community from a downloaded community object."""
        descriptor = CommunityDescriptor.from_xml(resource.document)
        return cls(descriptor, schema_xsd, **kwargs)

    def with_descriptor(self, **changes) -> "Community":
        """A copy of this community with some descriptor fields changed."""
        return Community(
            replace(self.descriptor, **changes),
            self.schema_xsd,
            display_stylesheet=self.display_stylesheet,
            create_stylesheet=self.create_stylesheet,
            search_stylesheet=self.search_stylesheet,
            index_filter_fields=self.index_filter_fields,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Community {self.name!r} id={self.community_id} root={self.root_element_name}>"


# ----------------------------------------------------------------------
def derive_community_id(name: str, schema_xsd: str) -> str:
    """Stable community identifier derived from name and schema."""
    digest = hashlib.sha1()
    digest.update(name.strip().lower().encode("utf-8"))
    digest.update(b"\x00")
    digest.update(" ".join(schema_xsd.split()).encode("utf-8"))
    return f"community-{digest.hexdigest()[:16]}"


def root_community() -> Community:
    """The bootstrap community: the community of communities.

    "U-P2P provides one default schema as a bootstrap: a schema for
    community objects.  Thus through the same facility, users can search
    for objects within a community or search for a community itself."
    """
    descriptor = CommunityDescriptor(
        name="Community",
        description="The community-sharing community: discover and join resource-sharing communities.",
        keywords="community discovery bootstrap root",
        category="meta",
        security="none",
        protocol="",
        schema_uri="up2p:community.xsd",
    )
    return Community(descriptor, COMMUNITY_SCHEMA_XSD, community_id=ROOT_COMMUNITY_ID)


def community_schema() -> Schema:
    """The parsed Fig. 3 schema (used by tests and the bootstrap)."""
    return parse_schema_text(COMMUNITY_SCHEMA_XSD)
