"""Default stylesheets: the generative role of XML Schema and XSLT.

"U-P2P provides default stylesheets that operate on any community
schema, but users are encouraged to create their own stylesheets to
customize their community" (paper §IV-A).  The three defaults below are
real XSLT documents executed by :mod:`repro.xslt`:

* the **create** stylesheet transforms a community *schema* into an
  HTML form for entering attribute values,
* the **search** stylesheet transforms the schema into a search form,
* the **view** stylesheet transforms a shared *object* into an HTML
  page showing all its attributes.

Together they are the pipeline of the paper's Fig. 1 / Fig. 2: the
schema instantiates the Create form, Search form, View page and the
indexed attributes.
"""

from __future__ import annotations

from repro.xmlkit.parser import parse as parse_xml
from repro.xslt.engine import TransformResult, Transformer
from repro.xslt.model import Stylesheet
from repro.xslt.parser import parse_stylesheet_text

#: Transforms a community schema (XSD) into an HTML Create form.
DEFAULT_CREATE_STYLESHEET = """<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <form class="up2p-create" method="post" action="create">
      <h2>Create a <xsl:value-of select="schema/element/@name"/> object</h2>
      <table class="fields">
        <xsl:for-each select="//element[@type]">
          <tr>
            <td class="label"><xsl:value-of select="@name"/></td>
            <td>
              <input type="text" name="{@name}" class="{@type}"/>
            </td>
          </tr>
        </xsl:for-each>
      </table>
      <input type="submit" value="Share"/>
    </form>
  </xsl:template>
</xsl:stylesheet>
"""

#: Transforms a community schema (XSD) into an HTML Search form.
DEFAULT_SEARCH_STYLESHEET = """<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <form class="up2p-search" method="get" action="search">
      <h2>Search the <xsl:value-of select="schema/element/@name"/> community</h2>
      <table class="fields">
        <xsl:for-each select="//element[@type]">
          <xsl:choose>
            <xsl:when test="@searchable = 'true'">
              <tr class="searchable">
                <td class="label"><xsl:value-of select="@name"/></td>
                <td><input type="text" name="{@name}"/></td>
              </tr>
            </xsl:when>
            <xsl:otherwise>
              <tr class="not-indexed">
                <td class="label"><xsl:value-of select="@name"/></td>
                <td><input type="text" name="{@name}" disabled="disabled"/></td>
              </tr>
            </xsl:otherwise>
          </xsl:choose>
        </xsl:for-each>
      </table>
      <input type="submit" value="Search"/>
    </form>
  </xsl:template>
</xsl:stylesheet>
"""

#: Transforms a shared object (instance XML) into an HTML View page.
DEFAULT_VIEW_STYLESHEET = """<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <div class="up2p-view">
      <h2><xsl:value-of select="name(*)"/></h2>
      <table class="attributes">
        <xsl:apply-templates select="*/*"/>
      </table>
    </div>
  </xsl:template>
  <xsl:template match="*">
    <tr>
      <td class="label"><xsl:value-of select="name()"/></td>
      <td>
        <xsl:choose>
          <xsl:when test="count(*) &gt; 0">
            <table class="nested">
              <xsl:apply-templates select="*"/>
            </table>
          </xsl:when>
          <xsl:otherwise>
            <xsl:value-of select="."/>
          </xsl:otherwise>
        </xsl:choose>
      </td>
    </tr>
  </xsl:template>
</xsl:stylesheet>
"""

#: Extracts the searchable attribute values of an object as a flat
#: <indexed> document — the "Indexed Attribute XSL" box of Fig. 1.
DEFAULT_INDEX_FILTER_STYLESHEET = """<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="xml"/>
  <xsl:template match="/">
    <indexed>
      <xsl:for-each select="*/*">
        <xsl:if test="count(*) = 0">
          <attribute name="{name()}"><xsl:value-of select="."/></attribute>
        </xsl:if>
      </xsl:for-each>
    </indexed>
  </xsl:template>
</xsl:stylesheet>
"""


class StylesheetSet:
    """The compiled default (or custom) stylesheets of one community."""

    def __init__(
        self,
        *,
        create: str = DEFAULT_CREATE_STYLESHEET,
        search: str = DEFAULT_SEARCH_STYLESHEET,
        view: str = DEFAULT_VIEW_STYLESHEET,
        index_filter: str = DEFAULT_INDEX_FILTER_STYLESHEET,
    ) -> None:
        self.create_text = create or DEFAULT_CREATE_STYLESHEET
        self.search_text = search or DEFAULT_SEARCH_STYLESHEET
        self.view_text = view or DEFAULT_VIEW_STYLESHEET
        self.index_filter_text = index_filter or DEFAULT_INDEX_FILTER_STYLESHEET
        self._create = _compile(self.create_text)
        self._search = _compile(self.search_text)
        self._view = _compile(self.view_text)
        self._index_filter = _compile(self.index_filter_text)

    # ------------------------------------------------------------------
    def render_create_form(self, schema_xsd: str) -> str:
        """Generate the HTML Create form from a community schema."""
        return self._apply(self._create, schema_xsd).serialize()

    def render_search_form(self, schema_xsd: str) -> str:
        """Generate the HTML Search form from a community schema."""
        return self._apply(self._search, schema_xsd).serialize()

    def render_view(self, object_xml: str) -> str:
        """Render a shared object for viewing."""
        return self._apply(self._view, object_xml).serialize()

    def extract_indexed_attributes(self, object_xml: str) -> dict[str, list[str]]:
        """Run the index-filter stylesheet and return path → values."""
        result = self._apply(self._index_filter, object_xml)
        values: dict[str, list[str]] = {}
        root = result.root
        if root is None:
            return values
        for attribute in root.find_all("attribute"):
            name = attribute.get("name", "")
            if not name:
                continue
            values.setdefault(name, []).append(attribute.text_content().strip())
        return values

    # ------------------------------------------------------------------
    @staticmethod
    def _apply(transformer: Transformer, source_xml: str) -> TransformResult:
        document = parse_xml(source_xml, check_namespaces=False, keep_whitespace_text=False)
        return transformer.transform(document)


def _compile(stylesheet_text: str) -> Transformer:
    return Transformer(parse_stylesheet_text(stylesheet_text))


def compile_stylesheet(stylesheet_text: str) -> Stylesheet:
    """Parse a stylesheet's text (exported for custom community styles)."""
    return parse_stylesheet_text(stylesheet_text)
