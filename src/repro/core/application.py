"""The generated application façade.

"U-P2P is used to generate a customized application from a description
of the attributes of the object without additional programming"
(paper §I).  :class:`Application` is that generated application: given
a servent and one community, it exposes publish / search / view /
download for that community's object type and nothing else — the same
surface a Napster-for-X clone would offer, derived entirely from the
community schema.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.community import Community
from repro.core.forms import CreateForm, FormValues, SearchForm
from repro.core.resource import Resource
from repro.core.servent import DownloadedObject, Servent
from repro.network.base import SearchResponse, SearchResult
from repro.storage.query import Query


class Application:
    """A single-community file-sharing application generated from a schema."""

    def __init__(self, servent: Servent, community: Community) -> None:
        self.servent = servent
        self.community = community
        if not servent.registry.is_joined(community.community_id):
            servent.join_community(community)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, servent: Servent, name: str, schema_xsd: str, **community_options) -> "Application":
        """Generate the application by creating (and joining) the community."""
        community = servent.create_community(name, schema_xsd, **community_options)
        return cls(servent, community)

    # ------------------------------------------------------------------
    # The generated functions
    # ------------------------------------------------------------------
    @property
    def object_name(self) -> str:
        """The kind of object this application shares (``mp3``, ``pattern`` …)."""
        return self.community.root_element_name

    def create_form(self) -> CreateForm:
        return self.servent.create_form(self.community.community_id)

    def search_form(self) -> SearchForm:
        return self.servent.search_form(self.community.community_id)

    def create_page_html(self) -> str:
        """The Create screen, generated from the schema by XSLT."""
        return self.servent.render_create_form(self.community.community_id)

    def search_page_html(self) -> str:
        """The Search screen, generated from the schema by XSLT."""
        return self.servent.render_search_form(self.community.community_id)

    def publish(self, values: FormValues, *, attachments: Sequence[str] = ()) -> Resource:
        """Create and share one object."""
        return self.servent.create_object(
            self.community.community_id, values, attachments=attachments
        )

    def publish_xml(self, xml_text: str, *, attachments: Sequence[str] = ()) -> Resource:
        """Share an object already written as XML."""
        resource = Resource.from_xml_text(
            self.community.community_id, xml_text, attachments=tuple(attachments)
        )
        self.servent.publish_resource(resource)
        return resource

    def search(self, criteria: Union[str, FormValues, Query], *, max_results: int = 100) -> SearchResponse:
        """Search the community."""
        return self.servent.search(self.community.community_id, criteria, max_results=max_results)

    def browse(self, *, max_results: int = 100) -> SearchResponse:
        return self.servent.browse(self.community.community_id, max_results=max_results)

    def download(self, result: SearchResult) -> DownloadedObject:
        return self.servent.download(result)

    def view(self, resource_id: str) -> str:
        """Render one locally available object as HTML."""
        return self.servent.view(resource_id)

    def view_resource(self, resource: Resource) -> str:
        """Render a resource object directly (without requiring local storage)."""
        styles = self.servent.styles_for(self.community.community_id)
        return styles.render_view(resource.to_xml_text())

    # ------------------------------------------------------------------
    def shared_objects(self):
        """Objects this peer shares in the community."""
        return self.servent.local_objects(self.community.community_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Application community={self.community.name!r} object={self.object_name!r}>"
