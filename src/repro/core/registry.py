"""The per-servent community registry.

Tracks the communities a servent *knows about* (their descriptors were
seen in root-community search results) and the ones it has *joined*
(schema downloaded, searches allowed).  "All users are members of the
global or root community by default" (paper §IV-A), so the registry is
created with the root community already joined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.community import Community, ROOT_COMMUNITY_ID, root_community
from repro.core.errors import CommunityError, NotAMemberError


@dataclass
class CommunityRegistry:
    """Known and joined communities of one servent."""

    joined: dict[str, Community] = field(default_factory=dict)
    known: dict[str, Community] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if ROOT_COMMUNITY_ID not in self.joined:
            bootstrap = root_community()
            self.joined[bootstrap.community_id] = bootstrap
            self.known[bootstrap.community_id] = bootstrap

    # ------------------------------------------------------------------
    @property
    def root(self) -> Community:
        return self.joined[ROOT_COMMUNITY_ID]

    def register(self, community: Community) -> Community:
        """Record a community the servent has learned about."""
        self.known[community.community_id] = community
        return community

    def join(self, community: Community) -> Community:
        """Join a community (requires having its schema — i.e. the object)."""
        self.register(community)
        self.joined[community.community_id] = community
        return community

    def leave(self, community_id: str) -> None:
        if community_id == ROOT_COMMUNITY_ID:
            raise CommunityError("the root community cannot be left")
        self.joined.pop(community_id, None)

    # ------------------------------------------------------------------
    def get(self, community_id: str) -> Optional[Community]:
        return self.joined.get(community_id) or self.known.get(community_id)

    def require_joined(self, community_id: str) -> Community:
        """Return a joined community or raise :class:`NotAMemberError`."""
        community = self.joined.get(community_id)
        if community is None:
            known = self.known.get(community_id)
            hint = f" (known but not joined: {known.name!r})" if known else ""
            raise NotAMemberError(
                f"not a member of community {community_id!r}{hint}; join it first"
            )
        return community

    def is_joined(self, community_id: str) -> bool:
        return community_id in self.joined

    def find_by_name(self, name: str) -> Optional[Community]:
        wanted = name.strip().lower()
        for community in self.known.values():
            if community.name.strip().lower() == wanted:
                return community
        return None

    def joined_ids(self) -> list[str]:
        return sorted(self.joined)

    def __iter__(self) -> Iterator[Community]:
        return iter(self.joined.values())

    def __len__(self) -> int:
        return len(self.joined)
