"""Static HTML pages for a servent — the web-application face of U-P2P.

The original prototype was "a web-based application: any browser can be
used to interface to a U-P2P servent" (§IV-B).  This module renders the
pages that interface consisted of — a home page listing communities, and
per-community Create, Search, Results and View pages — as plain HTML
strings, so a downstream user can serve them from any web framework (or
dump them to disk) without the library depending on one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.community import Community, ROOT_COMMUNITY_ID
from repro.core.servent import Servent
from repro.network.base import SearchResponse
from repro.xmlkit.dom import Element
from repro.xmlkit.escape import escape_text
from repro.xslt.html import render_html

_STYLE = (
    "body{font-family:sans-serif;margin:2em;}table{border-collapse:collapse;}"
    "td,th{border:1px solid #999;padding:4px 8px;}h1{color:#223;}"
    ".nav a{margin-right:1em;}"
)


class WebUI:
    """Renders a servent's pages as static HTML."""

    def __init__(self, servent: Servent, *, title: str = "U-P2P") -> None:
        self.servent = servent
        self.title = title

    # ------------------------------------------------------------------
    # Page skeleton
    # ------------------------------------------------------------------
    def _page(self, heading: str, body_html: str) -> str:
        nav = (
            '<div class="nav"><a href="index.html">Home</a>'
            '<a href="communities.html">Communities</a></div>'
        )
        return (
            "<!DOCTYPE html>\n"
            f"<html><head><meta charset=\"utf-8\"><title>{escape_text(self.title)} — "
            f"{escape_text(heading)}</title><style>{_STYLE}</style></head>"
            f"<body><h1>{escape_text(heading)}</h1>{nav}{body_html}</body></html>"
        )

    # ------------------------------------------------------------------
    # Pages
    # ------------------------------------------------------------------
    def home_page(self) -> str:
        """The servent's home page: identity, statistics, memberships."""
        stats = self.servent.statistics()
        table = Element("table")
        for key in sorted(stats):
            row = table.make_child("tr")
            row.make_child("th", text=key.replace("_", " "))
            row.make_child("td", text=str(stats[key]))
        memberships = Element("ul")
        for community in self.servent.joined_communities():
            item = memberships.make_child("li")
            item.make_child("a", text=community.name,
                            attributes={"href": f"community-{community.community_id}.html"})
        body = (f"<p>Servent <strong>{escape_text(self.servent.peer_id)}</strong> on the "
                f"<em>{escape_text(self.servent.network.protocol_name)}</em> network layer.</p>"
                + render_html([table]) + "<h2>Joined communities</h2>" + render_html([memberships]))
        return self._page(f"Servent {self.servent.peer_id}", body)

    def communities_page(self, discovery: Optional[SearchResponse] = None) -> str:
        """The community browser: the root community's search results."""
        response = discovery or self.servent.search_communities()
        table = Element("table")
        header = table.make_child("tr")
        for column in ("name", "description", "keywords", "category", "protocol", ""):
            header.make_child("th", text=column)
        for result in response.results:
            metadata = {path: values[0] if values else "" for path, values in result.metadata.items()}
            row = table.make_child("tr")
            row.make_child("td", text=metadata.get("name", result.title))
            row.make_child("td", text=metadata.get("description", ""))
            row.make_child("td", text=metadata.get("keywords", ""))
            row.make_child("td", text=metadata.get("category", ""))
            row.make_child("td", text=metadata.get("protocol", "") or "(any)")
            cell = row.make_child("td")
            cell.make_child("a", text="join", attributes={"href": f"join-{result.resource_id}.html"})
        body = (f"<p>{len(response.results)} communities discovered in the root community.</p>"
                + render_html([table]))
        return self._page("Community discovery", body)

    def community_page(self, community_id: str) -> str:
        """One community's landing page with its Create and Search forms."""
        community = self.servent.registry.require_joined(community_id)
        create_html = self.servent.render_create_form(community_id)
        search_html = self.servent.render_search_form(community_id)
        shared = self.servent.local_objects(community_id)
        listing = Element("ul")
        for stored in shared:
            item = listing.make_child("li")
            item.make_child("a", text=stored.title or stored.resource_id,
                            attributes={"href": f"view-{stored.resource_id}.html"})
        body = (f"<p>{escape_text(community.descriptor.description)}</p>"
                f"<h2>Create</h2>{create_html}<h2>Search</h2>{search_html}"
                f"<h2>Locally shared objects ({len(shared)})</h2>" + render_html([listing]))
        return self._page(f"Community: {community.name}", body)

    def results_page(self, community: Community, response: SearchResponse) -> str:
        """Search results: title, provider, hops, download link."""
        table = Element("table")
        header = table.make_child("tr")
        for column in ("title", "provider", "hops", ""):
            header.make_child("th", text=column)
        for result in response.results:
            row = table.make_child("tr")
            row.make_child("td", text=result.title)
            row.make_child("td", text=result.provider_id)
            row.make_child("td", text=str(result.hops))
            cell = row.make_child("td")
            cell.make_child("a", text="download",
                            attributes={"href": f"download-{result.resource_id}.html"})
        summary = (f"<p>{response.result_count} results for <code>"
                   f"{escape_text(response.query.describe())}</code> "
                   f"({response.messages_sent} messages, "
                   f"{response.latency_ms:.0f} ms simulated).</p>")
        return self._page(f"Search results — {community.name}", summary + render_html([table]))

    def view_page(self, resource_id: str) -> str:
        """The View function's page for one locally available object."""
        rendered = self.servent.view(resource_id)
        stored = self.servent.repository.retrieve(resource_id)
        return self._page(f"View: {stored.title or resource_id}", rendered)

    # ------------------------------------------------------------------
    def export_site(self, directory: Union[str, Path]) -> list[str]:
        """Write a browsable static snapshot of this servent to ``directory``.

        Returns the list of files written (relative names).
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written: list[str] = []

        def write(name: str, content: str) -> None:
            (target / name).write_text(content, encoding="utf-8")
            written.append(name)

        write("index.html", self.home_page())
        write("communities.html", self.communities_page())
        for community in self.servent.joined_communities():
            if community.community_id == ROOT_COMMUNITY_ID:
                continue
            write(f"community-{community.community_id}.html",
                  self.community_page(community.community_id))
        for stored in self.servent.repository.documents:
            write(f"view-{stored.resource_id}.html", self.view_page(stored.resource_id))
        return written
