"""The U-P2P servent: Create, Search, View, download and community
discovery for one peer.

The servent is the per-user application of the paper's §IV: it owns a
peer in the network, a community registry and the stylesheet pipeline,
and exposes the three "important functions" (Create, Search, View) plus
the community operations that fall out of the metaclass move (create a
community, search for communities, join one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.community import (
    Community,
    CommunityDescriptor,
    ROOT_COMMUNITY_ID,
    derive_community_id,
)
from repro.core.errors import CommunityError, InvalidObjectError
from repro.core.filespace import FileSpace, filespace_for
from repro.core.forms import CreateForm, FormValues, SearchForm
from repro.core.registry import CommunityRegistry
from repro.core.resource import Resource
from repro.core.stylesheets import StylesheetSet
from repro.network.base import PeerNetwork, RetrieveResult, SearchResponse, SearchResult
from repro.network.peers import Peer
from repro.storage.query import Query
from repro.storage.repository import PublishResult


@dataclass
class DownloadedObject:
    """What a download produced: the resource plus its transfer record."""

    resource: Resource
    retrieve: RetrieveResult

    @property
    def resource_id(self) -> str:
        return self.resource.resource_id


class Servent:
    """One user's U-P2P node."""

    def __init__(
        self,
        peer_id: str,
        network: PeerNetwork,
        *,
        stylesheets: Optional[StylesheetSet] = None,
    ) -> None:
        self.network = network
        self.peer: Peer = network.peers.get(peer_id) or network.create_peer(peer_id)
        self.registry = CommunityRegistry()
        self.stylesheets = stylesheets or StylesheetSet()
        self.filespace: FileSpace = filespace_for(network)
        self.peer.join_community(ROOT_COMMUNITY_ID)
        # Per-community custom stylesheet sets (case-study customization).
        self._community_styles: dict[str, StylesheetSet] = {}

    # ------------------------------------------------------------------
    @property
    def peer_id(self) -> str:
        return self.peer.peer_id

    @property
    def repository(self):
        return self.peer.repository

    def styles_for(self, community_id: str) -> StylesheetSet:
        return self._community_styles.get(community_id, self.stylesheets)

    def set_styles(self, community_id: str, styles: StylesheetSet) -> None:
        """Install custom stylesheets for one community."""
        self._community_styles[community_id] = styles

    # ------------------------------------------------------------------
    # Create (paper §IV-C.1)
    # ------------------------------------------------------------------
    def create_form(self, community_id: str) -> CreateForm:
        community = self.registry.require_joined(community_id)
        return CreateForm.from_schema(community.name, community.schema)

    def render_create_form(self, community_id: str) -> str:
        """The HTML Create form generated from the schema by XSLT."""
        community = self.registry.require_joined(community_id)
        return self.styles_for(community_id).render_create_form(community.schema_xsd)

    def create_object(
        self,
        community_id: str,
        values: FormValues,
        *,
        attachments: Sequence[str] = (),
        strict: bool = True,
    ) -> Resource:
        """Create and share a new object in a joined community."""
        community = self.registry.require_joined(community_id)
        form = CreateForm.from_schema(community.name, community.schema)
        if strict:
            document = form.submit_strict(community.schema, values)
        else:
            document, _ = form.submit(community.schema, values)
        resource = Resource(
            community_id=community.community_id,
            document=document,
            title=_first_value(values) or "",
            attachments=tuple(attachments),
            provider_id=self.peer_id,
        )
        self.publish_resource(resource)
        return resource

    def publish_resource(self, resource: Resource) -> PublishResult:
        """Share an existing resource (e.g. parsed from an XML file)."""
        community = self.registry.require_joined(resource.community_id)
        report = community.validate_object(resource.document)
        if not report.is_valid:
            raise InvalidObjectError(
                f"object rejected by community {community.name!r}: {report.summary()}"
            )
        metadata = community.extract_metadata(resource)
        result = self.repository.publish(
            community.community_id,
            resource.document,
            metadata,
            title=resource.display_title(community.schema),
            attachment_uris=list(metadata.get("__attachments__", [])),
        )
        self.network.publish(
            self.peer_id,
            community.community_id,
            result.resource_id,
            metadata,
            title=resource.display_title(community.schema),
        )
        return result

    # ------------------------------------------------------------------
    # Search (paper §IV-C.2)
    # ------------------------------------------------------------------
    def search_form(self, community_id: str) -> SearchForm:
        community = self.registry.require_joined(community_id)
        return SearchForm.from_schema(community.name, community.schema)

    def render_search_form(self, community_id: str) -> str:
        community = self.registry.require_joined(community_id)
        return self.styles_for(community_id).render_search_form(community.schema_xsd)

    def search(
        self,
        community_id: str,
        criteria: Union[str, FormValues, Query],
        *,
        max_results: int = 100,
    ) -> SearchResponse:
        """Search a joined community.

        ``criteria`` may be a free-text keyword string, a mapping of
        field path → value (a filled-in search form) or an already
        constructed :class:`~repro.storage.query.Query`.
        """
        community = self.registry.require_joined(community_id)
        query = self._as_query(community, criteria)
        return self.network.search(self.peer_id, query, max_results=max_results)

    def browse(self, community_id: str, *, max_results: int = 100) -> SearchResponse:
        """List everything shared in a community (an empty query)."""
        community = self.registry.require_joined(community_id)
        return self.network.search(
            self.peer_id, Query(community_id=community.community_id), max_results=max_results
        )

    def _as_query(self, community: Community, criteria: Union[str, FormValues, Query]) -> Query:
        if isinstance(criteria, Query):
            return criteria
        form = SearchForm.from_schema(community.name, community.schema)
        if isinstance(criteria, str):
            return form.keyword_query(community.community_id, criteria)
        return form.submit(community.community_id, criteria)

    # ------------------------------------------------------------------
    # Download (paper §IV-C.2, second half)
    # ------------------------------------------------------------------
    def download(self, result: SearchResult) -> DownloadedObject:
        """Retrieve a search result's full object (and attachments)."""
        retrieve = self.network.retrieve(self.peer_id, result.provider_id, result.resource_id)
        resource = Resource(
            community_id=retrieve.stored.community_id,
            document=retrieve.stored.document,
            title=retrieve.stored.title,
            provider_id=result.provider_id,
        )
        return DownloadedObject(resource=resource, retrieve=retrieve)

    # ------------------------------------------------------------------
    # View (paper §IV-C.3)
    # ------------------------------------------------------------------
    def view(self, resource_id: str) -> str:
        """Render a locally stored or downloaded object as HTML."""
        stored = self.repository.retrieve(resource_id)
        styles = self.styles_for(stored.community_id)
        return styles.render_view(stored.to_xml_text())

    def local_objects(self, community_id: Optional[str] = None):
        """The objects this servent shares (optionally for one community)."""
        if community_id is None:
            return list(self.repository.documents)
        return self.repository.documents.objects_in(community_id)

    # ------------------------------------------------------------------
    # Community operations (the metaclass move, paper §I and §IV-A)
    # ------------------------------------------------------------------
    def create_community(
        self,
        descriptor_or_name: Union[str, CommunityDescriptor],
        schema_xsd: str,
        *,
        description: str = "",
        keywords: str = "",
        category: str = "",
        protocol: str = "",
        stylesheets: Optional[StylesheetSet] = None,
        index_filter_fields: Optional[Sequence[str]] = None,
    ) -> Community:
        """Create a community, join it and publish it to the root community.

        The schema (and any custom stylesheets) are placed in the shared
        file space under ``up2p:`` URIs so that other peers can join by
        downloading the community object and fetching its schema.
        """
        from dataclasses import replace as _replace

        if isinstance(descriptor_or_name, CommunityDescriptor):
            descriptor = descriptor_or_name
        else:
            descriptor = CommunityDescriptor(
                name=descriptor_or_name,
                description=description,
                keywords=keywords,
                category=category,
                protocol=protocol,
            )
        community_id = derive_community_id(descriptor.name, schema_xsd)
        if not descriptor.schema_uri:
            descriptor = _replace(descriptor, schema_uri=f"up2p:{community_id}/schema.xsd")
        # Custom stylesheets are published by URI so joining peers can fetch
        # them along with the schema (the displaystyle/createstyle/searchstyle
        # attributes of the Fig. 3 community object).
        if stylesheets is not None:
            if not descriptor.displaystyle:
                descriptor = _replace(descriptor, displaystyle=f"up2p:{community_id}/view.xsl")
            if not descriptor.createstyle:
                descriptor = _replace(descriptor, createstyle=f"up2p:{community_id}/create.xsl")
            if not descriptor.searchstyle:
                descriptor = _replace(descriptor, searchstyle=f"up2p:{community_id}/search.xsl")
        community = Community(
            descriptor,
            schema_xsd,
            index_filter_fields=tuple(index_filter_fields) if index_filter_fields else None,
        )
        self.filespace.put(descriptor.schema_uri, schema_xsd)
        if stylesheets is not None:
            self.set_styles(community.community_id, stylesheets)
            if descriptor.displaystyle:
                self.filespace.put(descriptor.displaystyle, stylesheets.view_text)
            if descriptor.createstyle:
                self.filespace.put(descriptor.createstyle, stylesheets.create_text)
            if descriptor.searchstyle:
                self.filespace.put(descriptor.searchstyle, stylesheets.search_text)
        self.registry.join(community)
        self.peer.join_community(community.community_id)
        # The metaclass move: the community is itself an object shared in
        # the root community.
        self.publish_resource(community.to_resource())
        return community

    def search_communities(self, criteria: Union[str, FormValues] = "", *,
                           max_results: int = 100) -> SearchResponse:
        """Discover communities by searching the root community."""
        if isinstance(criteria, str) and not criteria.strip():
            return self.browse(ROOT_COMMUNITY_ID, max_results=max_results)
        return self.search(ROOT_COMMUNITY_ID, criteria, max_results=max_results)

    def join_community(self, result_or_community: Union[SearchResult, Community]) -> Community:
        """Join a community found through discovery.

        Given a root-community search result, the community object is
        downloaded from its provider, its schema fetched by URI, and the
        community added to the registry — "a user must join a community
        by downloading its schema in order to conduct searches in that
        community."
        """
        if isinstance(result_or_community, Community):
            community = result_or_community
            self.registry.join(community)
            self.peer.join_community(community.community_id)
            return community
        result = result_or_community
        if result.community_id != ROOT_COMMUNITY_ID:
            raise CommunityError("join expects a search result from the root community")
        downloaded = self.download(result)
        descriptor = CommunityDescriptor.from_xml(downloaded.resource.document)
        schema_xsd = self.filespace.get(descriptor.schema_uri) if descriptor.schema_uri else None
        if not schema_xsd:
            raise CommunityError(
                f"cannot join {descriptor.name!r}: schema {descriptor.schema_uri!r} is unreachable"
            )
        community = Community(descriptor, schema_xsd)
        custom_view = self.filespace.get(descriptor.displaystyle) if descriptor.displaystyle else None
        custom_create = self.filespace.get(descriptor.createstyle) if descriptor.createstyle else None
        custom_search = self.filespace.get(descriptor.searchstyle) if descriptor.searchstyle else None
        if custom_view or custom_create or custom_search:
            self.set_styles(community.community_id, StylesheetSet(
                create=custom_create or "",
                search=custom_search or "",
                view=custom_view or "",
            ))
        self.registry.join(community)
        self.peer.join_community(community.community_id)
        return community

    def joined_communities(self) -> list[Community]:
        return list(self.registry)

    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, int]:
        stats = self.repository.statistics()
        stats["joined_communities"] = len(self.registry)
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Servent {self.peer_id} communities={len(self.registry)} objects={len(self.repository.documents)}>"


def _first_value(values: FormValues) -> str:
    for value in values.values():
        if isinstance(value, str) and value.strip():
            return value.strip()
        if not isinstance(value, str):
            for item in value:
                if item.strip():
                    return item.strip()
    return ""
