"""Network-accessible files (schemas and stylesheets) by URI.

The community schema of Fig. 3 points at its schema and stylesheets by
URI (``xsd:anyURI`` fields): in the original system these were files
served over HTTP.  The reproduction keeps a shared :class:`FileSpace`
per network — a URI → text mapping standing in for "the web" — so that
joining a community can fetch the schema exactly the way the paper
describes (download the community object, then fetch its schema by
URI).
"""

from __future__ import annotations

from typing import Optional


class FileSpace:
    """A URI-addressed space of text documents (schemas, stylesheets)."""

    def __init__(self) -> None:
        self._files: dict[str, str] = {}
        self.fetches = 0

    def put(self, uri: str, text: str) -> str:
        """Publish ``text`` under ``uri`` and return the URI."""
        if not uri.strip():
            raise ValueError("a file needs a non-empty URI")
        self._files[uri] = text
        return uri

    def get(self, uri: str) -> Optional[str]:
        """Fetch a document (None when the URI is dangling)."""
        self.fetches += 1
        return self._files.get(uri)

    def has(self, uri: str) -> bool:
        return uri in self._files

    def __len__(self) -> int:
        return len(self._files)


def filespace_for(network) -> FileSpace:
    """The shared file space of a network (created on first use)."""
    space = getattr(network, "_up2p_filespace", None)
    if space is None:
        space = FileSpace()
        network._up2p_filespace = space
    return space
