"""Generated Create and Search forms.

The HTML rendering of forms is produced by the community stylesheets
(:mod:`repro.core.stylesheets`); this module provides the *programmatic*
form model used by the servent and the example applications: which
fields exist, what input type each gets, which are searchable, and how
submitted values become a schema-valid XML object or a structured
query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

from repro.core.errors import InvalidObjectError
from repro.schema.instance import build_instance
from repro.schema.model import FieldInfo, Schema
from repro.schema.validator import ValidationReport, validate
from repro.storage.query import Criterion, Operator, Query
from repro.xmlkit.dom import Element
from repro.xslt.html import render_html

FormValues = Mapping[str, Union[str, Sequence[str]]]


@dataclass(frozen=True)
class FormField:
    """One input of a generated form."""

    path: str
    label: str
    input_type: str                  # 'text' | 'number' | 'date' | 'checkbox' | 'select' | 'url'
    required: bool = False
    repeated: bool = False
    searchable: bool = False
    attachment: bool = False
    options: tuple[str, ...] = ()
    documentation: str = ""

    @classmethod
    def from_field_info(cls, info: FieldInfo) -> "FormField":
        return cls(
            path=info.path,
            label=info.label,
            input_type=_input_type_for(info),
            required=not info.optional,
            repeated=info.repeated,
            searchable=info.searchable,
            attachment=info.attachment,
            options=tuple(info.enumeration),
            documentation=info.documentation,
        )


def _input_type_for(info: FieldInfo) -> str:
    if info.enumeration:
        return "select"
    type_name = info.type_name.split(":")[-1]
    if type_name in ("integer", "int", "long", "short", "decimal", "float", "double",
                     "nonNegativeInteger", "positiveInteger"):
        return "number"
    if type_name in ("date", "dateTime", "gYear"):
        return "date"
    if type_name == "boolean":
        return "checkbox"
    if type_name == "anyURI":
        return "url"
    return "text"


@dataclass
class CreateForm:
    """The Create function's form for one community."""

    community_name: str
    root_element: str
    fields: list[FormField] = field(default_factory=list)

    @classmethod
    def from_schema(cls, community_name: str, schema: Schema) -> "CreateForm":
        return cls(
            community_name=community_name,
            root_element=schema.root_element().name,
            fields=[FormField.from_field_info(info) for info in schema.fields()],
        )

    # ------------------------------------------------------------------
    def submit(self, schema: Schema, values: FormValues) -> tuple[Element, ValidationReport]:
        """Build the shared object from submitted values and validate it."""
        document = build_instance(schema, dict(values))
        report = validate(schema, document)
        return document, report

    def submit_strict(self, schema: Schema, values: FormValues) -> Element:
        """Like :meth:`submit` but raise if the object does not validate."""
        document, report = self.submit(schema, values)
        if not report.is_valid:
            raise InvalidObjectError(
                f"object for community {self.community_name!r} is invalid: {report.summary()}"
            )
        return document

    # ------------------------------------------------------------------
    def to_html(self) -> str:
        """Render the form as HTML (programmatic path, no stylesheet)."""
        form = Element("form", {"class": "up2p-create", "method": "post", "action": "create"})
        form.make_child("h2", text=f"Create a {self.root_element} object")
        table = form.make_child("table", attributes={"class": "fields"})
        for form_field in self.fields:
            row = table.make_child("tr")
            row.make_child("td", text=form_field.label, attributes={"class": "label"})
            cell = row.make_child("td")
            _append_input(cell, form_field)
        form.make_child("input", attributes={"type": "submit", "value": "Share"})
        return render_html([form])


@dataclass
class SearchForm:
    """The Search function's form for one community."""

    community_name: str
    root_element: str
    fields: list[FormField] = field(default_factory=list)

    @classmethod
    def from_schema(cls, community_name: str, schema: Schema) -> "SearchForm":
        searchable_paths = {info.path for info in schema.searchable_fields()}
        return cls(
            community_name=community_name,
            root_element=schema.root_element().name,
            fields=[
                FormField.from_field_info(info)
                for info in schema.fields()
                if info.path in searchable_paths
            ],
        )

    # ------------------------------------------------------------------
    def submit(self, community_id: str, values: FormValues, *,
               operator: Operator = Operator.CONTAINS) -> Query:
        """Turn filled-in form fields into a structured query."""
        query = Query(community_id=community_id)
        known_paths = {form_field.path for form_field in self.fields}
        for path, raw in values.items():
            if path not in known_paths:
                continue
            text = raw if isinstance(raw, str) else " ".join(raw)
            if not text.strip():
                continue
            form_field = next(f for f in self.fields if f.path == path)
            chosen = Operator.EQUALS if form_field.options else operator
            query.criteria.append(Criterion(path, text.strip(), chosen))
        return query

    def keyword_query(self, community_id: str, text: str) -> Query:
        """A free-text query across every searchable field."""
        return Query.keyword(community_id, text)

    # ------------------------------------------------------------------
    def to_html(self) -> str:
        form = Element("form", {"class": "up2p-search", "method": "get", "action": "search"})
        form.make_child("h2", text=f"Search the {self.community_name} community")
        table = form.make_child("table", attributes={"class": "fields"})
        for form_field in self.fields:
            row = table.make_child("tr", attributes={"class": "searchable"})
            row.make_child("td", text=form_field.label, attributes={"class": "label"})
            cell = row.make_child("td")
            _append_input(cell, form_field)
        form.make_child("input", attributes={"type": "submit", "value": "Search"})
        return render_html([form])


def _append_input(cell: Element, form_field: FormField) -> None:
    if form_field.input_type == "select":
        select = cell.make_child("select", attributes={"name": form_field.path})
        for option in form_field.options:
            select.make_child("option", text=option or "(any)", attributes={"value": option})
        return
    attributes = {"type": form_field.input_type, "name": form_field.path}
    if form_field.required:
        attributes["required"] = "required"
    cell.make_child("input", attributes=attributes)
