"""The U-P2P core: the paper's primary contribution.

This package implements the schema-driven, community-centric layer on
top of the substrates:

* :mod:`repro.core.resource` — shared XML objects and their attachments.
* :mod:`repro.core.community` — community descriptors, the bootstrap
  *community schema* of Fig. 3 and the root ("community-sharing")
  community.
* :mod:`repro.core.stylesheets` — the default Create / Search / View
  stylesheets that operate on any community schema, plus helpers for
  custom per-community stylesheets.
* :mod:`repro.core.forms` — generated Create and Search forms.
* :mod:`repro.core.search` — building structured queries from filled-in
  search forms.
* :mod:`repro.core.registry` — the per-servent registry of known and
  joined communities.
* :mod:`repro.core.servent` — the servent: create, search, view,
  download, community creation, discovery and joining.
* :mod:`repro.core.application` — the generated application façade for
  a single community.
"""

from repro.core.application import Application
from repro.core.community import Community, CommunityDescriptor, root_community
from repro.core.errors import CommunityError, NotAMemberError, UP2PError
from repro.core.forms import CreateForm, FormField, SearchForm
from repro.core.registry import CommunityRegistry
from repro.core.resource import Resource
from repro.core.servent import Servent

__all__ = [
    "Servent",
    "Application",
    "Community",
    "CommunityDescriptor",
    "root_community",
    "Resource",
    "CommunityRegistry",
    "CreateForm",
    "SearchForm",
    "FormField",
    "UP2PError",
    "CommunityError",
    "NotAMemberError",
]
