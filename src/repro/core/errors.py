"""Error types for the U-P2P core."""

from __future__ import annotations


class UP2PError(Exception):
    """Base class for core-layer errors."""


class CommunityError(UP2PError):
    """Raised for malformed or unknown communities."""


class NotAMemberError(UP2PError):
    """Raised when an operation requires community membership.

    The paper: "a user must join a community by downloading its schema
    in order to conduct searches in that community."
    """


class InvalidObjectError(UP2PError):
    """Raised when a created object does not validate against its schema."""
