"""Error types for the storage substrate."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for storage-layer failures."""


class ObjectNotFoundError(StorageError):
    """Raised when a resource id does not exist in the store."""


class DuplicateObjectError(StorageError):
    """Raised when an object with the same id is published twice."""


class QueryError(StorageError):
    """Raised for malformed structured queries."""
