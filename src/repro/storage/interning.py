"""Shared-structure interning for metadata carried by many copies.

At population scale the same searchable metadata travels everywhere: a
corpus object published by one peer is advertised to super-peers,
catalogued by the index server, leased to rendezvous points and carried
inside every :class:`~repro.network.base.SearchResult` it produces.
Each copy used to materialize its own ``{path: (values...)}`` mapping
with its own value tuples — at 10k peers that is tens of thousands of
identical tuples holding identical strings.

This module provides one canonical copy per distinct content:

* :func:`intern_values` returns a canonical tuple of interned strings
  for a value sequence — two objects sharing a field value share one
  tuple object and one string object;
* :func:`intern_view` builds a metadata view whose paths, tuples and
  strings are all canonical.

The table is keyed by content, so growth is bounded by the number of
*distinct* field values in play (the corpus vocabulary), not by the
number of peers or copies.  Interning never changes equality — only
identity — so indexes, caches and wire-size accounting behave
bit-identically with or without it (pinned by the contract suite).
"""

from __future__ import annotations

import sys
from typing import Iterable, Mapping

_TUPLES: dict[tuple[str, ...], tuple[str, ...]] = {}


def intern_values(values: Iterable[str]) -> tuple[str, ...]:
    """Canonical tuple of interned strings equal to ``tuple(values)``."""
    key = tuple(values)
    cached = _TUPLES.get(key)
    if cached is None:
        cached = tuple(sys.intern(value) for value in key)
        _TUPLES[cached] = cached
    return cached


def intern_view(metadata: Mapping[str, Iterable[str]]) -> dict[str, tuple[str, ...]]:
    """A metadata view (path → value tuple) built from canonical parts."""
    return {sys.intern(path): intern_values(values)
            for path, values in metadata.items()}


def interned_tuples() -> int:
    """Size of the tuple table (observability for tests/benchmarks)."""
    return len(_TUPLES)


def clear() -> None:
    """Drop the table (test isolation; canonical copies re-form lazily)."""
    _TUPLES.clear()
