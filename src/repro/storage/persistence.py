"""Disk persistence for a peer's repository.

The original servent kept its objects in a database so they survived
restarts; a downstream user of this library needs the same.  The format
is deliberately transparent: one directory per community, one XML file
per object, plus a small XML manifest carrying titles, publishers and
the indexed metadata so the attribute index can be rebuilt without
re-deriving searchable fields from schemas.

Layout::

    <root>/
      manifest.xml
      <community-id>/
        <resource-id>.xml
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.storage.errors import StorageError
from repro.storage.repository import LocalRepository
from repro.xmlkit.dom import Element
from repro.xmlkit.parser import parse_file
from repro.xmlkit.serializer import pretty


def save_repository(repository: LocalRepository, root: Union[str, Path]) -> int:
    """Write every stored object under ``root``; returns the object count."""
    root_path = Path(root)
    root_path.mkdir(parents=True, exist_ok=True)
    manifest = Element("repository", {"owner": repository.owner or ""})
    count = 0
    for stored in repository.documents:
        community_dir = root_path / stored.community_id
        community_dir.mkdir(parents=True, exist_ok=True)
        object_path = community_dir / f"{stored.resource_id}.xml"
        object_path.write_text(pretty(stored.document), encoding="utf-8")
        entry = manifest.make_child("object", attributes={
            "resource-id": stored.resource_id,
            "community": stored.community_id,
            "title": stored.title,
            "publisher": stored.publisher,
        })
        for field_path, values in sorted(stored.metadata.items()):
            for value in values:
                entry.make_child("field", text=value, attributes={"path": field_path})
        count += 1
    (root_path / "manifest.xml").write_text(pretty(manifest), encoding="utf-8")
    return count


def load_repository(root: Union[str, Path], *, owner: str = "") -> LocalRepository:
    """Rebuild a repository (store + index) from a saved directory."""
    root_path = Path(root)
    manifest_path = root_path / "manifest.xml"
    if not manifest_path.exists():
        raise StorageError(f"{root_path} does not contain a repository manifest")
    manifest = parse_file(manifest_path).root
    repository = LocalRepository(owner=owner or manifest.get("owner", ""))
    for entry in manifest.find_all("object"):
        resource_id = entry.get("resource-id", "")
        community_id = entry.get("community", "")
        object_path = root_path / community_id / f"{resource_id}.xml"
        if not object_path.exists():
            raise StorageError(f"manifest references missing object file {object_path}")
        document = parse_file(object_path, keep_whitespace_text=False).root
        metadata: dict[str, list[str]] = {}
        for field in entry.find_all("field"):
            metadata.setdefault(field.get("path", ""), []).append(field.text_content().strip())
        attachments = metadata.get("__attachments__", [])
        stored = repository.publish(
            community_id,
            document,
            metadata,
            title=entry.get("title", ""),
            attachment_uris=list(attachments),
        )
        if stored.resource_id != resource_id:
            raise StorageError(
                f"object {object_path} no longer matches its recorded resource id "
                f"({stored.resource_id} != {resource_id}); the file was modified"
            )
    return repository
