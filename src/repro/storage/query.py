"""The structured query model (the CMIP-query substitute).

Search requests travel between servents as small structured documents:
a community id plus a conjunction of field criteria.  The class has an
XML wire form (used by the network layer and measured in the message-
cost experiments) and an in-memory matching form (used against the
attribute index and directly against metadata dictionaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.storage.errors import QueryError
from repro.storage.index import AttributeIndex, tokenize
from repro.xmlkit.dom import Element
from repro.xmlkit.parser import parse as parse_xml
from repro.xmlkit.serializer import serialize


class Operator(Enum):
    """Comparison operators supported by search criteria."""

    EQUALS = "equals"
    CONTAINS = "contains"      # every word of the value appears in the field
    PREFIX = "prefix"          # some word of the field starts with the value
    ANY = "any"                # keyword match across all searchable fields

    @classmethod
    def from_wire(cls, text: str) -> "Operator":
        try:
            return cls(text)
        except ValueError as error:
            raise QueryError(f"unknown query operator {text!r}") from error


@dataclass(frozen=True)
class Criterion:
    """One field constraint of a query."""

    field_path: str
    value: str
    operator: Operator = Operator.CONTAINS

    def matches(self, values: list[str]) -> bool:
        """Check this criterion against the values of one field."""
        if self.operator == Operator.EQUALS:
            wanted_value = self.value.strip().lower()  # hoisted: loop-invariant
            return any(value.strip().lower() == wanted_value for value in values)
        if self.operator == Operator.CONTAINS or self.operator == Operator.ANY:
            wanted = set(tokenize(self.value))
            if not wanted:
                return True
            present = set()
            for value in values:
                present.update(tokenize(value))
                if wanted.issubset(present):
                    return True
            return False
        if self.operator == Operator.PREFIX:
            stem = self.value.strip().lower()
            return any(
                token.startswith(stem) for value in values for token in tokenize(value)
            )
        raise QueryError(f"unsupported operator {self.operator}")


@dataclass
class Query:
    """A community-scoped conjunctive query."""

    community_id: str
    criteria: list[Criterion] = field(default_factory=list)
    query_id: str = ""
    origin: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def where(self, field_path: str, value: str, operator: Operator = Operator.CONTAINS) -> "Query":
        """Add a criterion and return self (fluent construction)."""
        self.criteria.append(Criterion(field_path, value, operator))
        return self

    @classmethod
    def keyword(cls, community_id: str, text: str) -> "Query":
        """A single keyword query across all searchable fields."""
        return cls(community_id, [Criterion("*", text, Operator.ANY)])

    @property
    def is_empty(self) -> bool:
        return not self.criteria or all(not criterion.value.strip() for criterion in self.criteria)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matches_metadata(self, metadata: dict[str, list[str]]) -> bool:
        """Evaluate against a plain metadata dictionary (path → values)."""
        for criterion in self.criteria:
            if not criterion.value.strip():
                continue
            if criterion.operator == Operator.ANY or criterion.field_path == "*":
                # Tokenize the wanted value once and stream the field
                # values instead of flattening them into a copy first.
                wanted = set(tokenize(criterion.value))
                if not wanted:
                    continue
                present: set[str] = set()
                satisfied = False
                for values in metadata.values():
                    for value in values:
                        present.update(tokenize(value))
                        if wanted.issubset(present):
                            satisfied = True
                            break
                    if satisfied:
                        break
                if not satisfied:
                    return False
                continue
            values = metadata.get(criterion.field_path, [])
            if not values or not criterion.matches(values):
                return False
        return True

    def evaluate(self, index: AttributeIndex) -> set[str]:
        """Evaluate against an attribute index, returning matching ids."""
        result: Optional[set[str]] = None
        for criterion in self.criteria:
            if not criterion.value.strip():
                continue
            if criterion.operator == Operator.ANY or criterion.field_path == "*":
                matched = index.any_field_keyword(self.community_id, criterion.value)
            elif criterion.operator == Operator.EQUALS:
                matched = index.exact(self.community_id, criterion.field_path, criterion.value)
            elif criterion.operator == Operator.PREFIX:
                matched = index.prefix(self.community_id, criterion.field_path, criterion.value)
            else:
                matched = index.keyword(self.community_id, criterion.field_path, criterion.value)
            result = matched if result is None else result & matched
            if not result:
                return set()
        return result if result is not None else set()

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_xml(self) -> Element:
        """Serialize to the XML wire form carried in query messages."""
        root = Element("query", {"community": self.community_id})
        if self.query_id:
            root.set("id", self.query_id)
        if self.origin:
            root.set("origin", self.origin)
        for criterion in self.criteria:
            root.make_child(
                "criterion",
                text=criterion.value,
                attributes={"field": criterion.field_path, "operator": criterion.operator.value},
            )
        return root

    def to_xml_text(self) -> str:
        return serialize(self.to_xml(), xml_declaration=False)

    @classmethod
    def from_xml(cls, node: Element) -> "Query":
        """Parse the XML wire form back into a query."""
        if node.local_name != "query":
            raise QueryError(f"expected a <query> element, found <{node.local_name}>")
        community = node.get("community", "")
        if not community:
            raise QueryError("query is missing the 'community' attribute")
        query = cls(
            community_id=community,
            query_id=node.get("id", ""),
            origin=node.get("origin", ""),
        )
        for child in node.find_all("criterion"):
            query.criteria.append(
                Criterion(
                    field_path=child.get("field", "*"),
                    value=child.text_content().strip(),
                    operator=Operator.from_wire(child.get("operator", "contains")),
                )
            )
        return query

    @classmethod
    def from_xml_text(cls, text: str) -> "Query":
        document = parse_xml(text, check_namespaces=False)
        return cls.from_xml(document.root)

    def wire_size_bytes(self) -> int:
        """Size of the serialized query (message-cost accounting)."""
        return len(self.to_xml_text().encode("utf-8"))

    def describe(self) -> str:
        """Human-readable one-line description."""
        if self.is_empty:
            return f"all objects in {self.community_id}"
        clauses = [
            f"{criterion.field_path} {criterion.operator.value} {criterion.value!r}"
            for criterion in self.criteria
            if criterion.value.strip()
        ]
        return f"{self.community_id}: " + " AND ".join(clauses)
