"""Content-addressed storage of shared XML objects.

Every shared object in U-P2P is an XML document conforming to its
community's schema.  The store keeps those documents partitioned by
community and assigns each a stable *resource id* derived from its
canonical form, so that the same object published by two peers gets the
same identity — which is what makes replication counting possible in
the availability experiments.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.storage.errors import ObjectNotFoundError
from repro.storage.interning import intern_view
from repro.xmlkit.dom import Element
from repro.xmlkit.serializer import canonical, serialize


def resource_id_for(community_id: str, document: Element) -> str:
    """Compute the stable resource id of ``document`` within a community."""
    digest = hashlib.sha1()
    digest.update(community_id.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical(document).encode("utf-8"))
    return digest.hexdigest()[:20]


@dataclass
class StoredObject:
    """One stored XML object plus its bookkeeping meta-data."""

    resource_id: str
    community_id: str
    document: Element
    title: str = ""
    publisher: str = ""
    size_bytes: int = 0
    metadata: dict[str, list[str]] = field(default_factory=dict)
    _metadata_view: Optional[dict[str, tuple[str, ...]]] = field(
        default=None, repr=False, compare=False)
    _metadata_wire_bytes: int = field(default=-1, repr=False, compare=False)

    def to_xml_text(self) -> str:
        """Serialize the stored document (used for transfer size accounting)."""
        return serialize(self.document, xml_declaration=False)

    def metadata_view(self) -> dict[str, tuple[str, ...]]:
        """The searchable metadata as a path → value-tuple mapping.

        Built once and shared: every :class:`SearchResult` generated for
        this object (one per answering peer per query) references the
        same immutable-valued mapping instead of re-copying the
        metadata dictionary.  The paths and value tuples are interned
        (:mod:`repro.storage.interning`), so the thousands of copies of
        one corpus object spread across a large population share one
        canonical tuple per field.  Callers must treat it as read-only.
        """
        if self._metadata_view is None:
            self._metadata_view = intern_view(self.metadata)
        return self._metadata_view

    def __getstate__(self):
        """Drop the interned metadata view before pickling.

        The view's value tuples are canonical *per-process* objects
        (:mod:`repro.storage.interning`); shipping them to another
        process would seed that process with unshared duplicates.
        Nulling the cache makes the first ``metadata_view()`` call
        after unpickling re-intern against the receiving process's
        table, restoring the identity-sharing invariant there.
        """
        state = self.__dict__.copy()
        state["_metadata_view"] = None
        return state

    def metadata_wire_bytes(self) -> int:
        """Approximate wire size of the metadata, measured once."""
        if self._metadata_wire_bytes < 0:
            self._metadata_wire_bytes = sum(
                len(path) + sum(len(value) for value in values)
                for path, values in self.metadata.items()
            )
        return self._metadata_wire_bytes


class DocumentStore:
    """In-memory store of XML objects, partitioned by community."""

    def __init__(self) -> None:
        self._objects: dict[str, StoredObject] = {}
        self._by_community: dict[str, dict[str, StoredObject]] = {}

    # ------------------------------------------------------------------
    def put(
        self,
        community_id: str,
        document: Element,
        *,
        title: str = "",
        publisher: str = "",
        metadata: Optional[dict[str, list[str]]] = None,
    ) -> StoredObject:
        """Store ``document`` and return its record.

        Publishing the same document to the same community twice is
        idempotent: the existing record is returned unchanged, mirroring
        how downloading an already-shared file does not duplicate it.
        """
        resource_id = resource_id_for(community_id, document)
        existing = self._objects.get(resource_id)
        if existing is not None:
            return existing
        record = StoredObject(
            resource_id=resource_id,
            community_id=community_id,
            document=document.copy(),
            title=title or document.text_content().strip()[:64],
            publisher=publisher,
            size_bytes=len(serialize(document, xml_declaration=False).encode("utf-8")),
            metadata=dict(metadata or {}),
        )
        self._objects[resource_id] = record
        self._by_community.setdefault(community_id, {})[resource_id] = record
        return record

    def get(self, resource_id: str) -> StoredObject:
        """Return the stored object with ``resource_id`` or raise."""
        record = self._objects.get(resource_id)
        if record is None:
            raise ObjectNotFoundError(f"no object with resource id {resource_id!r}")
        return record

    def contains(self, resource_id: str) -> bool:
        return resource_id in self._objects

    def delete(self, resource_id: str) -> None:
        """Remove an object (a peer un-sharing a file)."""
        record = self._objects.pop(resource_id, None)
        if record is None:
            raise ObjectNotFoundError(f"no object with resource id {resource_id!r}")
        community = self._by_community.get(record.community_id, {})
        community.pop(resource_id, None)

    # ------------------------------------------------------------------
    def objects_in(self, community_id: str) -> list[StoredObject]:
        """All objects stored for one community."""
        return list(self._by_community.get(community_id, {}).values())

    def communities(self) -> list[str]:
        """Community ids that have at least one stored object."""
        return [community for community, objects in self._by_community.items() if objects]

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[StoredObject]:
        return iter(self._objects.values())

    def total_bytes(self) -> int:
        """Total size of all stored documents (index-size experiments)."""
        return sum(record.size_bytes for record in self._objects.values())
