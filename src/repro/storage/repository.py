"""The per-peer repository: store + index + attachments behind one API.

This is what a U-P2P servent talks to locally: publish an object (store
it and index its searchable fields), evaluate a query against the local
index, and retrieve a full object with its attachments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.storage.attachments import Attachment, AttachmentStore
from repro.storage.document_store import DocumentStore, StoredObject
from repro.storage.index import AttributeIndex
from repro.storage.plan import CompiledQuery
from repro.storage.query import Query
from repro.xmlkit.dom import Element


@dataclass
class PublishResult:
    """What came out of publishing one object locally."""

    stored: StoredObject
    indexed_fields: int
    attachments: list[Attachment] = field(default_factory=list)

    @property
    def resource_id(self) -> str:
        return self.stored.resource_id


class LocalRepository:
    """Store, index and attachments of one peer."""

    def __init__(self, owner: str = "", *, index_layout: str = "lean") -> None:
        self.owner = owner
        self.documents = DocumentStore()
        #: lean (numeric-id array postings) by default; the set layout
        #: remains available for the memory A/B benchmark
        self.index_layout = index_layout
        self.index = AttributeIndex(layout=index_layout)
        self.attachments = AttachmentStore()

    # ------------------------------------------------------------------
    def publish(
        self,
        community_id: str,
        document: Element,
        metadata: dict[str, list[str]],
        *,
        title: str = "",
        attachment_uris: Optional[list[str]] = None,
    ) -> PublishResult:
        """Store ``document``, index ``metadata`` and register attachments.

        ``metadata`` holds only the searchable field values — the caller
        (the servent) applies the community's index filter before calling
        this, which is exactly the split the paper describes.
        """
        stored = self.documents.put(
            community_id,
            document,
            title=title,
            publisher=self.owner,
            metadata=metadata,
        )
        indexed = self.index.add(community_id, stored.resource_id, metadata)
        created: list[Attachment] = []
        for uri in attachment_uris or []:
            if not uri.strip():
                continue
            attachment = Attachment.synthesize(uri)
            self.attachments.put(attachment)
            created.append(attachment)
        return PublishResult(stored=stored, indexed_fields=indexed, attachments=created)

    def unpublish(self, resource_id: str) -> None:
        """Remove an object and its index entries."""
        self.index.remove(resource_id)
        self.documents.delete(resource_id)

    def rebuild_index(self) -> int:
        """Drop and re-create the attribute index from the stored objects.

        Returns the number of (field, value) pairs indexed.  Scenarios
        use this to measure cold-index query phases: the index is
        rebuilt from scratch immediately before the workload runs.
        """
        self.index = AttributeIndex(layout=self.index_layout)
        indexed = 0
        for stored in self.documents:
            indexed += self.index.add(stored.community_id, stored.resource_id,
                                      dict(stored.metadata))
        return indexed

    # ------------------------------------------------------------------
    def search(self, query: Query, *, plan: Optional[CompiledQuery] = None) -> list[StoredObject]:
        """Evaluate ``query`` against the local index.

        An empty query returns every object of the community (browsing);
        the returned list is always a fresh copy, never an alias of the
        store's internals.  With ``plan`` (a :class:`CompiledQuery` of
        the same query, compiled once per search) evaluation skips all
        per-call normalization and intersects index postings directly.
        """
        evaluator = plan if plan is not None else query
        if evaluator.is_empty:
            return self.documents.objects_in(evaluator.community_id)
        ids = evaluator.evaluate(self.index)
        return [self.documents.get(resource_id) for resource_id in sorted(ids)]

    def retrieve(self, resource_id: str) -> StoredObject:
        """Return the full stored object (the download path)."""
        return self.documents.get(resource_id)

    def serve_attachment(self, uri: str) -> Attachment:
        return self.attachments.serve(uri)

    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, int]:
        """Counters used by the experiment harness."""
        return {
            "objects": len(self.documents),
            "communities": len(self.documents.communities()),
            "index_entries": self.index.entry_count(),
            "index_bytes": self.index.size_bytes(),
            "document_bytes": self.documents.total_bytes(),
            "attachments": len(self.attachments),
            "attachment_bytes": self.attachments.total_bytes(),
        }
