"""A richer query language over stored XML objects (paper §VI future work).

The paper's future-work section proposes "replacing CMIP-based queries
with richer languages such as the XML Query language".  This module adds
that richer language: a small FLWOR-style query (``for … where …
return``) evaluated over the XML documents of a repository rather than
over the flattened attribute index.

Example
-------
>>> from repro.storage.xquery import XQueryLite
>>> query = XQueryLite.parse(
...     'for $p in pattern where $p/category = "behavioral" '
...     'and contains($p/intent, "state") return $p/name'
... )

The language supports:

* one ``for`` variable bound to every stored object whose root element
  matches the given name (or ``*``),
* a ``where`` clause built from the XPath-expression subset of
  :mod:`repro.xslt.expressions` (comparisons, and/or, contains(),
  starts-with(), count(), not() …) with ``$var/path`` references,
* a ``return`` clause projecting either the whole object or a path
  inside it.

It deliberately is not full XQuery; it is the structured counterpart of
what the paper sketches, and the tests treat the attribute-index search
as the baseline it must agree with.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Union

from repro.storage.document_store import StoredObject
from repro.storage.errors import QueryError
from repro.storage.repository import LocalRepository
from repro.xmlkit.dom import Element
from repro.xslt.expressions import EvalContext, evaluate_boolean, evaluate_string

_QUERY_RE = re.compile(
    r"^\s*for\s+\$(?P<var>[A-Za-z_][\w]*)\s+in\s+(?P<source>[\w*:-]+)"
    r"(?:\s+where\s+(?P<where>.+?))?"
    r"\s+return\s+(?P<return>.+?)\s*$",
    re.IGNORECASE | re.DOTALL,
)


@dataclass(frozen=True)
class XQueryResult:
    """One item produced by a query's return clause."""

    resource_id: str
    value: Union[str, Element]

    def as_text(self) -> str:
        if isinstance(self.value, Element):
            return self.value.text_content().strip()
        return self.value


@dataclass(frozen=True)
class XQueryLite:
    """A parsed ``for … where … return`` query."""

    variable: str
    source: str
    where: Optional[str]
    returns: str

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "XQueryLite":
        """Parse the textual form of a query."""
        match = _QUERY_RE.match(text)
        if match is None:
            raise QueryError(
                "cannot parse query; expected 'for $x in <element> [where <expr>] return <expr>'"
            )
        return cls(
            variable=match.group("var"),
            source=match.group("source"),
            where=(match.group("where") or "").strip() or None,
            returns=match.group("return").strip(),
        )

    # ------------------------------------------------------------------
    def evaluate(self, repository: LocalRepository, community_id: str) -> list[XQueryResult]:
        """Run the query over one community of a repository."""
        results: list[XQueryResult] = []
        for stored in repository.documents.objects_in(community_id):
            results.extend(self.evaluate_object(stored))
        return results

    def evaluate_objects(self, objects: list[StoredObject]) -> list[XQueryResult]:
        """Run the query over an explicit list of stored objects."""
        results: list[XQueryResult] = []
        for stored in objects:
            results.extend(self.evaluate_object(stored))
        return results

    def evaluate_object(self, stored: StoredObject) -> list[XQueryResult]:
        """Run the query against a single stored object."""
        document = stored.document
        if self.source != "*" and document.local_name != self.source:
            return []
        context = EvalContext(node=document)
        if self.where and not evaluate_boolean(self._rewrite(self.where), context):
            return []
        return_expr = self._rewrite(self.returns)
        if return_expr in (".", f"${self.variable}"):
            return [XQueryResult(stored.resource_id, document)]
        value = evaluate_string(return_expr, context)
        return [XQueryResult(stored.resource_id, value)]

    # ------------------------------------------------------------------
    def _rewrite(self, expression: str) -> str:
        """Rewrite ``$var/path`` references to context-relative paths."""
        variable = re.escape(self.variable)
        rewritten = re.sub(rf"\${variable}\s*/", "", expression)
        rewritten = re.sub(rf"\${variable}\b", ".", rewritten)
        if "$" in rewritten:
            raise QueryError(f"unknown variable reference in {expression!r}")
        return rewritten


def xquery(repository: LocalRepository, community_id: str, text: str) -> list[XQueryResult]:
    """Parse and evaluate ``text`` against a repository community."""
    return XQueryLite.parse(text).evaluate(repository, community_id)
