"""Query-result caching: answer repeated queries without re-discovery.

Every network organisation re-pays its full discovery cost each time a
popular query is re-issued — the flood re-floods, the walk re-walks,
the server re-intersects its index.  :class:`QueryResultCache` stores
finished result sets keyed by the *canonical form* of a compiled query
(:attr:`repro.storage.plan.CompiledQuery.cache_key`), so two
differently-ordered spellings of the same conjunction share one entry.

The cache is deliberately small and honest about staleness:

* **LRU** — at most ``capacity`` entries; the least recently used entry
  is evicted on overflow.
* **TTL / lease** — every entry expires ``ttl_ms`` after it was filled
  (a protocol with a natural lease, e.g. the rendezvous advertisement
  lease, passes a shorter per-entry lease), which bounds how long a
  cached hit can reference state the network no longer agrees on.
* **Version** — the cache owner bumps :attr:`version` whenever its
  catalog changes (a publish or replica announcement arrives); entries
  filled under an older version miss on lookup and are dropped.
* **Provider invalidation** — when the owner learns a peer departed
  (graceful goodbye traffic, or a heartbeat/lease purge), every entry
  carrying a result from that provider dies with
  :meth:`invalidate_provider`, so a stale cached hit never outlives the
  staleness window the membership layer already reports.

The cache never touches the simulation clock; owners sweep expired
entries on a recurring kernel timer (``EventKernel.every``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class CacheEntry:
    """One cached result set, with the bookkeeping its lifetime needs."""

    __slots__ = (
        "key",
        "results",
        "metadata_bytes",
        "version",
        "created_at_ms",
        "expires_at_ms",
        "hits",
    )

    def __init__(
        self,
        key: tuple,
        results: tuple,
        metadata_bytes: int,
        version: int,
        created_at_ms: float,
        expires_at_ms: float,
    ) -> None:
        self.key = key
        self.results = results
        self.metadata_bytes = metadata_bytes
        self.version = version
        self.created_at_ms = created_at_ms
        self.expires_at_ms = expires_at_ms
        self.hits = 0


class QueryResultCache:
    """An LRU + TTL + versioned cache of finished search result sets.

    One instance belongs to one *cache site* — the central index
    server, a flooding peer, a super-peer, a rendezvous edge — and only
    that owner's observations (arriving publishes, goodbyes, lease
    purges) invalidate it.  Anything the owner cannot observe is
    bounded by the TTL instead, which is why callers should keep
    ``ttl_ms`` at or below the membership layer's staleness lease.
    """

    def __init__(self, *, capacity: int = 128, ttl_ms: float = 2_000.0) -> None:
        if capacity < 1:
            raise ValueError("the cache needs room for at least one entry")
        if ttl_ms <= 0:
            raise ValueError("the cache TTL must be positive")
        self.capacity = capacity
        self.ttl_ms = ttl_ms
        self.version = 0
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        # Local counters (the network-wide ones live on NetworkStats).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # Lookup and fill
    # ------------------------------------------------------------------
    def get(self, key: tuple, now: float) -> Optional[CacheEntry]:
        """The live entry under ``key``, or ``None`` (counted as a miss).

        An entry that expired, or that was filled before the owner's
        last catalog change, is dropped on the spot.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.expires_at_ms <= now:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        if entry.version != self.version:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hits += 1
        return entry

    def peek(self, key: tuple, now: float) -> Optional[CacheEntry]:
        """Like :meth:`get` but side-effect free: no LRU touch, no
        counter movement, no lazy drops.  Exists so a parallel worker
        can *predict* whether a queued query delivery will be served
        from this cache (see ``repro.engine.parallel``) without
        perturbing the cache state the real lookup will see."""
        entry = self._entries.get(key)
        if entry is None or entry.expires_at_ms <= now \
                or entry.version != self.version:
            return None
        return entry

    def put(
        self,
        key: tuple,
        results: tuple,
        metadata_bytes: int,
        now: float,
        *,
        lease_ms: Optional[float] = None,
    ) -> CacheEntry:
        """Fill ``key`` with ``results`` (empty result sets cache too —
        repeated miss-queries are the most expensive kind to re-flood).

        ``lease_ms`` caps the entry's life below the cache TTL when the
        protocol has a natural shorter lease.
        """
        life = self.ttl_ms if lease_ms is None else min(self.ttl_ms, lease_ms)
        entry = CacheEntry(
            key=key,
            results=results,
            metadata_bytes=metadata_bytes,
            version=self.version,
            created_at_ms=now,
            expires_at_ms=now + life,
        )
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def bump_version(self) -> None:
        """The owner's catalog changed: every existing entry is stale."""
        self.version += 1

    def invalidate_provider(self, provider_id: str) -> int:
        """Drop every entry carrying a result from ``provider_id``.

        Called when the owner *learns* of a departure — a graceful
        UNREGISTER/LEAVE/LEAF-DETACH arriving, or a heartbeat/lease
        purge — so cached hits stop referencing the departed peer the
        moment the membership layer itself stops.  Returns how many
        entries died.
        """
        stale = [
            key
            for key, entry in self._entries.items()
            if any(result.provider_id == provider_id for result in entry.results)
        ]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def sweep(self, now: float) -> int:
        """Drop every expired entry (the recurring timer's body)."""
        dead = [key for key, entry in self._entries.items() if entry.expires_at_ms <= now]
        for key in dead:
            del self._entries[key]
        self.expirations += len(dead)
        return len(dead)

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> str:
        return (
            f"cache[{len(self._entries)}/{self.capacity} entries, "
            f"ttl={self.ttl_ms:.0f}ms, v{self.version}, "
            f"{self.hits}h/{self.misses}m]"
        )
