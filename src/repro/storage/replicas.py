"""Replica bookkeeping: who holds which object, and why.

The paper's availability argument (§II) is that downloads *are*
replication: every retrieve leaves a copy behind, so popular objects
accumulate holders and survive churn.  The registry records, per
resource, every peer known to hold a copy together with its
*provenance* — ``original`` for the publisher's copy, ``replica`` for a
copy created by a download — and when the copy appeared in virtual
time.  The network layer keeps one registry and the replication
benchmarks read replication degree per popularity rank from it.
"""

from __future__ import annotations

from dataclasses import dataclass


ORIGINAL = "original"
REPLICA = "replica"


@dataclass(frozen=True)
class ReplicaEntry:
    """One peer's copy of one resource."""

    peer_id: str
    provenance: str  # ORIGINAL or REPLICA
    recorded_at_ms: float = 0.0


class ReplicaRegistry:
    """Per-resource holder sets with provenance.

    Recording is idempotent per ``(resource, peer)``: the first entry
    wins, so a publisher re-downloading its own object stays an
    original and a replica re-announced by a later publish stays a
    replica.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, ReplicaEntry]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def note_original(self, resource_id: str, peer_id: str, *, at_ms: float = 0.0) -> None:
        """Record ``peer_id`` as publishing its own copy of ``resource_id``."""
        self._note(resource_id, peer_id, ORIGINAL, at_ms)

    def note_replica(self, resource_id: str, peer_id: str, *, at_ms: float = 0.0) -> None:
        """Record ``peer_id`` as holding a downloaded copy of ``resource_id``."""
        self._note(resource_id, peer_id, REPLICA, at_ms)

    def _note(self, resource_id: str, peer_id: str, provenance: str, at_ms: float) -> None:
        holders = self._entries.setdefault(resource_id, {})
        if peer_id not in holders:
            holders[peer_id] = ReplicaEntry(peer_id=peer_id, provenance=provenance,
                                            recorded_at_ms=at_ms)

    def drop(self, resource_id: str, peer_id: str) -> None:
        """Forget one copy (a peer un-sharing an object)."""
        holders = self._entries.get(resource_id)
        if holders is not None:
            holders.pop(peer_id, None)
            if not holders:
                del self._entries[resource_id]

    def forget_peer(self, peer_id: str) -> int:
        """Drop every copy held by ``peer_id`` (permanent removal, not
        churn — an offline peer keeps its copies).  Returns the number
        of copies forgotten."""
        forgotten = 0
        for resource_id in list(self._entries):
            if peer_id in self._entries[resource_id]:
                self.drop(resource_id, peer_id)
                forgotten += 1
        return forgotten

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def holders(self, resource_id: str, *,
                exclude: frozenset[str] = frozenset()) -> list[str]:
        """Every known holder, originals first, deterministic order.

        ``exclude`` filters peers out of the ranking — download
        failover passes the requester plus the providers that already
        crashed or stalled out of the transfer, so the next-ranked
        surviving replica is chosen deterministically.
        """
        entries = self._entries.get(resource_id, {})
        return [entry.peer_id for entry in sorted(
            entries.values(), key=lambda entry: (entry.provenance != ORIGINAL, entry.peer_id))
            if entry.peer_id not in exclude]

    def provenance(self, resource_id: str, peer_id: str) -> str | None:
        entry = self._entries.get(resource_id, {}).get(peer_id)
        return entry.provenance if entry is not None else None

    def entries_for(self, resource_id: str) -> list[ReplicaEntry]:
        return sorted(self._entries.get(resource_id, {}).values(),
                      key=lambda entry: (entry.recorded_at_ms, entry.peer_id))

    def replicas_of(self, resource_id: str) -> list[str]:
        """Holders whose copy came from a download."""
        return [entry.peer_id
                for entry in self._entries.get(resource_id, {}).values()
                if entry.provenance == REPLICA]

    def replication_degree(self, resource_id: str) -> int:
        """Total copies known for ``resource_id`` (original + replicas)."""
        return len(self._entries.get(resource_id, {}))

    def degree_by_resource(self) -> dict[str, int]:
        return {resource_id: len(holders) for resource_id, holders in self._entries.items()}

    def resources(self) -> list[str]:
        return sorted(self._entries)

    def total_replicas(self) -> int:
        """Downloaded copies across all resources."""
        return sum(
            1 for holders in self._entries.values()
            for entry in holders.values() if entry.provenance == REPLICA
        )

    def __len__(self) -> int:
        return len(self._entries)
