"""Inverted index over searchable attribute values.

The paper requires that "fields defined in a community schema must be
marked searchable for them to form part of a search query.  This allows
only fields with small portions of content to be present in the search
engine instead of the entire XML object."  The :class:`AttributeIndex`
is that search engine: it stores, per community and field path, both
the exact value and its word tokens, so queries can do exact matching
(enumerations, identifiers) and keyword matching (descriptions).

Two posting layouts share one public API:

* ``layout="lean"`` (the default) — postings are sorted
  ``array('I')`` lists of small numeric ids (one number per indexed
  object, mapped through a per-index id table), intersected by
  galloping binary search.  A posting entry costs 4 bytes instead of a
  hashed set slot holding a 40-character resource-id string, which is
  what lets 10k–100k peer populations hold their indexes in RAM.
* ``layout="set"`` — the historical per-entry ``set[str]`` layout,
  kept for the memory A/B benchmark and as the reference semantics.

Both layouts return identical result sets for every lookup — numeric
ids are resolved back to resource-id strings at the boundary, and
every consumer sorts result ids before use, so the layout is never
observable in results, counts or bytes (pinned by the contract suite).
"""

from __future__ import annotations

import re
import sys
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.storage.interning import intern_values

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

#: shared empty posting set returned by the non-copying lookups, so a
#: miss costs no allocation (callers must treat postings as read-only)
EMPTY_POSTING: frozenset[str] = frozenset()

#: shared empty posting array (the lean layout's miss result)
EMPTY_IDS = array("I")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of ``text``."""
    return [token.lower() for token in _TOKEN_RE.findall(text)]


@dataclass(frozen=True)
class IndexEntry:
    """One indexed (field, value) pair of one object.

    The entry carries its normalized form (``value_lower``) and word
    tokens, computed once at ``add`` time, so :meth:`AttributeIndex.remove`
    never re-tokenizes stored values.  The normalized value and the
    token tuple are interned: every peer indexing the same corpus value
    references one canonical string/tuple instead of its own copy.
    """

    community_id: str
    resource_id: str
    field_path: str
    value: str
    value_lower: str = ""
    tokens: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.value_lower:
            object.__setattr__(self, "value_lower", sys.intern(self.value.lower()))
        if not self.tokens:
            object.__setattr__(self, "tokens", intern_values(tokenize(self.value)))


def _insert_id(bucket: array, numeric_id: int) -> None:
    """Insert ``numeric_id`` into a sorted posting array (set semantics)."""
    position = bisect_left(bucket, numeric_id)
    if position == len(bucket) or bucket[position] != numeric_id:
        bucket.insert(position, numeric_id)


def _discard_id(bucket: array, numeric_id: int) -> None:
    """Remove ``numeric_id`` from a sorted posting array if present."""
    position = bisect_left(bucket, numeric_id)
    if position < len(bucket) and bucket[position] == numeric_id:
        del bucket[position]


def _gallop_intersect(small: array, large: array) -> array:
    """Members of sorted ``small`` also in sorted ``large``.

    Walks the smaller posting and locates each id in the larger one by
    binary search from a moving lower bound — the classic galloping
    strategy, O(|small| · log |large|) instead of a linear merge, which
    is the right trade when selective criteria meet broad ones.
    """
    out = array("I")
    append = out.append
    low, high = 0, len(large)
    for numeric_id in small:
        low = bisect_left(large, numeric_id, low, high)
        if low == high:
            break
        if large[low] == numeric_id:
            append(numeric_id)
            low += 1
    return out


def intersect_postings(arrays: list, id_sets: list) -> array | set[int]:
    """Ids present in every posting; postings may be sorted arrays
    (exact/keyword buckets, treated read-only) or ``set[int]`` objects
    (prefix/any-field matches, freshly computed so mutable in place).
    Returns an iterable of numeric ids (a sorted array or a set)."""
    if arrays:
        arrays = sorted(arrays, key=len)
        accumulated = arrays[0]
        for other in arrays[1:]:
            if len(accumulated) <= len(other):
                accumulated = _gallop_intersect(accumulated, other)
            else:
                accumulated = _gallop_intersect(other, accumulated)
            if not accumulated:
                return accumulated
        if not id_sets:
            return accumulated
        result = set(accumulated)
        for id_set in sorted(id_sets, key=len):
            result &= id_set
            if not result:
                break
        return result
    id_sets = sorted(id_sets, key=len)
    result = id_sets[0]
    for id_set in id_sets[1:]:
        result &= id_set
        if not result:
            break
    return result


class AttributeIndex:
    """Inverted index: (community, field, token/value) → resource ids."""

    def __init__(self, *, layout: str = "lean") -> None:
        if layout not in ("lean", "set"):
            raise ValueError(f"unknown index layout {layout!r}; choose 'lean' or 'set'")
        self.layout = layout
        #: True when postings are numeric-id arrays (the default)
        self.lean = layout == "lean"
        # community -> field path -> token -> posting (set[str] | array('I'))
        # Posting values are layout-polymorphic, hence Any: set[str] in
        # the set layout, sorted array('I') in the lean layout.
        self._tokens: dict[str, dict[str, dict[str, Any]]] = {}
        # community -> field path -> exact value (lowered) -> posting
        self._values: dict[str, dict[str, dict[str, Any]]] = {}
        # resource id -> its entries (for removal and size accounting)
        self._entries: dict[str, list[IndexEntry]] = {}
        # lean layout: resource id <-> dense numeric id
        self._ids: dict[str, int] = {}
        self._rids: list[str] = []
        self._free: list[int] = []

    # ------------------------------------------------------------------
    # Numeric-id table (lean layout)
    # ------------------------------------------------------------------
    def _assign_id(self, resource_id: str) -> int:
        numeric_id = self._ids.get(resource_id)
        if numeric_id is None:
            if self._free:
                numeric_id = self._free.pop()
                self._rids[numeric_id] = resource_id
            else:
                numeric_id = len(self._rids)
                self._rids.append(resource_id)
            self._ids[resource_id] = numeric_id
        return numeric_id

    def resolve_ids(self, numeric_ids: Iterable[int]) -> set[str]:
        """Resource-id strings of ``numeric_ids`` (the lean→public boundary)."""
        rids = self._rids
        return {rids[numeric_id] for numeric_id in numeric_ids}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, community_id: str, resource_id: str, fields: dict[str, list[str]]) -> int:
        """Index ``fields`` (path → values) for one object.

        Returns the number of (field, value) pairs indexed.  Re-adding an
        already indexed object replaces its previous entries.
        """
        if resource_id in self._entries:
            self.remove(resource_id)
        community_id = sys.intern(community_id)
        resource_id = sys.intern(resource_id)
        lean = self.lean
        numeric_id = self._assign_id(resource_id) if lean else 0
        entries: list[IndexEntry] = []
        for field_path, values in fields.items():
            field_path = sys.intern(field_path)
            for value in values:
                value = value.strip()
                if not value:
                    continue
                value = sys.intern(value)
                entry = IndexEntry(community_id, resource_id, field_path, value)
                entries.append(entry)
                field_values = self._values.setdefault(community_id, {}).setdefault(field_path, {})
                field_tokens = self._tokens.setdefault(community_id, {}).setdefault(field_path, {})
                if lean:
                    bucket = field_values.get(entry.value_lower)
                    if bucket is None:
                        field_values[entry.value_lower] = bucket = array("I")
                    _insert_id(bucket, numeric_id)
                    for token in entry.tokens:
                        token_bucket = field_tokens.get(token)
                        if token_bucket is None:
                            field_tokens[token] = token_bucket = array("I")
                        _insert_id(token_bucket, numeric_id)
                else:
                    field_values.setdefault(entry.value_lower, set()).add(resource_id)
                    for token in entry.tokens:
                        field_tokens.setdefault(token, set()).add(resource_id)
        self._entries[resource_id] = entries
        if lean and not entries:
            self._release_id(resource_id, numeric_id)
        return len(entries)

    def _release_id(self, resource_id: str, numeric_id: int) -> None:
        del self._ids[resource_id]
        self._rids[numeric_id] = ""
        self._free.append(numeric_id)

    def remove(self, resource_id: str) -> None:
        """Remove every entry of ``resource_id`` (peer un-sharing)."""
        entries = self._entries.pop(resource_id, [])
        numeric_id = self._ids.get(resource_id) if self.lean else None
        for entry in entries:
            values = self._values.get(entry.community_id, {}).get(entry.field_path, {})
            bucket = values.get(entry.value_lower)
            if bucket is not None:
                if numeric_id is None:
                    bucket.discard(resource_id)
                else:
                    _discard_id(bucket, numeric_id)
                if not bucket:
                    values.pop(entry.value_lower, None)
            tokens = self._tokens.get(entry.community_id, {}).get(entry.field_path, {})
            for token in entry.tokens:
                token_bucket = tokens.get(token)
                if token_bucket is not None:
                    if numeric_id is None:
                        token_bucket.discard(resource_id)
                    else:
                        _discard_id(token_bucket, numeric_id)
                    if not token_bucket:
                        tokens.pop(token, None)
            # Prune emptied field/community levels so an add/remove
            # round-trip leaves the index structurally identical to the
            # state before the add (pinned by the round-trip test).
            for table in (self._values, self._tokens):
                community = table.get(entry.community_id)
                if community is not None and not community.get(entry.field_path, True):
                    del community[entry.field_path]
                    if not community:
                        del table[entry.community_id]
        if numeric_id is not None and entries:
            self._release_id(resource_id, numeric_id)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def exact(self, community_id: str, field_path: str, value: str) -> set[str]:
        """Resource ids whose field equals ``value`` (case-insensitive)."""
        bucket = self.exact_ref(community_id, field_path, value.strip().lower())
        if self.lean:
            return self.resolve_ids(bucket)
        return set(bucket)

    def exact_ref(self, community_id: str, field_path: str,
                  normalized_value: str) -> Any:  # set[str] | array, by layout
        """Non-copying variant of :meth:`exact`: the *live* posting.

        ``normalized_value`` must already be stripped and lowered (a
        compiled plan does this once).  The returned posting — a
        ``set[str]`` in the set layout, a sorted ``array('I')`` of
        numeric ids in the lean layout — is internal state; callers
        must not mutate it.
        """
        bucket = self._values.get(community_id, {}).get(field_path, {}).get(
            normalized_value)
        if bucket is None:
            return EMPTY_IDS if self.lean else EMPTY_POSTING
        return bucket

    def keyword(self, community_id: str, field_path: str, text: str) -> set[str]:
        """Resource ids whose field contains every word of ``text``."""
        postings = self.keyword_postings(community_id, field_path, tokenize(text))
        if postings is None:
            return set()
        if self.lean:
            return self.resolve_ids(intersect_postings(postings, []))
        if len(postings) == 1:
            return set(postings[0])
        postings.sort(key=len)
        result = postings[0] & postings[1]
        for bucket in postings[2:]:
            result &= bucket
            if not result:
                break
        return result

    def keyword_postings(self, community_id: str, field_path: str,
                         tokens: Sequence[str]) -> Optional[list]:
        """Non-copying variant of :meth:`keyword`: one live posting per
        token (``set[str]`` or sorted ``array('I')`` depending on the
        layout), or ``None`` when no match is possible (no tokens, or a
        token with no postings).  Callers must not mutate the postings.
        """
        if not tokens:
            return None
        field_tokens = self._tokens.get(community_id, {}).get(field_path)
        if field_tokens is None:
            return None
        postings = []
        for token in tokens:
            bucket = field_tokens.get(token)
            if not bucket:
                return None
            postings.append(bucket)
        return postings

    def prefix(self, community_id: str, field_path: str, stem: str) -> set[str]:
        """Resource ids whose field has a token starting with ``stem``."""
        if self.lean:
            return self.resolve_ids(self.prefix_ids(community_id, field_path, stem))
        stem = stem.strip().lower()
        if not stem:
            return set()
        matches: set[str] = set()
        for token, bucket in self._tokens.get(community_id, {}).get(field_path, {}).items():
            if token.startswith(stem):
                matches.update(bucket)
        return matches

    def prefix_ids(self, community_id: str, field_path: str, stem: str) -> set[int]:
        """Lean-layout :meth:`prefix`: matching *numeric* ids, as a
        fresh set the caller may mutate (plans intersect in place)."""
        stem = stem.strip().lower()
        matches: set[int] = set()
        if not stem:
            return matches
        for token, bucket in self._tokens.get(community_id, {}).get(field_path, {}).items():
            if token.startswith(stem):
                matches.update(bucket)
        return matches

    def any_field_keyword(self, community_id: str, text: str) -> set[str]:
        """Keyword match across every indexed field of a community."""
        return self.any_field_keyword_tokens(community_id, tokenize(text))

    def any_field_keyword_tokens(self, community_id: str,
                                 tokens: Sequence[str]) -> set[str]:
        """Non-copying variant of :meth:`any_field_keyword`: the text is
        tokenized once by the caller instead of once per indexed field.
        Returns a fresh set (the union is computed, never aliased).
        """
        if self.lean:
            return self.resolve_ids(self.any_field_ids(community_id, tokens))
        matches: set[str] = set()
        if not tokens:
            return matches
        for field_tokens in self._tokens.get(community_id, {}).values():
            current: Any = None
            for token in tokens:
                bucket = field_tokens.get(token)
                if not bucket:
                    current = None
                    break
                current = bucket if current is None else current & bucket
                if not current:
                    current = None
                    break
            if current:
                matches.update(current)
        return matches

    def any_field_ids(self, community_id: str, tokens: Sequence[str]) -> set[int]:
        """Lean-layout :meth:`any_field_keyword_tokens`: per-field
        galloping intersections, unioned as a fresh set of numeric ids
        the caller may mutate."""
        matches: set[int] = set()
        if not tokens:
            return matches
        for field_tokens in self._tokens.get(community_id, {}).values():
            postings: Optional[list[Any]] = []
            for token in tokens:
                bucket = field_tokens.get(token)
                if not bucket:
                    postings = None
                    break
                postings.append(bucket)
            if postings:
                matches.update(intersect_postings(postings, []))
        return matches

    def fields_for(self, community_id: str) -> list[str]:
        """Field paths that have at least one indexed value."""
        return sorted(self._tokens.get(community_id, {}).keys())

    def values_for(self, community_id: str, field_path: str) -> list[str]:
        """Distinct indexed values of one field (drives search-form dropdowns)."""
        return sorted(self._values.get(community_id, {}).get(field_path, {}).keys())

    # ------------------------------------------------------------------
    # Size accounting (experiment E5: index filtering)
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Total number of indexed (field, value) pairs."""
        return sum(len(entries) for entries in self._entries.values())

    def indexed_objects(self) -> int:
        return len(self._entries)

    def size_bytes(self) -> int:
        """Approximate memory footprint of the indexed strings."""
        total = 0
        for entries in self._entries.values():
            for entry in entries:
                total += len(entry.field_path) + len(entry.value)
        return total

    def posting_bytes(self) -> int:
        """Actual memory held by the posting containers themselves.

        This is the number the lean layout shrinks: a numeric-id array
        slot costs ``itemsize`` (4) bytes past the container overhead, a
        set layout pays the hashed set plus a reference per member.
        Array buckets are costed by *content* (base + itemsize × length)
        rather than ``getsizeof``'s live buffer, which reflects growth
        history — two indexes holding identical postings (one built
        incrementally, one unpickled in a worker process) must account
        identically.  Resource-id strings and the dictionary levels
        above the postings are shared by both layouts and excluded.
        """
        array_base = sys.getsizeof(array("I"))
        total = 0
        for table in (self._values, self._tokens):
            for community in table.values():
                for field_postings in community.values():
                    for bucket in field_postings.values():
                        if isinstance(bucket, array):
                            total += array_base + bucket.itemsize * len(bucket)
                        else:
                            total += sys.getsizeof(bucket) + 8 * len(bucket)
        return total

    def entries_for(self, resource_id: str) -> Iterable[IndexEntry]:
        return tuple(self._entries.get(resource_id, ()))

    def iter_entries(self) -> Iterable[IndexEntry]:
        """Every indexed entry in deterministic (resource-id) order —
        the routing layer derives per-peer Bloom filters from these."""
        for resource_id in sorted(self._entries):
            yield from self._entries[resource_id]
