"""Inverted index over searchable attribute values.

The paper requires that "fields defined in a community schema must be
marked searchable for them to form part of a search query.  This allows
only fields with small portions of content to be present in the search
engine instead of the entire XML object."  The :class:`AttributeIndex`
is that search engine: it stores, per community and field path, both
the exact value and its word tokens, so queries can do exact matching
(enumerations, identifiers) and keyword matching (descriptions).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

#: shared empty posting set returned by the non-copying lookups, so a
#: miss costs no allocation (callers must treat postings as read-only)
EMPTY_POSTING: frozenset[str] = frozenset()


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of ``text``."""
    return [token.lower() for token in _TOKEN_RE.findall(text)]


@dataclass(frozen=True)
class IndexEntry:
    """One indexed (field, value) pair of one object.

    The entry carries its normalized form (``value_lower``) and word
    tokens, computed once at ``add`` time, so :meth:`AttributeIndex.remove`
    never re-tokenizes stored values.
    """

    community_id: str
    resource_id: str
    field_path: str
    value: str
    value_lower: str = ""
    tokens: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.value_lower:
            object.__setattr__(self, "value_lower", self.value.lower())
        if not self.tokens:
            object.__setattr__(self, "tokens", tuple(tokenize(self.value)))


class AttributeIndex:
    """Inverted index: (community, field, token/value) → resource ids."""

    def __init__(self) -> None:
        # community -> field path -> token -> set of resource ids
        self._tokens: dict[str, dict[str, dict[str, set[str]]]] = {}
        # community -> field path -> exact value (lowered) -> set of resource ids
        self._values: dict[str, dict[str, dict[str, set[str]]]] = {}
        # resource id -> its entries (for removal and size accounting)
        self._entries: dict[str, list[IndexEntry]] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, community_id: str, resource_id: str, fields: dict[str, list[str]]) -> int:
        """Index ``fields`` (path → values) for one object.

        Returns the number of (field, value) pairs indexed.  Re-adding an
        already indexed object replaces its previous entries.
        """
        if resource_id in self._entries:
            self.remove(resource_id)
        entries: list[IndexEntry] = []
        for field_path, values in fields.items():
            for value in values:
                value = value.strip()
                if not value:
                    continue
                entry = IndexEntry(community_id, resource_id, field_path, value)
                entries.append(entry)
                field_values = self._values.setdefault(community_id, {}).setdefault(field_path, {})
                field_values.setdefault(entry.value_lower, set()).add(resource_id)
                field_tokens = self._tokens.setdefault(community_id, {}).setdefault(field_path, {})
                for token in entry.tokens:
                    field_tokens.setdefault(token, set()).add(resource_id)
        self._entries[resource_id] = entries
        return len(entries)

    def remove(self, resource_id: str) -> None:
        """Remove every entry of ``resource_id`` (peer un-sharing)."""
        for entry in self._entries.pop(resource_id, []):
            values = self._values.get(entry.community_id, {}).get(entry.field_path, {})
            bucket = values.get(entry.value_lower)
            if bucket is not None:
                bucket.discard(resource_id)
                if not bucket:
                    values.pop(entry.value_lower, None)
            tokens = self._tokens.get(entry.community_id, {}).get(entry.field_path, {})
            for token in entry.tokens:
                token_bucket = tokens.get(token)
                if token_bucket is not None:
                    token_bucket.discard(resource_id)
                    if not token_bucket:
                        tokens.pop(token, None)
            # Prune emptied field/community levels so an add/remove
            # round-trip leaves the index structurally identical to the
            # state before the add (pinned by the round-trip test).
            for table in (self._values, self._tokens):
                community = table.get(entry.community_id)
                if community is not None and not community.get(entry.field_path, True):
                    del community[entry.field_path]
                    if not community:
                        del table[entry.community_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def exact(self, community_id: str, field_path: str, value: str) -> set[str]:
        """Resource ids whose field equals ``value`` (case-insensitive)."""
        return set(self.exact_ref(community_id, field_path, value.strip().lower()))

    def exact_ref(self, community_id: str, field_path: str, normalized_value: str):
        """Non-copying variant of :meth:`exact`: the *live* posting set.

        ``normalized_value`` must already be stripped and lowered (a
        compiled plan does this once).  The returned set is internal
        state — callers must not mutate it.
        """
        return self._values.get(community_id, {}).get(field_path, {}).get(
            normalized_value, EMPTY_POSTING)

    def keyword(self, community_id: str, field_path: str, text: str) -> set[str]:
        """Resource ids whose field contains every word of ``text``."""
        postings = self.keyword_postings(community_id, field_path, tokenize(text))
        if postings is None:
            return set()
        if len(postings) == 1:
            return set(postings[0])
        postings.sort(key=len)
        result = postings[0] & postings[1]
        for bucket in postings[2:]:
            result &= bucket
            if not result:
                break
        return result

    def keyword_postings(self, community_id: str, field_path: str,
                         tokens) -> Optional[list]:
        """Non-copying variant of :meth:`keyword`: one live posting set
        per token, or ``None`` when no match is possible (no tokens, or
        a token with no postings).  Callers must not mutate the sets.
        """
        if not tokens:
            return None
        field_tokens = self._tokens.get(community_id, {}).get(field_path)
        if field_tokens is None:
            return None
        postings = []
        for token in tokens:
            bucket = field_tokens.get(token)
            if not bucket:
                return None
            postings.append(bucket)
        return postings

    def prefix(self, community_id: str, field_path: str, stem: str) -> set[str]:
        """Resource ids whose field has a token starting with ``stem``."""
        stem = stem.strip().lower()
        if not stem:
            return set()
        matches: set[str] = set()
        for token, bucket in self._tokens.get(community_id, {}).get(field_path, {}).items():
            if token.startswith(stem):
                matches.update(bucket)
        return matches

    def any_field_keyword(self, community_id: str, text: str) -> set[str]:
        """Keyword match across every indexed field of a community."""
        return self.any_field_keyword_tokens(community_id, tokenize(text))

    def any_field_keyword_tokens(self, community_id: str, tokens) -> set[str]:
        """Non-copying variant of :meth:`any_field_keyword`: the text is
        tokenized once by the caller instead of once per indexed field.
        Returns a fresh set (the union is computed, never aliased).
        """
        matches: set[str] = set()
        if not tokens:
            return matches
        for field_tokens in self._tokens.get(community_id, {}).values():
            current = None
            for token in tokens:
                bucket = field_tokens.get(token)
                if not bucket:
                    current = None
                    break
                current = bucket if current is None else current & bucket
                if not current:
                    current = None
                    break
            if current:
                matches.update(current)
        return matches

    def fields_for(self, community_id: str) -> list[str]:
        """Field paths that have at least one indexed value."""
        return sorted(self._tokens.get(community_id, {}).keys())

    def values_for(self, community_id: str, field_path: str) -> list[str]:
        """Distinct indexed values of one field (drives search-form dropdowns)."""
        return sorted(self._values.get(community_id, {}).get(field_path, {}).keys())

    # ------------------------------------------------------------------
    # Size accounting (experiment E5: index filtering)
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Total number of indexed (field, value) pairs."""
        return sum(len(entries) for entries in self._entries.values())

    def indexed_objects(self) -> int:
        return len(self._entries)

    def size_bytes(self) -> int:
        """Approximate memory footprint of the indexed strings."""
        total = 0
        for entries in self._entries.values():
            for entry in entries:
                total += len(entry.field_path) + len(entry.value)
        return total

    def entries_for(self, resource_id: str) -> Iterable[IndexEntry]:
        return tuple(self._entries.get(resource_id, ()))
