"""Simulated storage and transfer of file attachments.

A shared object "may or may not have links to network accessible files
that are flagged as attachments.  Attachments are only downloaded when
the object is retrieved from a peer on the network" (paper §IV-C.1).
Real U-P2P moved MP3s and diagrams; the reproduction keeps synthetic
blobs whose only observable properties are their URI, size and content
hash — enough to account for transfer cost and verify integrity.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from repro.storage.errors import ObjectNotFoundError


@dataclass(frozen=True)
class Attachment:
    """One attached file: a URI plus simulated content."""

    uri: str
    size_bytes: int
    content_hash: str

    @classmethod
    def synthesize(cls, uri: str, *, size_bytes: Optional[int] = None, seed: int = 0) -> "Attachment":
        """Create a synthetic attachment with deterministic pseudo-content."""
        rng = random.Random(f"{uri}:{seed}")
        size = size_bytes if size_bytes is not None else rng.randint(16 * 1024, 4 * 1024 * 1024)
        digest = hashlib.sha1(f"{uri}:{size}:{seed}".encode("utf-8")).hexdigest()
        return cls(uri=uri, size_bytes=size, content_hash=digest)


class AttachmentStore:
    """Per-peer storage of attachment blobs, keyed by URI."""

    def __init__(self) -> None:
        self._attachments: dict[str, Attachment] = {}
        self.bytes_received = 0
        self.bytes_served = 0

    def put(self, attachment: Attachment) -> None:
        """Store an attachment this peer shares or has downloaded."""
        self._attachments[attachment.uri] = attachment

    def has(self, uri: str) -> bool:
        return uri in self._attachments

    def get(self, uri: str) -> Attachment:
        attachment = self._attachments.get(uri)
        if attachment is None:
            raise ObjectNotFoundError(f"no attachment stored for {uri!r}")
        return attachment

    def serve(self, uri: str) -> Attachment:
        """Return an attachment to a downloading peer, counting bytes served."""
        attachment = self.get(uri)
        self.bytes_served += attachment.size_bytes
        return attachment

    def receive(self, attachment: Attachment) -> None:
        """Store an attachment downloaded from another peer, counting bytes."""
        self.bytes_received += attachment.size_bytes
        self.put(attachment)

    def __len__(self) -> int:
        return len(self._attachments)

    def total_bytes(self) -> int:
        return sum(attachment.size_bytes for attachment in self._attachments.values())
