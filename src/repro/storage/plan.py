"""Compiled query plans: normalize once, evaluate everywhere.

A Gnutella flood delivers the *same* query to every visited peer, and a
mixed workload keeps many such floods in flight at once — so the naive
path re-strips, re-lowers and re-tokenizes every criterion value at
every peer visit, and re-serializes the query wire form per hop.  The
paper's cost argument (searchable-field indices keep evaluation cheap
enough to run at every servent) only holds if that per-visit work is
constant-time dictionary probing, which is what compilation buys:

* every criterion value is stripped/lowered/tokenized exactly once, at
  :func:`compile_query` time;
* criteria are reordered cheapest-first (EQUALS → CONTAINS → PREFIX →
  ANY), so evaluation probes hash tables before it scans token tables;
* evaluation intersects live index postings smallest-set-first and
  copies only the final result, never the candidate sets
  (:meth:`AttributeIndex.exact_ref` / :meth:`AttributeIndex.keyword_postings`);
* the XML wire form and its byte length are computed once and shared by
  every hop's QUERY message.

The contract the equivalence suite pins: :meth:`CompiledQuery.evaluate`
returns exactly the ids :meth:`Query.evaluate` would, and
:meth:`CompiledQuery.matches_metadata` exactly the boolean
:meth:`Query.matches_metadata` would, for every operator — including
the edge semantics (blank values are skipped; a punctuation-only
CONTAINS value matches no index entry but any metadata dictionary).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.storage.index import AttributeIndex, intersect_postings, tokenize
from repro.storage.query import Criterion, Operator, Query

#: evaluation order: cheap hash probes first, token-table scans last
_OPERATOR_COST = {
    Operator.EQUALS: 0,
    Operator.CONTAINS: 1,
    Operator.PREFIX: 2,
    Operator.ANY: 3,
}


class CompiledCriterion:
    """One criterion with its normalization done ahead of time."""

    __slots__ = ("field_path", "operator", "any_field", "norm_value",
                 "tokens", "token_set", "cost")

    def __init__(self, criterion: Criterion) -> None:
        self.field_path = criterion.field_path
        self.operator = criterion.operator
        # Both naive evaluators treat a "*" field path as an any-field
        # keyword criterion regardless of the declared operator.
        self.any_field = (criterion.operator is Operator.ANY
                          or criterion.field_path == "*")
        self.norm_value = criterion.value.strip().lower()
        self.tokens: tuple[str, ...] = tuple(tokenize(criterion.value))
        self.token_set = frozenset(self.tokens)
        self.cost = (_OPERATOR_COST[Operator.ANY] if self.any_field
                     else _OPERATOR_COST[self.operator])

    # ------------------------------------------------------------------
    def matches_values(self, values: Sequence[str]) -> bool:
        """Precompiled :meth:`Criterion.matches` over one field's values."""
        if self.operator is Operator.EQUALS and not self.any_field:
            wanted = self.norm_value
            return any(value.strip().lower() == wanted for value in values)
        if self.operator is Operator.PREFIX and not self.any_field:
            stem = self.norm_value
            return any(
                token.startswith(stem) for value in values for token in tokenize(value)
            )
        # CONTAINS / ANY: every wanted token appears somewhere in the values.
        wanted_set = self.token_set
        if not wanted_set:
            return True
        present: set[str] = set()
        for value in values:
            present.update(tokenize(value))
            if wanted_set.issubset(present):
                return True
        return False


class CompiledQuery:
    """A :class:`Query` with all per-evaluation work hoisted out.

    Compile once at search start (the kernel's :class:`QueryContext`
    carries the plan), then evaluate at every peer visit for the cost of
    a few dictionary probes and one smallest-first intersection.
    """

    __slots__ = ("source", "community_id", "criteria", "is_empty",
                 "_wire_xml", "_wire_bytes", "_cache_key",
                 "_routing_keys", "_routing_keys_ready")

    def __init__(self, query: Query) -> None:
        self.source = query
        self.community_id = query.community_id
        compiled = [CompiledCriterion(criterion) for criterion in query.criteria
                    if criterion.value.strip()]
        compiled.sort(key=lambda criterion: criterion.cost)
        self.criteria: tuple[CompiledCriterion, ...] = tuple(compiled)
        self.is_empty = not self.criteria
        self._wire_xml: Optional[str] = None
        self._wire_bytes: int = -1
        self._cache_key: Optional[tuple] = None
        self._routing_keys: Optional[tuple[tuple[str, ...], ...]] = None
        self._routing_keys_ready = False

    # ------------------------------------------------------------------
    # Wire form (computed once, shared by every hop's QUERY message)
    # ------------------------------------------------------------------
    @property
    def wire_xml(self) -> str:
        """The serialized query, rendered once and reused per hop."""
        if self._wire_xml is None:
            self._wire_xml = self.source.to_xml_text()
        return self._wire_xml

    @property
    def wire_bytes(self) -> int:
        """Byte length of :attr:`wire_xml`, measured once."""
        if self._wire_bytes < 0:
            self._wire_bytes = len(self.wire_xml.encode("utf-8"))
        return self._wire_bytes

    # ------------------------------------------------------------------
    # Canonical form (the query-result cache key)
    # ------------------------------------------------------------------
    @property
    def cache_key(self) -> tuple:
        """A hashable canonical form: two spellings of the same
        conjunction — criteria reordered, values differing only in case
        or surrounding whitespace — share one key.  Token-set criteria
        (CONTAINS / ANY) are order-insensitive by construction."""
        if self._cache_key is None:
            parts = []
            for criterion in self.criteria:
                if criterion.any_field:
                    parts.append(("*", "", tuple(sorted(criterion.token_set))))
                elif criterion.operator is Operator.EQUALS:
                    parts.append(("=", criterion.field_path, criterion.norm_value))
                elif criterion.operator is Operator.PREFIX:
                    parts.append(("^", criterion.field_path, criterion.norm_value))
                else:  # CONTAINS
                    parts.append(("~", criterion.field_path, tuple(sorted(criterion.token_set))))
            parts.sort()
            self._cache_key = (self.community_id, tuple(parts))
        return self._cache_key

    # ------------------------------------------------------------------
    # Routing-filter probe keys (the informed_routing knob)
    # ------------------------------------------------------------------
    @property
    def routing_keys(self) -> Optional[tuple[tuple[str, ...], ...]]:
        """Per-criterion Bloom-filter probe keys, or ``None`` when the
        query cannot be probed (no criterion constrains the filter).

        Each group is one criterion's keys in the exact normalization
        the attribute index stores — a matching peer's self-filter
        contains *every* key of *every* group, so a routing filter may
        prune a neighbour only when no level holds the complete
        conjunction.  EQUALS probes the normalized value, CONTAINS the
        field-scoped tokens, any-field criteria the unscoped tokens.
        PREFIX criteria (and blank token sets, which match trivially)
        contribute no keys: skipping a criterion only weakens the probe
        toward the blind flood, never past it.
        """
        if not self._routing_keys_ready:
            self._routing_keys_ready = True
            community = self.community_id
            groups: list[tuple[str, ...]] = []
            for criterion in self.criteria:
                if criterion.any_field:
                    if criterion.token_set:
                        groups.append(tuple(
                            f"a\x1f{community}\x1f{token}"
                            for token in sorted(criterion.token_set)))
                elif criterion.operator is Operator.EQUALS:
                    groups.append((
                        f"e\x1f{community}\x1f{criterion.field_path}"
                        f"\x1f{criterion.norm_value}",))
                elif criterion.operator is Operator.CONTAINS and criterion.token_set:
                    groups.append(tuple(
                        f"t\x1f{community}\x1f{criterion.field_path}\x1f{token}"
                        for token in sorted(criterion.token_set)))
                # PREFIX: the index stores whole tokens, so no key form
                # is a necessary condition for a prefix match.
            self._routing_keys = tuple(groups) if groups else None
        return self._routing_keys

    # ------------------------------------------------------------------
    # Evaluation against an attribute index
    # ------------------------------------------------------------------
    def evaluate(self, index: AttributeIndex) -> set[str]:
        """Matching resource ids; identical to :meth:`Query.evaluate`.

        Collects the live posting set of every criterion (no copies),
        then intersects smallest-first with early exit; only the final
        result is materialized as a fresh set.
        """
        if self.is_empty:
            return set()
        if index.lean:
            return self._evaluate_lean(index)
        community_id = self.community_id
        postings: list = []
        for criterion in self.criteria:
            if criterion.any_field:
                matched = index.any_field_keyword_tokens(community_id, criterion.tokens)
                if not matched:
                    return set()
                postings.append(matched)
            elif criterion.operator is Operator.EQUALS:
                bucket = index.exact_ref(community_id, criterion.field_path,
                                         criterion.norm_value)
                if not bucket:
                    return set()
                postings.append(bucket)
            elif criterion.operator is Operator.PREFIX:
                matched = index.prefix(community_id, criterion.field_path,
                                       criterion.norm_value)
                if not matched:
                    return set()
                postings.append(matched)
            else:  # CONTAINS
                buckets = index.keyword_postings(community_id, criterion.field_path,
                                                 criterion.tokens)
                if buckets is None:
                    return set()
                postings.extend(buckets)
        if len(postings) == 1:
            return set(postings[0])
        postings.sort(key=len)
        result = postings[0] & postings[1]
        for bucket in postings[2:]:
            result &= bucket
            if not result:
                break
        return set(result) if not isinstance(result, set) else result

    def _evaluate_lean(self, index: AttributeIndex) -> set[str]:
        """Lean-layout evaluation: numeric-id postings all the way down.

        Exact and keyword criteria contribute live sorted ``array('I')``
        postings (no copies), prefix and any-field criteria contribute
        fresh ``set[int]`` matches; the postings intersect smallest-first
        by galloping binary search and only the surviving ids are
        resolved back to resource-id strings.
        """
        community_id = self.community_id
        arrays: list = []
        id_sets: list = []
        for criterion in self.criteria:
            if criterion.any_field:
                matched = index.any_field_ids(community_id, criterion.tokens)
                if not matched:
                    return set()
                id_sets.append(matched)
            elif criterion.operator is Operator.EQUALS:
                bucket = index.exact_ref(community_id, criterion.field_path,
                                         criterion.norm_value)
                if not bucket:
                    return set()
                arrays.append(bucket)
            elif criterion.operator is Operator.PREFIX:
                matched = index.prefix_ids(community_id, criterion.field_path,
                                           criterion.norm_value)
                if not matched:
                    return set()
                id_sets.append(matched)
            else:  # CONTAINS
                buckets = index.keyword_postings(community_id, criterion.field_path,
                                                 criterion.tokens)
                if buckets is None:
                    return set()
                arrays.extend(buckets)
        return index.resolve_ids(intersect_postings(arrays, id_sets))

    # ------------------------------------------------------------------
    # Evaluation against a plain metadata dictionary
    # ------------------------------------------------------------------
    def matches_metadata(self, metadata: dict[str, list[str]]) -> bool:
        """Identical to :meth:`Query.matches_metadata`, minus the
        per-call normalization (conjunction order does not matter)."""
        for criterion in self.criteria:
            if criterion.any_field:
                wanted = criterion.token_set
                if not wanted:
                    continue
                present: set[str] = set()
                satisfied = False
                for values in metadata.values():
                    for value in values:
                        present.update(tokenize(value))
                        if wanted.issubset(present):
                            satisfied = True
                            break
                    if satisfied:
                        break
                if not satisfied:
                    return False
                continue
            values = metadata.get(criterion.field_path, [])
            if not values or not criterion.matches_values(values):
                return False
        return True

    def describe(self) -> str:
        return f"compiled[{self.source.describe()}]"


def compile_query(query: Query) -> CompiledQuery:
    """Compile ``query`` for repeated evaluation (one call per search)."""
    return CompiledQuery(query)
