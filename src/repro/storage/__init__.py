"""Local object storage substrate (the Magenta substitute).

The original U-P2P stored object meta-data in a database built on the
Magenta agent framework and queried it with CMIP-formatted requests.
This package plays that role:

* :mod:`repro.storage.document_store` — a content-addressed store of
  XML objects, partitioned by community.
* :mod:`repro.storage.index` — an inverted index over the *searchable*
  attribute values of stored objects.
* :mod:`repro.storage.query` — the structured (CMIP-like) query model
  that travels between servents, with an XML wire form.
* :mod:`repro.storage.plan` — compiled query plans: criterion values
  normalized once, criteria cost-ordered, postings intersected without
  intermediate copies (the per-peer evaluation hot path).
* :mod:`repro.storage.cache` — the query-result cache (LRU + TTL +
  lease entries keyed by a compiled query's canonical form) the
  protocol adapters consult before paying discovery again.
* :mod:`repro.storage.attachments` — simulated storage of the binary
  files attached to shared objects.
* :mod:`repro.storage.repository` — the per-peer façade combining the
  three: publish, search, retrieve.
"""

from repro.storage.attachments import Attachment, AttachmentStore
from repro.storage.cache import CacheEntry, QueryResultCache
from repro.storage.document_store import DocumentStore, StoredObject
from repro.storage.errors import StorageError
from repro.storage.index import AttributeIndex, IndexEntry
from repro.storage.persistence import load_repository, save_repository
from repro.storage.plan import CompiledCriterion, CompiledQuery, compile_query
from repro.storage.query import Criterion, Operator, Query
from repro.storage.replicas import ReplicaEntry, ReplicaRegistry
from repro.storage.repository import LocalRepository
from repro.storage.xquery import XQueryLite, XQueryResult, xquery

__all__ = [
    "DocumentStore",
    "StoredObject",
    "AttributeIndex",
    "IndexEntry",
    "Query",
    "Criterion",
    "Operator",
    "CompiledQuery",
    "CompiledCriterion",
    "compile_query",
    "QueryResultCache",
    "CacheEntry",
    "Attachment",
    "AttachmentStore",
    "LocalRepository",
    "ReplicaEntry",
    "ReplicaRegistry",
    "XQueryLite",
    "XQueryResult",
    "xquery",
    "save_repository",
    "load_repository",
    "StorageError",
]
