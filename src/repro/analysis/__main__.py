"""The detlint CLI: ``python -m repro.analysis [paths...]``.

Exit status: 0 when clean (after suppressions and the baseline),
1 when findings remain, 2 on usage errors.  ``--format github`` emits
GitHub Actions ``::error`` annotations so CI findings appear inline on
the PR diff.

The baseline file resolves in order: ``--baseline PATH``, the
``[tool.detlint] baseline`` key of ``./pyproject.toml``, then
``./detlint-baseline.txt`` if it exists.  ``--no-baseline`` disables
it; ``--write-baseline`` rewrites it from the current findings (with
TODO reasons for you to fill in — reasonless entries are rejected at
load time).
"""

from __future__ import annotations

import argparse
import sys
import tomllib
from pathlib import Path
from typing import Optional

from repro.analysis.baseline import (
    BaselineError,
    format_baseline,
    load_baseline,
    match_baseline,
)
from repro.analysis.detlint import Finding, analyze_paths
from repro.analysis.rules import RULES


def _resolve_baseline_path(explicit: Optional[str]) -> Optional[Path]:
    if explicit is not None:
        return Path(explicit)
    pyproject = Path("pyproject.toml")
    if pyproject.is_file():
        try:
            config = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError:
            config = {}
        configured = config.get("tool", {}).get("detlint", {}).get("baseline")
        if configured:
            return Path(configured)
    default = Path("detlint-baseline.txt")
    return default if default.is_file() else None


def _print_rules() -> None:
    for rule in RULES.values():
        print(f"{rule.id}: {rule.summary}")
        print(f"    {rule.rationale}")
        print()


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism & kernel-safety static analysis (see repro.analysis.rules)",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument("--format", choices=("text", "github"), default="text",
                        help="finding output format (github = ::error annotations)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline file of accepted findings")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from the current findings and exit")
    parser.add_argument("--scope-all", action="store_true",
                        help="apply every rule to every file regardless of its path "
                             "(path-scoped rules normally key off network//engine/ segments)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: python -m repro.analysis src/)", file=sys.stderr)
        return 2

    findings = analyze_paths(args.paths, scope_all=args.scope_all)

    baseline_path = None if args.no_baseline else _resolve_baseline_path(args.baseline)

    if args.write_baseline:
        target = baseline_path or Path("detlint-baseline.txt")
        target.write_text(format_baseline(findings), encoding="utf-8")
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    stale: list[tuple[str, str, str]] = []
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        findings, stale = match_baseline(findings, baseline)

    for finding in findings:
        print(finding.render_github() if args.format == "github" else finding.render())
    for path, rule, snippet in stale:
        print(
            f"warning: stale baseline entry (site fixed? delete it): "
            f"{path}\t{rule}\t{snippet}",
            file=sys.stderr,
        )
    if findings:
        print(
            f"\ndetlint: {len(findings)} finding(s).  Fix, or suppress inline with "
            "`# detlint: ignore[RULE] -- reason`, or baseline with --write-baseline.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
