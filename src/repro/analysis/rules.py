"""The detlint rule catalogue.

Every rule encodes one invariant the repository has either been bitten
by or leans on for its determinism/sharding story.  The docstring of a
rule is its contract: what it flags, why, and the historical incident
or architectural argument behind it.  Rules are suppressible inline
(``# detlint: ignore[RULE] -- reason``) or via the checked-in baseline
file — both require a stated reason, so every accepted site is a
documented decision.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One named, individually-suppressible check."""

    id: str
    summary: str
    rationale: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="DET001",
            summary="unsorted iteration over a set where order can reach a protocol decision",
            rationale=(
                "Python salts str hashes per process (PYTHONHASHSEED), so a "
                "set[str]'s iteration order reproduces within a run but flips "
                "between runs.  Historical incident: the PR 6 review fix — "
                "SuperPeerProtocol._on_peer_departed re-attached a dead "
                "super's orphaned leaves by iterating the leaves set[str] in "
                "raw order; re-attachment is least-loaded-first, so the "
                "iteration order decided the new leaf->super map and whole "
                "benchmark grids flipped with the salt.  Repeat-twice "
                "determinism tests cannot see this (both runs share one "
                "salt); only the subprocess TestHashSaltIndependence contract "
                "can, after the fact.  In protocol-decision modules "
                "(src/repro/network/, src/repro/engine/) iterate sets in "
                "sorted(...) order, or materialize through an "
                "order-insensitive reducer (sum/min/max/any/all/len/set)."
            ),
        ),
        Rule(
            id="DET002",
            summary="builtin hash() — salted per process; the bar is zlib.crc32",
            rationale=(
                "hash(str) changes with PYTHONHASHSEED, so anything derived "
                "from it — a shard assignment, a cache key, a tie-break — "
                "varies across processes while looking deterministic within "
                "one.  engine/partition.py's shard_of deliberately uses "
                "crc32(id) % shards for exactly this reason: the partition "
                "decides the event interleaving and must be reproducible "
                "across worker processes and interpreter versions.  Use "
                "zlib.crc32 (or a sorted key) instead of hash()."
            ),
        ),
        Rule(
            id="DET003",
            summary="module-level random.* / unseeded random.Random() instead of a seeded stream",
            rationale=(
                "Everything in the simulation is seeded: topology, link "
                "latencies, churn interarrivals, corpus sampling, workload "
                "splits (ARCHITECTURE.md 'Determinism').  The module-level "
                "random functions draw from one ambient, implicitly-seeded "
                "global stream, so any call order change — or another "
                "consumer anywhere in the process — silently reshuffles "
                "results.  Draw from an injected random.Random(seed) stream "
                "(e.g. simulator.random, ScenarioConfig.seed derivatives)."
            ),
        ),
        Rule(
            id="DET004",
            summary="wall-clock read (time.time/perf_counter/datetime.now) in simulation code",
            rationale=(
                "The virtual clock moves only by processing events — nothing "
                "in the simulation may observe real time, or results depend "
                "on host speed and load.  Wall-clock reads belong in "
                "benchmarks/ (and in explicitly-reported wall_s metrics); in "
                "simulation code use simulator.now."
            ),
        ),
        Rule(
            id="KERN001",
            summary="cross-shard hazard: raw schedule()/heap access in protocol code, "
            "or a kernel timer without shard affinity",
            rationale=(
                "The sharded kernel's determinism argument (engine/sharded.py) "
                "holds because every event enters the queue through a routed "
                "entry point: message deliveries via kernel.send -> "
                "simulator.post (routed to the recipient's shard, parked in "
                "the outbox when sent cross-shard mid-event), keyed timers "
                "via post_keyed.  A protocol calling simulator.schedule / "
                "schedule_at directly, or touching the _queue heap, bypasses "
                "_route and the barrier — under shards>1 that undermines the "
                "bit-identical contract the windowed execution provides.  "
                "Likewise EventKernel.every(...) without affinity= runs the "
                "timer on the control queue: correct for network-wide "
                "sweeps, wrong for per-peer maintenance, which should run on "
                "the peer's home shard (affinity=peer_id)."
            ),
        ),
        Rule(
            id="KERN002",
            summary="direct multiprocessing / os.fork use outside the sanctioned "
            "process-management modules",
            rationale=(
                "Exactly two modules may create processes: "
                "engine/parallel.py (the coordinator/worker barrier runtime "
                "for process-parallel shard execution) and workloads/ (the "
                "island-model population runner).  Both pick a spawn-safe "
                "start method deliberately, surface worker crashes loudly, "
                "and keep the determinism story — full-replica bootstrap, "
                "content-keyed fault streams — intact across process "
                "boundaries.  An ad-hoc multiprocessing import or os.fork() "
                "anywhere else dodges those guarantees: a forked child "
                "inherits live kernel state (heaps, interning tables, RNG "
                "positions) mid-flight, and an unmanaged pool can hang the "
                "suite when a worker dies.  Route process fan-out through "
                "ParallelShardRunner or workloads.scale instead."
            ),
        ),
        Rule(
            id="DETLINT",
            summary="malformed suppression: # detlint: ignore[...] without a reason",
            rationale=(
                "A suppression is an accepted risk, and accepted risks carry "
                "their justification at the site: "
                "# detlint: ignore[RULE] -- reason.  Without the reason the "
                "comment does not suppress anything."
            ),
        ),
    )
}
