"""The detlint baseline: accepted findings, checked in and reasoned.

A baseline entry grandfathers one existing finding so the gate can be
strict for new code without forcing a rewrite of every historical
site.  Entries are explicit — path, rule, the offending source line,
and a mandatory reason — so an accepted risk is a documented decision
a reviewer can see, not an invisible default.

Format (tab-separated, ``#`` comments and blank lines ignored)::

    path<TAB>RULE<TAB>stripped source line<TAB>reason

The stripped source line is the fingerprint: it survives the site
moving within its file (line numbers do not).  Identical lines in one
file take one entry each — matching consumes entries multiset-style.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.analysis.detlint import Finding

__all__ = ["BaselineError", "load_baseline", "match_baseline", "format_baseline"]


class BaselineError(ValueError):
    """A baseline file that cannot be parsed (or lacks a reason)."""


def load_baseline(path: Path) -> Counter:
    """Parse ``path`` into a fingerprint multiset."""
    entries: Counter = Counter()
    for number, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise BaselineError(
                f"{path}:{number}: expected 4 tab-separated fields "
                f"(path, rule, source line, reason), got {len(parts)}"
            )
        entry_path, rule, snippet, reason = (part.strip() for part in parts)
        if not reason:
            raise BaselineError(
                f"{path}:{number}: baseline entries must state a reason"
            )
        entries[(entry_path, rule, snippet)] += 1
    return entries


def match_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> tuple[list[Finding], list[tuple[str, str, str]]]:
    """Split findings into (new, ...) and report stale baseline entries.

    Returns ``(new_findings, stale_entries)``: findings not covered by
    the baseline, and baseline fingerprints that matched nothing (the
    site was fixed — the entry should be deleted).
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    for finding in findings:
        key = finding.fingerprint
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return new, stale


def format_baseline(findings: Iterable[Finding], *, reason: str = "TODO: justify") -> str:
    """Render findings as baseline lines (for ``--write-baseline``)."""
    header = (
        "# detlint baseline — accepted findings, one reasoned entry per site.\n"
        "# Format: path<TAB>RULE<TAB>stripped source line<TAB>reason\n"
        "# Regenerate with: python -m repro.analysis src/ --write-baseline\n"
        "# (then replace the TODO reasons — the gate refuses reasonless entries).\n"
    )
    # Matching is multiset-style, so identical lines in one file keep
    # one entry each — a set here would under-count duplicate sites.
    counts = Counter(finding.fingerprint for finding in findings)
    body = "".join(
        f"{path}\t{rule}\t{snippet}\t{reason}\n"
        for (path, rule, snippet), count in sorted(counts.items())
        for _ in range(count)
    )
    return header + body
