"""AST machinery behind detlint (see :mod:`repro.analysis.rules`).

Two passes over the analyzed files:

1. **Collection** builds a registry of set-typed attribute names
   (``leaves: set[str]``, ``field(default_factory=set)``,
   ``self.visited = set()``) and dict-of-set attribute names
   (``adjacency: dict[str, set[str]]``) across *all* files given, so a
   dataclass declared in one module informs checks in another.
2. **Checking** walks each file and flags rule violations, honouring
   inline suppressions (``# detlint: ignore[RULE] -- reason`` on the
   flagged or the preceding line; the reason is mandatory).

The set-typedness analysis is deliberately a heuristic, not a type
checker: it recognizes annotations, literal constructions and set
operators, which covers how this codebase actually writes protocol
state.  The mypy layer (``[tool.mypy]`` in pyproject.toml) carries the
interface contracts; detlint carries the determinism idioms mypy has
no opinion about.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Optional

__all__ = ["Finding", "SetRegistry", "analyze_paths", "analyze_source", "collect_registry"]

#: consumers whose result does not depend on iteration order, so a
#: generator expression over a set feeding them directly is safe.
#: (Known limitation: float summation is order-sensitive in the last
#: ulps; the protocol counters this repo sums are ints.)
_ORDER_INSENSITIVE_REDUCERS = frozenset(
    {"sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted"}
)

#: module-level functions of the ``random`` module (the ambient global
#: stream) whose use DET003 flags.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "getrandbits", "randbytes",
        "choice", "choices", "shuffle", "sample", "uniform", "seed",
        "triangular", "betavariate", "expovariate", "gammavariate",
        "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "binomialvariate",
    }
)

#: wall-clock reads on the ``time`` module.
_WALLCLOCK_TIME_FNS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time",
        "process_time_ns", "localtime", "gmtime", "ctime", "asctime",
    }
)

#: wall-clock constructors on ``datetime`` / ``date`` objects.
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

_SET_NAMES = frozenset({"set", "frozenset", "Set", "FrozenSet"})
_DICT_NAMES = frozenset({"dict", "Dict", "defaultdict", "DefaultDict"})

_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*ignore\[([A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: the stripped source line — the baseline fingerprint, robust to
    #: the site moving around the file
    snippet: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (PurePosixPath(self.path).as_posix(), self.rule, self.snippet)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def render_github(self) -> str:
        """GitHub Actions annotation format — findings show inline on PRs."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{self.message}"
        )


@dataclass
class SetRegistry:
    """Attribute names known to hold sets / dict-of-set values."""

    set_attrs: set[str] = field(default_factory=set)
    dict_set_attrs: set[str] = field(default_factory=set)


# ----------------------------------------------------------------------
# Annotation classification
# ----------------------------------------------------------------------
def _resolve_annotation(node: ast.expr) -> Optional[ast.expr]:
    """Unquote string annotations (``: "set[str]"``) into AST."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    return node


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):  # typing.Set, collections.defaultdict
        return node.attr
    return None


def _is_set_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    node = _resolve_annotation(node)
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    return _base_name(node) in _SET_NAMES


def _is_dict_of_set_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    node = _resolve_annotation(node)
    if not isinstance(node, ast.Subscript):
        return False
    if _base_name(node.value) not in _DICT_NAMES:
        return False
    if isinstance(node.slice, ast.Tuple) and len(node.slice.elts) == 2:
        return _is_set_annotation(node.slice.elts[1])
    return False


def _is_set_construction(node: Optional[ast.expr]) -> bool:
    """A value expression that literally builds a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and _base_name(node.func) in ("set", "frozenset"):
        return isinstance(node.func, ast.Name)
    return False


# ----------------------------------------------------------------------
# Pass 1: registry collection
# ----------------------------------------------------------------------
def collect_registry(trees: Iterable[ast.AST]) -> SetRegistry:
    """Harvest set-typed attribute names from every analyzed tree."""
    registry = SetRegistry()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                name: Optional[str] = None
                if isinstance(node.target, ast.Name):
                    name = node.target.id
                elif isinstance(node.target, ast.Attribute):
                    name = node.target.attr
                if name is None:
                    continue
                if _is_set_annotation(node.annotation):
                    registry.set_attrs.add(name)
                elif _is_dict_of_set_annotation(node.annotation):
                    registry.dict_set_attrs.add(name)
            elif isinstance(node, ast.Assign):
                if not _is_set_construction(node.value):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        registry.set_attrs.add(target.attr)
    return registry


# ----------------------------------------------------------------------
# Scope predicates
# ----------------------------------------------------------------------
def _path_parts(path: str) -> tuple[str, ...]:
    return PurePosixPath(PurePosixPath(path).as_posix()).parts


def _in_protocol_scope(path: str) -> bool:
    """Modules where iteration order can reach a protocol decision."""
    parts = _path_parts(path)
    return "network" in parts or "engine" in parts


def _in_network_scope(path: str) -> bool:
    return "network" in _path_parts(path)


def _in_benchmark_scope(path: str) -> bool:
    return "benchmarks" in _path_parts(path)


def _in_process_management_scope(path: str) -> bool:
    """The two module families sanctioned to create processes (KERN002):
    the parallel-shard runtime and the island-model workload runner."""
    parts = _path_parts(path)
    if "workloads" in parts:
        return True
    return len(parts) >= 2 and parts[-2:] == ("engine", "parallel.py")


# ----------------------------------------------------------------------
# Pass 2: the checker
# ----------------------------------------------------------------------
class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: list[str], registry: SetRegistry,
                 *, scope_all: bool = False) -> None:
        self.path = path
        self.lines = source_lines
        self.registry = registry
        self.scope_all = scope_all
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []
        #: per-function stacks of local variable names known to be sets
        self._local_sets: list[set[str]] = []
        self._parents: dict[ast.AST, ast.AST] = {}

    # -- plumbing ------------------------------------------------------
    def check(self, tree: ast.AST) -> list[Finding]:
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.visit(tree)
        return self.findings

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if line - 1 < len(self.lines) else ""
        self.findings.append(Finding(self.path, line, col, rule, message, snippet))

    def _in_simulator_class(self) -> bool:
        return any(name.endswith("Simulator") for name in self._class_stack)

    # -- scope flags ---------------------------------------------------
    @property
    def _det001_active(self) -> bool:
        return self.scope_all or _in_protocol_scope(self.path)

    @property
    def _kern001_schedule_active(self) -> bool:
        return (self.scope_all or _in_network_scope(self.path)) and not self._in_simulator_class()

    @property
    def _kern001_every_active(self) -> bool:
        return self.scope_all or _in_protocol_scope(self.path)

    @property
    def _det004_active(self) -> bool:
        return self.scope_all or not _in_benchmark_scope(self.path)

    @property
    def _kern002_active(self) -> bool:
        # The exemption is the rule's semantics, not a scope default:
        # engine/parallel.py and workloads/ stay exempt under scope_all.
        return not _in_process_management_scope(self.path)

    # -- set-ish expression detection ---------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._local_sets)
        if isinstance(node, ast.Attribute):
            return node.attr in self.registry.set_attrs
        if isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Attribute) and value.attr in self.registry.dict_set_attrs:
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                # set algebra / copies preserve set-ness
                if func.attr in ("union", "intersection", "difference",
                                 "symmetric_difference", "copy"):
                    return self._is_set_expr(func.value)
                # dict-of-set accessors yield the set value
                if func.attr in ("pop", "get", "setdefault") and isinstance(
                    func.value, ast.Attribute
                ) and func.value.attr in self.registry.dict_set_attrs:
                    return True
        return False

    def _flag_set_iteration(self, node: ast.expr, where: str) -> None:
        self._add(
            node,
            "DET001",
            f"unsorted iteration over a set reaches {where} in a protocol-decision "
            "module; wrap in sorted(...) (set iteration order varies with "
            "PYTHONHASHSEED across processes)",
        )

    # -- local set-variable tracking ----------------------------------
    def _scan_locals(self, node: ast.AST) -> set[str]:
        names: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
                if _is_set_annotation(child.annotation):
                    names.add(child.target.id)
            elif isinstance(child, ast.Assign) and _is_set_construction(child.value):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    # -- visitors ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.AST) -> None:
        self._local_sets.append(self._scan_locals(node))
        self.generic_visit(node)
        self._local_sets.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_For(self, node: ast.For) -> None:
        if self._det001_active and self._is_set_expr(node.iter):
            self._flag_set_iteration(node.iter, "a for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST, kind: str) -> None:
        if self._det001_active:
            for generator in node.generators:  # type: ignore[attr-defined]
                if self._is_set_expr(generator.iter):
                    self._flag_set_iteration(generator.iter, kind)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "a list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "a dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # A genexp feeding an order-insensitive reducer directly
        # (sum/min/max/any/all/len/set/frozenset/sorted) is safe.
        parent = self._parents.get(node)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE_REDUCERS
            and node in parent.args
        ):
            self.generic_visit(node)
            return
        self._check_comprehension(node, "a generator expression")

    def visit_Import(self, node: ast.Import) -> None:
        if self._kern002_active:
            for alias in node.names:
                if alias.name == "multiprocessing" or alias.name.startswith("multiprocessing."):
                    self._add(
                        node,
                        "KERN002",
                        "direct multiprocessing use outside engine/parallel.py and "
                        "workloads/; route process fan-out through "
                        "ParallelShardRunner or workloads.scale",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._kern002_active and node.module is not None:
            if node.module == "multiprocessing" or node.module.startswith("multiprocessing."):
                self._add(
                    node,
                    "KERN002",
                    "direct multiprocessing use outside engine/parallel.py and "
                    "workloads/; route process fan-out through "
                    "ParallelShardRunner or workloads.scale",
                )
            elif node.module == "os" and any(
                alias.name in ("fork", "forkpty") for alias in node.names
            ):
                self._add(
                    node,
                    "KERN002",
                    "importing os.fork outside engine/parallel.py and workloads/; "
                    "a forked child inherits live kernel state mid-flight",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "_queue" and self._kern001_schedule_active:
            self._add(
                node,
                "KERN001",
                "direct event-heap access in protocol code; go through "
                "kernel.send / simulator.post so the sharded barrier can route it",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # DET001: materializing a set in iteration order
        if self._det001_active:
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple")
                and len(node.args) == 1
                and self._is_set_expr(node.args[0])
            ):
                self._flag_set_iteration(node.args[0], f"{func.id}(...) materialization")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and len(node.args) == 1
                and self._is_set_expr(node.args[0])
            ):
                self._flag_set_iteration(node.args[0], "str.join")

        # DET002: builtin hash()
        if isinstance(func, ast.Name) and func.id == "hash":
            self._add(
                node,
                "DET002",
                "builtin hash() is salted per process (PYTHONHASHSEED); use "
                "zlib.crc32 for anything whose value can reach a protocol decision",
            )

        if isinstance(func, ast.Attribute):
            owner = func.value
            # KERN002: raw process creation outside the sanctioned modules
            if (
                self._kern002_active
                and isinstance(owner, ast.Name)
                and owner.id == "os"
                and func.attr in ("fork", "forkpty")
            ):
                self._add(
                    node,
                    "KERN002",
                    f"os.{func.attr}() outside engine/parallel.py and workloads/; "
                    "a forked child inherits live kernel state (heaps, RNG "
                    "positions, interning tables) mid-flight",
                )
            # DET003: the ambient global random stream
            if isinstance(owner, ast.Name) and owner.id == "random":
                if func.attr in _GLOBAL_RANDOM_FNS:
                    self._add(
                        node,
                        "DET003",
                        f"random.{func.attr}() draws from the ambient global stream; "
                        "use an injected seeded random.Random (e.g. simulator.random)",
                    )
                elif func.attr == "Random" and not node.args and not node.keywords:
                    self._add(
                        node,
                        "DET003",
                        "random.Random() without a seed is entropy-seeded; pass an "
                        "explicit seed derived from the scenario seed",
                    )
            # DET004: wall clock
            if self._det004_active and isinstance(owner, ast.Name):
                if owner.id == "time" and func.attr in _WALLCLOCK_TIME_FNS:
                    self._add(
                        node,
                        "DET004",
                        f"time.{func.attr}() reads the wall clock; simulation code "
                        "must use simulator.now (wall-clock timing belongs in benchmarks/)",
                    )
                elif owner.id in ("datetime", "date") and func.attr in _WALLCLOCK_DATETIME_FNS:
                    self._add(
                        node,
                        "DET004",
                        f"{owner.id}.{func.attr}() reads the wall clock; simulation "
                        "code must use simulator.now",
                    )
            if (
                self._det004_active
                and isinstance(owner, ast.Attribute)
                and owner.attr == "datetime"
                and func.attr in _WALLCLOCK_DATETIME_FNS
            ):
                self._add(node, "DET004",
                          f"datetime.{func.attr}() reads the wall clock; simulation "
                          "code must use simulator.now")

            # KERN001: raw scheduling in protocol code
            if self._kern001_schedule_active and func.attr in ("schedule", "schedule_at"):
                self._add(
                    node,
                    "KERN001",
                    f".{func.attr}() bypasses the sharded simulator's routing/outbox; "
                    "protocol code must send through kernel.send or simulator.post/post_keyed",
                )
            # KERN001: kernel timers without shard affinity
            if (
                self._kern001_every_active
                and func.attr == "every"
                and not any(keyword.arg == "affinity" for keyword in node.keywords)
            ):
                self._add(
                    node,
                    "KERN001",
                    ".every(...) without affinity= runs the timer on the control "
                    "queue; per-peer maintenance should name its peer "
                    "(affinity=peer_id) so it executes on that peer's shard",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _apply_suppressions(findings: list[Finding], path: str,
                        lines: list[str]) -> list[Finding]:
    """Drop findings covered by a reasoned inline suppression.

    An end-of-line suppression covers the line it sits on.  A suppression
    on a comment-only line covers the next code line (the rest of the
    comment block, if any, is skipped over — so the reason can run to
    several lines above a long statement).  A suppression without a
    reason suppresses nothing and is itself flagged.
    """
    suppressed_rules: dict[int, set[str]] = {}
    malformed: list[Finding] = []
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if match.group("reason") is None:
            malformed.append(
                Finding(
                    path, number, match.start(), "DETLINT",
                    "suppression without a reason — write "
                    "`# detlint: ignore[RULE] -- reason`",
                    text.strip(),
                )
            )
            continue
        suppressed_rules.setdefault(number, set()).update(rules)
        if text.strip().startswith("#"):
            # Comment-only line: cover the next code line, however many
            # continuation comment lines sit in between.
            cursor = number
            while cursor < len(lines):
                cursor += 1
                following = lines[cursor - 1].strip()
                if following and not following.startswith("#"):
                    break
            suppressed_rules.setdefault(cursor, set()).update(rules)

    kept = [
        finding
        for finding in findings
        if finding.rule not in suppressed_rules.get(finding.line, ())
    ]
    return kept + malformed


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_source(source: str, path: str, registry: Optional[SetRegistry] = None,
                   *, scope_all: bool = False) -> list[Finding]:
    """Analyze one file's source text (the unit-test entry point)."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    if registry is None:
        registry = collect_registry([tree])
    else:
        extra = collect_registry([tree])
        registry = SetRegistry(
            set_attrs=registry.set_attrs | extra.set_attrs,
            dict_set_attrs=registry.dict_set_attrs | extra.dict_set_attrs,
        )
    findings = _Checker(path, lines, registry, scope_all=scope_all).check(tree)
    findings = _apply_suppressions(findings, path, lines)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def analyze_paths(paths: Iterable[str], *, scope_all: bool = False) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths`` (dirs walk recursively)."""
    files: list[tuple[str, str]] = []
    for file_path in _iter_python_files(paths):
        try:
            files.append((str(file_path), file_path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError):
            continue
    trees: list[tuple[str, str, ast.AST]] = []
    for name, source in files:
        try:
            trees.append((name, source, ast.parse(source, filename=name)))
        except SyntaxError:
            trees.append((name, source, ast.Module(body=[], type_ignores=[])))
    registry = collect_registry(tree for _, _, tree in trees)
    findings: list[Finding] = []
    for name, source, tree in trees:
        lines = source.splitlines()
        file_findings = _Checker(name, lines, registry, scope_all=scope_all).check(tree)
        findings.extend(_apply_suppressions(file_findings, name, lines))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
