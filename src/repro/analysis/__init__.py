"""detlint: determinism & kernel-safety static analysis for this repo.

The repository's strongest invariant — a fixed seed reproduces message
and byte counts bit-for-bit, across processes and across shard counts
(ARCHITECTURE.md "Determinism") — is easy to break with one line of
ordinary-looking Python: an unsorted ``set[str]`` iteration that
reaches a protocol decision, a builtin ``hash()`` call, a wall-clock
read in simulation code, a cross-shard send that bypasses the sharded
barrier.  Contract tests catch some of this after the fact; the PR 6
review chased a cross-process nondeterminism bug (unsorted orphan-leaf
re-attachment in ``superpeer.py``) that repeat-twice determinism tests
structurally *cannot* see, because both runs share one hash salt.

This package machine-checks those rules at lint time.  Each rule is
named, individually suppressible inline
(``# detlint: ignore[RULE] -- reason``, reason mandatory) and
baseline-able (``detlint-baseline.txt``), so accepted sites are
explicit rather than invisible.  Run it as::

    python -m repro.analysis src/

The rule catalogue lives in :mod:`repro.analysis.rules`; the AST
machinery in :mod:`repro.analysis.detlint`.  Everything is stdlib-only
so the gate costs nothing to install.
"""

from repro.analysis.detlint import Finding, analyze_paths, analyze_source
from repro.analysis.rules import RULES, Rule

__all__ = ["Finding", "Rule", "RULES", "analyze_paths", "analyze_source"]
