"""The discrete-event simulation engine underneath the protocol adapters.

The engine turns each protocol's ``search`` from a synchronous graph
walk into message traffic over a shared event queue: messages are
scheduled for delivery after the simulated link latency, per-peer
handlers react to arriving messages by producing more messages, and a
query completes when none of its messages remain in flight.  This is
what lets many queries overlap in virtual time and lets churn strike a
query mid-flight.
"""

from repro.engine.kernel import (
    EventKernel,
    ExchangeContext,
    MaintenanceTimer,
    MembershipContext,
    QueryContext,
    RetrieveContext,
)
from repro.engine.driver import BatchOutcome, QueryDriver, RetrieveOp, SearchOp
from repro.engine.local import local_matches

__all__ = [
    "EventKernel",
    "ExchangeContext",
    "MaintenanceTimer",
    "MembershipContext",
    "QueryContext",
    "RetrieveContext",
    "QueryDriver",
    "BatchOutcome",
    "SearchOp",
    "RetrieveOp",
    "local_matches",
]
