"""Process-parallel shard execution: one topology, N worker processes.

`engine/sharded.py` proves in-process that a conservative time-window
barrier over partitioned event heaps reproduces the single-queue run
bit-for-bit.  This module cashes that proof into wall-clock parallelism:
each worker process owns a subset of the shards, runs their windows to
exhaustion locally, ships cross-shard outboxes to the coordinator over a
pipe once per barrier, and receives the merged inbound deliveries plus
the next window bound.  The lookahead-violation assertion carries over
verbatim from :class:`~repro.engine.sharded.ShardedSimulator` so
protocol bugs still fail loud instead of silently diverging.

Architecture (full-replica workers):

* Every worker builds the *entire* scenario deterministically from the
  same :class:`~repro.workloads.scenario.ScenarioConfig` — topology,
  corpus, and workload are a pure function of the seed, so replication
  costs only memory, never divergence.
* Events are split into two planes.  The **control plane** (timers,
  submissions, membership floods, registrations, acks — everything not
  in :data:`SHARD_ROUTED_TYPE_VALUES`) is replicated: every worker
  executes it in lockstep on an identical control heap with an identical
  sequence counter.  The **shard plane** (query/query-hit/download
  traffic) is partitioned: a delivery executes only in the worker that
  owns the destination shard; cross-worker deliveries ship through the
  barrier exactly like cross-shard deliveries ship through the in-process
  outbox.
* Per-context counters (``pending``, ``messages_sent``, ``bytes_sent``,
  ``peers_probed``) are instrumented as mode-split deltas; the
  coordinator sums shard-plane deltas across workers and broadcasts
  context completions, so "pending reached zero" is decided globally
  with the same timing as the serial run.
* Finishing a query/retrieve canonicalizes the context through a sync
  rendezvous: control-plane parts are asserted identical across workers,
  shard-plane parts are summed, and owner-held payloads (result lists,
  transfer bytes) ship to every replica so recorded statistics are
  bit-identical to ``shards=1``.

The coordinator (:class:`ParallelShardRunner`) is strictly lockstep —
one message from every worker per round, all sharing a tag — so a
protocol bug deadlocks loudly (poll timeout kills the children and
raises) instead of hanging forever.
"""

from __future__ import annotations

import heapq
import itertools
import pickle
import time
import traceback
from typing import Any, Callable, Dict, List, Optional

# engine/parallel.py is the sanctioned home for process management
# (detlint KERN002); everything else must route through here or
# workloads/.
import multiprocessing
import multiprocessing.connection

from repro.engine.kernel import EventKernel
from repro.engine.partition import shard_of
from repro.network import messages as messages_module
from repro.network.messages import Message
from repro.network.simulator import (
    _ARGS,
    _CALLBACK,
    _SEQUENCE,
    _TIME,
    EventHandle,
    LatencyModel,
    NetworkSimulator,
    SimulationTruncated,
)
from repro.network.stats import NetworkStats

#: message types whose *deliveries* execute only in the owner worker of
#: the destination shard.  Everything else (ping/pong floods, register,
#: join/leave, leaf attach/detach, ad renewals, acks) is control-plane:
#: replicated in every worker so shared protocol state (server tables,
#: overlay membership, caches) stays identical everywhere.
SHARD_ROUTED_TYPE_VALUES = frozenset({
    "query",
    "query-hit",
    "download-request",
    "download-response",
    "push",
})

#: shipped/broadcast entries are re-sequenced above every locally drawn
#: sequence number so that, at equal times, locally scheduled events pop
#: before barrier-applied ones — uniformly in every worker.
SHIP_BASE = 1 << 40

#: sentinel shard id for the control heap (mirrors sharded.CONTROL).
CONTROL = -1

_WIRE_DELIVER = 0
_WIRE_DROP = 1


class _ModalMessageCounter:
    """Replaces ``messages._message_counter`` inside a worker.

    Control-plane draws are replicated (every worker draws the same
    ``c<n>``); shard-plane draws happen only in the executing worker and
    are namespaced by rank (``<rank>s<n>``) so ids can never collide.
    Message ids never reach ``size_bytes`` so the divergent *content* is
    invisible to every pinned observable.
    """

    def __init__(self, runtime: "WorkerRuntime") -> None:
        self._runtime = runtime
        self._ctrl = itertools.count(1)
        self._shard = itertools.count(1)

    def __next__(self) -> str:
        if self._runtime.mode == "ctrl":
            return f"c{next(self._ctrl)}"
        return f"{self._runtime.rank}s{next(self._shard)}"


_RUNTIME: Optional["WorkerRuntime"] = None


def current_runtime() -> Optional["WorkerRuntime"]:
    """The active worker runtime, or ``None`` outside a worker."""
    return _RUNTIME


class WorkerRuntime:
    """Per-process state shared by the worker simulator/kernel/stats."""

    def __init__(self, rank: int, workers: int,
                 conn: "multiprocessing.connection.Connection") -> None:
        self.rank = rank
        self.workers = workers
        self.conn = conn
        #: "ctrl" while a replicated event executes, "shard" while an
        #: owner-only event executes.  Swapped by WorkerSimulator.step.
        self.mode = "ctrl"
        #: True while barrier ops (replicated completions/doc stores)
        #: are being applied — instrumentation and stats stay silent.
        self.applying_ops = False
        #: context id -> live context object (for completion application)
        self.contexts: Dict[int, Any] = {}
        #: replicated contexts draw even cids in lockstep
        self._ctrl_cids = itertools.count(0)
        #: shard contexts draw odd cids namespaced by rank
        self._shard_cids = itertools.count(0)
        #: cid -> [ctrl_delta, shard_delta, max_dec_time] accumulated
        #: since the last barrier (``pending`` ledger).
        self.pending_ledger: Dict[int, List[float]] = {}
        #: cids whose ``pending`` first went positive since the last
        #: barrier (the coordinator only completes ever-active contexts)
        self.newly_active: List[int] = []
        #: replicated-operation queue drained at the next barrier
        #: (document completions that must replicate to other workers).
        self.ops: List[tuple] = []
        self.simulator: Optional["WorkerSimulator"] = None
        self.kernel: Optional[Any] = None
        self.network: Optional[Any] = None

    # -- context registry -------------------------------------------------

    def register_context(self, context: Any) -> None:
        if self.applying_ops:
            return
        if self.mode == "ctrl":
            cid = 2 * next(self._ctrl_cids)
        else:
            cid = 2 * (next(self._shard_cids) * self.workers + self.rank) + 1
        self.contexts[cid] = context
        object.__setattr__(context, "_cid", cid)
        object.__setattr__(context, "_mode_parts", {
            "ctrl": {}, "shard": {},
        })
        object.__setattr__(context, "_ever_active", False)
        object.__setattr__(context, "_synced", False)

    def note_field(self, context: Any, name: str, delta: float) -> None:
        """Record an instrumented field delta in the active plane."""
        if self.applying_ops:
            return
        parts = getattr(context, "_mode_parts", None)
        if parts is None:
            return
        bucket = parts[self.mode]
        bucket[name] = bucket.get(name, 0) + delta
        if name != "pending":
            return
        cid = getattr(context, "_cid", None)
        if cid is None:
            return
        entry = self.pending_ledger.setdefault(cid, [0, 0, 0.0])
        if self.mode == "ctrl":
            entry[0] += delta
        else:
            entry[1] += delta
        if delta > 0:
            if not getattr(context, "_ever_active", False):
                object.__setattr__(context, "_ever_active", True)
                self.newly_active.append(cid)
        elif self.simulator is not None:
            entry[2] = max(entry[2], self.simulator.now)

    # -- ownership --------------------------------------------------------

    def worker_of_shard(self, shard: int) -> int:
        return shard % self.workers

    def owns_shard(self, shard: int) -> bool:
        return shard % self.workers == self.rank

    # -- rendezvous plumbing ---------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one message to the coordinator and await its reply."""
        self.conn.send(payload)
        if not self.conn.poll(600.0):
            raise RuntimeError(
                f"worker {self.rank}: coordinator unresponsive for 600s "
                f"after {payload.get('tag')!r}")
        return self.conn.recv()


# ---------------------------------------------------------------------------
# Context instrumentation
# ---------------------------------------------------------------------------

class _ModalField:
    """Data descriptor splitting a context counter into per-plane deltas.

    The backing attribute ``_p_<name>`` holds the raw value; every write
    reports its delta to the active runtime so the coordinator can sum
    shard-plane contributions across workers and the sync rendezvous can
    canonicalize finished contexts.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.backing = f"_p_{name}"

    def __get__(self, obj: Any, objtype: Any = None) -> Any:
        if obj is None:
            return self
        return getattr(obj, self.backing, 0)

    def __set__(self, obj: Any, value: Any) -> None:
        previous = getattr(obj, self.backing, 0)
        object.__setattr__(obj, self.backing, value)
        runtime = _RUNTIME
        if runtime is not None and value != previous:
            runtime.note_field(obj, self.name, value - previous)


_INSTRUMENTED = False


def _instrument_contexts() -> None:
    """Install modal descriptors + registration wraps (once per process)."""
    global _INSTRUMENTED
    if _INSTRUMENTED:
        return
    _INSTRUMENTED = True
    from repro.engine.kernel import (
        ExchangeContext,
        MembershipContext,
        QueryContext,
        RetrieveContext,
    )

    for name in ("pending", "messages_sent", "bytes_sent"):
        setattr(ExchangeContext, name, _ModalField(name))
        setattr(ExchangeContext, f"_p_{name}", 0)
    QueryContext.peers_probed = _ModalField("peers_probed")
    QueryContext._p_peers_probed = 0

    for cls in (ExchangeContext, QueryContext, MembershipContext,
                RetrieveContext):
        original = cls.__init__

        def wrapped(self, *args, __original=original, **kwargs):
            __original(self, *args, **kwargs)
            runtime = _RUNTIME
            if runtime is not None:
                runtime.register_context(self)

        cls.__init__ = wrapped


def _activate(runtime: WorkerRuntime) -> None:
    """Install the worker runtime as this process's active one."""
    global _RUNTIME
    _RUNTIME = runtime
    _instrument_contexts()
    messages_module._message_counter = _ModalMessageCounter(runtime)


# ---------------------------------------------------------------------------
# Stats gating
# ---------------------------------------------------------------------------

class WorkerStats(NetworkStats):
    """Stats that count each event exactly once across the worker fleet.

    Shard-plane events are recorded by the worker that executed them;
    control-plane events execute in every worker but are recorded only
    by rank 0.  Summing per-worker stats with :meth:`NetworkStats.merge`
    then reproduces the single-process totals exactly.

    Records are *staged* with the virtual time of the event that made
    them and committed only once the canonical clock passes that time.
    A worker runs each window to exhaustion, so it executes background
    events (churn transitions, maintenance ticks) that land *after* the
    event that settled the drive loop — events a serial run leaves
    queued.  Their records stay staged; the finalization sweep (at the
    last aligned clock) discards exactly the ones serial never made.
    Every contract observable is an order-insensitive aggregate or a
    code-driven list, so deferred commit order cannot leak.
    """

    def __init__(self, runtime: WorkerRuntime) -> None:
        super().__init__()
        self._runtime = runtime
        self._staged: List[tuple] = []

    def _counts(self) -> bool:
        runtime = self._runtime
        if runtime.applying_ops:
            return False
        return runtime.mode == "shard" or runtime.rank == 0

    def commit_through(self, time_ms: float) -> None:
        """Commit staged records whose event time is ``<= time_ms``."""
        if not self._staged:
            return
        keep: List[tuple] = []
        for staged in self._staged:
            if staged[0] <= time_ms:
                getattr(NetworkStats, staged[1])(self, *staged[2], **staged[3])
            else:
                keep.append(staged)
        self._staged = keep

    def discard_staged(self) -> None:
        self._staged = []

    def reset(self) -> None:
        self._staged = []
        super().reset()


def _gate(method_name: str) -> Callable:
    def gated(self, *args, **kwargs):
        if self._counts():
            self._staged.append(
                (self._runtime.simulator._now, method_name, args, kwargs))
        return None

    gated.__name__ = method_name
    return gated


for _name in ("record_message", "record", "record_query", "record_download",
              "record_registration", "record_staleness", "record_uptime",
              "record_cache_hit", "record_cache_miss", "record_drop",
              "record_duplicate", "record_retry", "record_timeout",
              "record_failover", "record_routing_pruned",
              "record_routing_fallback", "record_routing_fp",
              "record_filter_advert"):
    setattr(WorkerStats, _name, _gate(_name))
del _name


# ---------------------------------------------------------------------------
# Worker kernel
# ---------------------------------------------------------------------------

class WorkerKernel(EventKernel):
    """Kernel whose completion decisions defer to the coordinator.

    Local ``pending`` counters only see this worker's share of an
    exchange — a query's hits may decrement in another worker — so
    :meth:`_complete` is a no-op and contexts complete when the
    coordinator's global pending ledger reaches zero (applied at a
    barrier via :meth:`force_complete`).  The only locally decided
    completions are the replicated ones every worker reaches
    identically: zero-activity exchanges (:meth:`finish_if_idle`) and
    drained-queue starvation (:meth:`mark_starved`).
    """

    def __init__(self, runtime: WorkerRuntime, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._rt = runtime
        self.network: Optional[Any] = None
        #: True while barrier ops replay a remote document completion —
        #: the owner's real sends already happened (and shipped), so the
        #: replica's re-announce must not send again.
        self._suppress_sends = False
        runtime.kernel = self

    def bind_network(self, network: Any) -> None:
        """Attach the owning network (ops replay needs its methods)."""
        self.network = network
        self._rt.network = network

    def add_virtual_node(self, node_id: str) -> None:
        super().add_virtual_node(node_id)
        # Virtual nodes (the centralized index server) concentrate
        # shared protocol state; their deliveries are control-routed so
        # that state replicates instead of living in one worker.
        self.simulator.mark_control_node(node_id)

    def send(self, message: Message, *, context: Any = None,
             copies: int = 1, latency_ms: Optional[float] = None) -> None:
        if self._suppress_sends:
            return
        super().send(message, context=context, copies=copies,
                     latency_ms=latency_ms)

    # -- completion ------------------------------------------------------

    def _complete(self, context: Any) -> None:
        # Global pending is only known to the coordinator; local zero
        # crossings are meaningless (this worker may hold a negative
        # share of the count).  Completion arrives via the barrier.
        pass

    def force_complete(self, context: Any, at_ms: float) -> None:
        """Apply a completion (coordinator-decided or replicated-local)."""
        if context.done:
            return
        context.done = True
        context.completed_at = at_ms
        if context.watcher is not None:
            context.watcher(context)

    def finish_if_idle(self, context: Any) -> None:
        # A zero-activity exchange (purely local answer) never reports a
        # pending delta, so the coordinator will never complete it.
        # This call site is replicated (it runs synchronously inside the
        # submitting event), so completing locally is lockstep-safe.
        if (context.pending == 0 and not context.done
                and not getattr(context, "_ever_active", False)):
            self.force_complete(context, self.simulator.now)

    def mark_starved(self, contexts: List[Any]) -> int:
        # The drain decision is global (the coordinator found no next
        # window), so every worker starves the same contexts at the same
        # drain time.
        starved = 0
        for context in contexts:
            if not context.done:
                context.starved = True
                self.force_complete(context, self.simulator.now)
                starved += 1
        return starved

    # -- document replication --------------------------------------------

    def note_document_completed(self, peer: Any, context: Any,
                                stored: Any) -> None:
        """A document finished arriving at ``peer`` (owner-side, shard
        plane): queue a replication op so every other worker's replica
        registry and repository see the same new copy."""
        if self._rt.applying_ops or self._rt.mode != "shard":
            return
        cid = getattr(context, "_cid", None)
        if cid is None:
            raise RuntimeError(
                "document completed on an unregistered context in parallel mode")
        self._rt.ops.append(("doc", cid, peer.peer_id, stored, self.simulator.now))

    def note_result_claims(self, context: Any, identities: tuple) -> None:
        """A caching-mode answer path claimed ``identities`` (owner-side,
        shard plane): queue a replication op so every other worker's
        promised-result registry filters the same claims.  Combined with
        serving isolation (see :meth:`WorkerSimulator._serve_scan`) this
        keeps the registry serial-equal at every cached serving."""
        if not identities or self._rt.applying_ops or self._rt.mode != "shard":
            return
        cid = getattr(context, "_cid", None)
        if cid is None:
            raise RuntimeError(
                "result claims on an unregistered context in parallel mode")
        self._rt.ops.append(("claims", cid, tuple(identities)))

    def apply_op(self, op: tuple) -> None:
        """Replay one of a remote worker's replicated operations."""
        if op[0] == "doc":
            self.apply_document_op(op[1:])
        elif op[0] == "claims":
            self.apply_claims_op(op)
        else:
            raise RuntimeError(f"unknown replicated op tag {op[0]!r}")

    def apply_claims_op(self, op: tuple) -> None:
        """Union a remote worker's promised-result claims locally.

        Set-union is commutative and idempotent, and the registry drives
        no stats or pending accounting on its own, so replaying claims
        one barrier late is exact as long as every *reader* of the
        registry executes after the barrier that carries the claims it
        must see — which serving isolation guarantees."""
        _tag, cid, identities = op
        context = self._rt.contexts.get(cid)
        if context is None:
            return
        self._rt.applying_ops = True
        try:
            self.network._promised_results(context).update(identities)
        finally:
            self._rt.applying_ops = False

    def apply_document_op(self, op: tuple) -> None:
        """Replay a remote worker's document completion locally."""
        cid, peer_id, stored, at_ms = op
        context = self._rt.contexts.get(cid)
        if context is None or context.stored is not None:
            return  # the owner itself, or a duplicate replay
        peer = self.peers.get(peer_id)
        if peer is None:
            return
        simulator = self.simulator
        saved_now = simulator._now
        saved_mode = self._rt.mode
        self._rt.applying_ops = True
        self._rt.mode = "shard"
        self._suppress_sends = True
        try:
            simulator._now = at_ms
            self.network._complete_document(peer, context, stored)
        finally:
            simulator._now = saved_now
            self._rt.mode = saved_mode
            self._rt.applying_ops = False
            self._suppress_sends = False

    # -- finish-time canonicalization ------------------------------------

    def sync_context(self, context: Any) -> None:
        """Rendezvous with every worker to canonicalize a finished
        context: control-plane parts are asserted identical, shard-plane
        parts are summed across workers, and the owner ships the payload
        (results / transfer bytes) to every replica."""
        if getattr(context, "_synced", False):
            return
        object.__setattr__(context, "_synced", True)
        rt = self._rt
        cid = getattr(context, "_cid", None)
        if cid is None:
            return
        parts = getattr(context, "_mode_parts", {"ctrl": {}, "shard": {}})
        payload: Dict[str, Any] = {
            "tag": "sync",
            "rank": rt.rank,
            "cid": cid,
            "ctrl": parts["ctrl"],
            "shard": parts["shard"],
            "extra": {key: context.extra.get(key)
                      for key in ("cache_hit", "remote_cache_served")
                      if key in context.extra},
        }
        from repro.engine.kernel import QueryContext, RetrieveContext
        owner_id = None
        if isinstance(context, QueryContext):
            owner_id = context.origin_id
        elif isinstance(context, RetrieveContext):
            owner_id = context.requester_id
            payload["error"] = context.error
        simulator = self.simulator
        is_owner = (owner_id is not None and rt.owns_shard(
            simulator.shard_of_node(owner_id)))
        payload["owner"] = is_owner
        if is_owner:
            if isinstance(context, QueryContext):
                payload["results"] = pickle.dumps(
                    (list(context.results), context.first_hit_hops),
                    protocol=pickle.HIGHEST_PROTOCOL)
            else:
                payload["transfer"] = (context.transfer_bytes,
                                       context.attachments_transferred)
        response = rt.request(payload)
        # Canonical scalars: replicated part + summed shard part.
        for name in ("messages_sent", "bytes_sent"):
            object.__setattr__(context, f"_p_{name}", response["fields"][name])
        if isinstance(context, QueryContext):
            object.__setattr__(context, "_p_peers_probed",
                               response["fields"]["peers_probed"])
            if response.get("results") is not None:
                results, first_hops = pickle.loads(response["results"])
                context.results[:] = results
                context.first_hit_hops = first_hops
        elif isinstance(context, RetrieveContext):
            if response.get("transfer") is not None:
                context.transfer_bytes, context.attachments_transferred = (
                    response["transfer"])
            if response.get("error") is not None and context.error is None:
                context.error = response["error"]
        for key, value in response.get("extra", {}).items():
            if value:
                context.extra[key] = value


# ---------------------------------------------------------------------------
# Worker simulator
# ---------------------------------------------------------------------------

class WorkerSimulator(NetworkSimulator):
    """One worker's view of the partitioned event queue.

    Owns the shard heaps of ``shard % workers == rank`` plus a control
    heap replicated in every worker.  Windows come from the coordinator;
    within a window the worker pops the local ``(time, sequence)`` min
    across its heaps, exactly like :class:`ShardedSimulator` does across
    all heaps — the windowed-barrier argument makes the local order
    equivalent for every observable.
    """

    def __init__(self, runtime: WorkerRuntime, *,
                 latency: Optional[LatencyModel] = None, seed: int = 0,
                 shards: int) -> None:
        super().__init__(latency=latency, seed=seed)
        if shards < 2:
            raise ValueError("parallel execution needs at least two shards")
        self._rt = runtime
        runtime.simulator = self
        self.shards = shards
        self._assignment: Dict[str, int] = {}
        self._control_nodes: set = set()
        self._lookahead = self.latency_model.base_ms
        if self._lookahead <= 0:
            raise ValueError(
                "parallel execution needs a positive lookahead "
                "(LatencyModel.base_ms)")
        #: shard id -> heap, for the shards this worker owns.  The
        #: inherited ``_queue`` is the replicated control heap.
        self._shard_queues: Dict[int, list] = {
            shard: [] for shard in range(shards)
            if shard % runtime.workers == runtime.rank
        }
        #: destination rank -> parked cross-worker entries (flushed into
        #: one pickle per destination at each barrier)
        self._outboxes: List[list] = [[] for _ in range(runtime.workers)]
        #: control-routed deliveries generated in shard mode: shipped to
        #: every worker (self included) at the barrier so the replicated
        #: heaps receive them with identical sequence numbers
        self._bcast: list = []
        # Split sequence spaces: the control counter advances in
        # replicated lockstep (even), the shard counter is per-worker
        # (odd).  ``step`` swaps ``_sequence`` to match the active mode.
        self._ctrl_sequence = itertools.count(0, 2)
        self._shard_sequence = itertools.count(1, 2)
        self._sequence = self._ctrl_sequence
        self._window_start = 0.0
        self._window_end = float("-inf")
        #: serving-isolation stop for the current window: no event with
        #: a ``(time, sequence)`` key past (exclusive) or beyond
        #: (inclusive) the stop key may pop — see ``_serve_scan``.
        self._stop_key: Optional[tuple] = None
        self._stop_inclusive = False
        self._active_shard: Optional[int] = None
        self._run_bound: Optional[float] = None
        # Observability
        self.windows = 0
        self.cross_shard_messages = 0
        self.barriers = 0
        self.bytes_shipped = 0

    # -- partition -------------------------------------------------------

    @property
    def lookahead_ms(self) -> float:
        return self._lookahead

    def assign(self, node_id: str, shard: int) -> None:
        """Pin ``node_id`` to ``shard`` (otherwise crc32 placement)."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range")
        self._assignment[node_id] = shard

    def shard_of_node(self, node_id: str) -> int:
        assigned = self._assignment.get(node_id)
        if assigned is not None:
            return assigned
        return shard_of(node_id, self.shards)

    def mark_control_node(self, node_id: str) -> None:
        """Route ``node_id``'s deliveries to the replicated control heap
        (virtual nodes concentrate shared state — see WorkerKernel)."""
        self._control_nodes.add(node_id)

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay_ms: float, callback: Callable[..., None],
                 *args) -> EventHandle:
        if delay_ms < 0:
            raise ValueError("cannot schedule events in the past")
        entry = [self._now + delay_ms, next(self._sequence), callback, args]
        self._route(entry)
        return EventHandle(entry)

    def post(self, delay_ms: float, callback: Callable[..., None], *args) -> None:
        self._route([self._now + delay_ms, next(self._sequence), callback, args])

    def post_keyed(self, key: str, delay_ms: float,
                   callback: Callable[..., None], *args) -> None:
        entry = [self._now + delay_ms, next(self._sequence), callback, args]
        if self._active_shard is None or not key:
            # Control-plane arming is replicated, so the timer runs as a
            # replicated control event in every worker — consistent, and
            # immune to the lookahead window by construction.
            heapq.heappush(self._queue, entry)
            return
        dest = self.shard_of_node(key)
        if dest not in self._shard_queues:
            raise RuntimeError(
                f"post_keyed({key!r}) from shard {self._active_shard} would "
                f"land on shard {dest}, owned by worker "
                f"{dest % self._rt.workers} — shard-plane keyed events must "
                f"stay owner-local")
        heapq.heappush(self._shard_queues[dest], entry)

    def _route(self, entry: list) -> None:
        args = entry[_ARGS]
        message = args[0] if args else None
        if type(message) is not Message:
            # Timers, churn transitions, workload submissions: control
            # plane, replicated everywhere.
            heapq.heappush(self._queue, entry)
            return
        if (message.type._value_ not in SHARD_ROUTED_TYPE_VALUES
                or message.recipient in self._control_nodes):
            if self._active_shard is None:
                # Replicated sender: every worker pushes the identical
                # entry (same time, same even sequence).
                heapq.heappush(self._queue, entry)
            else:
                # Owner-only sender: ship to every worker at the barrier
                # (self included) so all control heaps stay identical.
                self._bcast.append(entry)
            return
        dest = self.shard_of_node(message.recipient)
        owner = dest % self._rt.workers
        if self._active_shard is None:
            # Every worker executed this control-plane send; exactly the
            # owner enqueues the delivery (no shipping — the event
            # already exists wherever it must run).
            if owner == self._rt.rank:
                heapq.heappush(self._shard_queues[dest], entry)
            return
        if owner == self._rt.rank and dest == self._active_shard:
            heapq.heappush(self._shard_queues[dest], entry)
            return
        # Cross-shard (possibly to one of our own other shards): park in
        # the outbox; the barrier re-sequences it uniformly so every
        # worker orders shipped entries the same way.
        self.cross_shard_messages += 1
        self._outboxes[owner].append(entry)

    # -- popping ---------------------------------------------------------

    def _heaps(self):
        yield CONTROL, self._queue
        for shard in sorted(self._shard_queues):
            yield shard, self._shard_queues[shard]

    def _pop_eligible(self) -> Optional[tuple]:
        window_end = self._window_end
        bound = self._run_bound
        stop = self._stop_key
        inclusive = self._stop_inclusive
        best_key = None
        best_shard = None
        for shard, queue in self._heaps():
            while queue and queue[0][_CALLBACK] is None:
                heapq.heappop(queue)
            if not queue:
                continue
            head = queue[0]
            head_time = head[_TIME]
            if head_time >= window_end:
                continue
            if bound is not None and head_time > bound:
                continue
            key = (head_time, head[_SEQUENCE])
            if stop is not None and (key > stop if inclusive else key >= stop):
                continue
            if best_key is None or key < best_key:
                best_key = key
                best_shard = shard
        if best_shard is None:
            return None
        queue = (self._queue if best_shard == CONTROL
                 else self._shard_queues[best_shard])
        return best_shard, heapq.heappop(queue)

    def step(self) -> bool:
        runtime = self._rt
        while True:
            bound = self._run_bound
            if bound is not None and self._window_start > bound:
                return False
            popped = self._pop_eligible()
            if popped is not None:
                break
            outcome = self._barrier()
            if outcome == "completed":
                # Completions were applied; every worker's drive loop
                # re-checks its exit condition at this same point.
                return True
            if outcome == "drained":
                return False
        shard, entry = popped
        if shard == CONTROL:
            self._active_shard = None
            runtime.mode = "ctrl"
            self._sequence = self._ctrl_sequence
        else:
            self._active_shard = shard
            runtime.mode = "shard"
            self._sequence = self._shard_sequence
        try:
            event_time = entry[_TIME]
            if event_time > self._now:
                self._now = event_time
            entry[_CALLBACK](*entry[_ARGS])
            self.events_processed += 1
        finally:
            self._active_shard = None
            runtime.mode = "ctrl"
            self._sequence = self._ctrl_sequence
        return True

    def advance(self, delta_ms: float) -> None:
        raise RuntimeError(
            "advance() mutates the clock outside an event and would break "
            "worker lockstep; schedule an event instead")

    def align_exit_clock(self, time_ms: float) -> None:
        """Pin the clock to the serial run's exit time.

        Serial drive loops exit with ``now`` equal to the settling
        event's time; a worker may have overshot it inside the window
        (or stopped short, if the settling decrement ran in another
        worker).  Every worker receives the same ``time_ms`` (completion
        stamps are coordinator-broadcast), so this stays lockstep."""
        self._now = time_ms
        stats = self._rt.kernel.stats
        if isinstance(stats, WorkerStats):
            stats.commit_through(time_ms)

    def run(self, until_ms: Optional[float] = None, *,
            max_events: int = 1_000_000) -> int:
        processed = 0
        previous_bound = self._run_bound
        self._run_bound = until_ms
        try:
            while processed < max_events:
                if not self.step():
                    break
                processed += 1
            else:
                if self._has_eligible(until_ms):
                    raise SimulationTruncated(
                        f"run() hit max_events={max_events} with eligible "
                        f"events still queued at t={self._now:.3f}ms",
                        processed=processed)
            if until_ms is not None and self._now < until_ms:
                self._now = until_ms
            stats = self._rt.kernel.stats
            if isinstance(stats, WorkerStats):
                stats.commit_through(self._now)
            return processed
        finally:
            self._run_bound = previous_bound

    def _has_eligible(self, until_ms: Optional[float]) -> bool:
        entries = itertools.chain(
            self._queue, *self._shard_queues.values(),
            *self._outboxes, self._bcast)
        for entry in entries:
            if entry[_CALLBACK] is not None and (
                    until_ms is None or entry[_TIME] <= until_ms):
                return True
        return False

    def pending_events(self) -> int:
        entries = itertools.chain(
            self._queue, *self._shard_queues.values(),
            *self._outboxes, self._bcast)
        return sum(1 for entry in entries if entry[_CALLBACK] is not None)

    # -- the barrier -----------------------------------------------------

    def _encode(self, entry: list, closed_end: float) -> tuple:
        if entry[_TIME] < closed_end:
            raise RuntimeError(
                f"lookahead violated: cross-shard delivery at "
                f"t={entry[_TIME]:.3f}ms inside the closed window "
                f"ending at {closed_end:.3f}ms (lookahead "
                f"{self._lookahead:.3f}ms)")
        kernel = self._rt.kernel
        callback = entry[_CALLBACK]
        if callback == kernel._deliver:
            kind = _WIRE_DELIVER
        elif callback == kernel._drop:
            kind = _WIRE_DROP
        else:
            raise RuntimeError(
                "only message deliveries and drops may cross workers "
                f"(got {callback!r})")
        message, context = entry[_ARGS]
        cid = None
        if context is not None:
            cid = getattr(context, "_cid", None)
            if cid is None:
                raise RuntimeError(
                    "cross-worker delivery on an unregistered context")
        return (kind, entry[_TIME], entry[_SEQUENCE], message, cid)

    def _apply_wire(self, wire: list, sender_rank: int) -> None:
        kernel = self._rt.kernel
        contexts = self._rt.contexts
        workers = self._rt.workers
        for kind, event_time, sequence, message, cid in wire:
            context = contexts[cid] if cid is not None else None
            callback = (kernel._deliver if kind == _WIRE_DELIVER
                        else kernel._drop)
            entry = [event_time, SHIP_BASE + sequence * workers + sender_rank,
                     callback, (message, context)]
            if (message.type._value_ in SHARD_ROUTED_TYPE_VALUES
                    and message.recipient not in self._control_nodes):
                dest = self.shard_of_node(message.recipient)
                if dest not in self._shard_queues:
                    raise RuntimeError(
                        f"worker {self._rt.rank} received a delivery for "
                        f"shard {dest} it does not own")
                heapq.heappush(self._shard_queues[dest], entry)
            else:
                heapq.heappush(self._queue, entry)

    def _min_next(self) -> Optional[tuple]:
        """Earliest live event key this worker knows about — local heaps
        plus everything it is about to ship (counted by the sender so
        the coordinator's global minimum is complete).

        Keys are ``(time, sequence)`` with shipped entries carrying the
        uniform re-sequenced value they will hold *after* application,
        so keys compare identically fleet-wide — the serving-isolation
        logic relies on "is the global minimum exactly the serving
        candidate" being a pure key comparison."""
        best: Optional[tuple] = None
        for entry in itertools.chain(self._queue,
                                     *self._shard_queues.values()):
            if entry[_CALLBACK] is None:
                continue
            key = (entry[_TIME], entry[_SEQUENCE])
            if best is None or key < best:
                best = key
        workers = self._rt.workers
        rank = self._rt.rank
        for entry in itertools.chain(*self._outboxes, self._bcast):
            if entry[_CALLBACK] is None:
                continue
            key = (entry[_TIME],
                   SHIP_BASE + entry[_SEQUENCE] * workers + rank)
            if best is None or key < best:
                best = key
        return best

    def _serve_scan(self, end: float) -> Optional[tuple]:
        """The earliest queued shard-plane delivery before ``end`` that
        would serve from a result cache.

        Runs after the barrier's inbound wires are applied (so freshly
        shipped deliveries are scanned too) and before the window opens.
        The probe is conservative by construction: cache sites only
        *lose* validity mid-window (fills happen on replicated finish
        paths between drive steps), so a serving can never appear that
        the scan missed, while a predicted serving that fizzles merely
        truncated the window — always safe, just smaller."""
        network = self._rt.network
        kernel = self._rt.kernel
        best: Optional[tuple] = None
        for queue in self._shard_queues.values():
            for entry in queue:
                if entry[_CALLBACK] is None or entry[_TIME] >= end:
                    continue
                key = (entry[_TIME], entry[_SEQUENCE])
                if best is not None and key >= best:
                    continue
                if entry[_CALLBACK] != kernel._deliver:
                    continue
                message, context = entry[_ARGS]
                if network._parallel_serve_probe(message, context,
                                                 entry[_TIME]):
                    best = key
        return best

    def _barrier(self) -> str:
        runtime = self._rt
        closed_end = self._window_end
        self.barriers += 1
        # The global minimum must see what this worker is about to ship
        # (the receiver doesn't know yet), so take it before the
        # outboxes are encoded and cleared below.
        min_next = self._min_next()
        # Encode outboxes: one pickle per destination per barrier.  The
        # lookahead assertion runs sender-side, before shipping.
        out_payload: Dict[int, bytes] = {}
        self_wire: list = []
        for dest_rank in range(runtime.workers):
            entries = self._outboxes[dest_rank]
            if not entries:
                continue
            wire = [self._encode(entry, closed_end) for entry in entries
                    if entry[_CALLBACK] is not None]
            if not wire:
                continue
            if dest_rank == runtime.rank:
                # Our own cross-shard traffic: applied locally below,
                # with the same uniform re-sequencing as shipped traffic
                # so heap order is worker-independent.
                self_wire = wire
            else:
                blob = pickle.dumps(wire, protocol=pickle.HIGHEST_PROTOCOL)
                self.bytes_shipped += len(blob)
                out_payload[dest_rank] = blob
        bcast_wire = [self._encode(entry, closed_end) for entry in self._bcast
                      if entry[_CALLBACK] is not None]
        bcast_blob = None
        if bcast_wire:
            bcast_blob = pickle.dumps(bcast_wire,
                                      protocol=pickle.HIGHEST_PROTOCOL)
            self.bytes_shipped += len(bcast_blob)
        ops_blob = None
        if runtime.ops:
            ops_blob = pickle.dumps(runtime.ops,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            runtime.ops = []
        for dest_rank in range(runtime.workers):
            self._outboxes[dest_rank] = []
        self._bcast = []
        pend = {cid: tuple(entry)
                for cid, entry in runtime.pending_ledger.items()}
        runtime.pending_ledger = {}
        active = runtime.newly_active
        runtime.newly_active = []
        # Serving isolation only matters when result caches exist on the
        # shard plane; the flag is replicated config, so every worker
        # (and hence the coordinator's probe-round expectation) agrees.
        probing = (runtime.network is not None
                   and getattr(runtime.network, "result_caching", False))
        response = runtime.request({
            "tag": "barrier",
            "rank": runtime.rank,
            "now": self._now,
            "closed": closed_end,
            "out": out_payload,
            "bcast": bcast_blob,
            "ops": ops_blob,
            "pend": pend,
            "active": active,
            "min_next": min_next,
            "probing": probing,
        })
        # Apply order: replicated ops, then inbound deliveries (remote,
        # self-outbox, broadcast — heap position is decided by the
        # uniform re-sequenced keys, not by application order), then
        # coordinator-decided completions.
        for blob in response.get("ops", []):
            for op in pickle.loads(blob):
                runtime.kernel.apply_op(op)
        for sender_rank, blob in response.get("in", []):
            self._apply_wire(pickle.loads(blob), sender_rank)
        if self_wire:
            self._apply_wire(self_wire, runtime.rank)
        for sender_rank, blob in response.get("bcast", []):
            self._apply_wire(pickle.loads(blob), sender_rank)
        if bcast_wire:
            self._apply_wire(bcast_wire, runtime.rank)
        done = response.get("done", [])
        if done:
            kernel = runtime.kernel
            for cid, completed_at in done:
                context = runtime.contexts.get(cid)
                if context is not None:
                    kernel.force_complete(context, completed_at)
            return "completed"
        start = response.get("start")
        if start is None:
            self._now = max(self._now, response["drain_now"])
            # A drained serial queue executed everything, so every
            # staged record is canonical.
            stats = runtime.kernel.stats
            if isinstance(stats, WorkerStats):
                stats.commit_through(float("inf"))
            return "drained"
        window_end = start + self._lookahead
        self._stop_key = None
        self._stop_inclusive = False
        if probing:
            # Second handshake round: scan the now-complete heaps for
            # cache-serving candidates inside the proposed window and
            # let the coordinator truncate it so every serving executes
            # alone, after the barrier that replicated all prior claims.
            serve = self._serve_scan(window_end)
            decision = runtime.request({
                "tag": "probe",
                "rank": runtime.rank,
                "serve": serve,
            })
            stop = decision.get("stop")
            if stop is not None:
                self._stop_key = tuple(stop)
                self._stop_inclusive = bool(decision.get("inclusive"))
        self._window_start = start
        self._window_end = window_end
        self.windows += 1
        return "window"


# ---------------------------------------------------------------------------
# Worker process entry
# ---------------------------------------------------------------------------

def _peak_rss_bytes() -> int:
    """This process's peak resident set, in bytes (VmHWM on Linux)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource
    import sys
    kilo = 1 if sys.platform == "darwin" else 1024
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * kilo


def _worker_main(rank: int, workers: int, conn: Any, config: Any,
                 max_results: int) -> None:
    """Spawn-safe worker entry: build the full scenario under the worker
    runtime, run the query workload in barrier lockstep, report merged
    observables."""
    try:
        runtime = WorkerRuntime(rank, workers, conn)
        _activate(runtime)
        from repro.workloads.scenario import build_scenario
        scenario = build_scenario(config)
        # detlint: ignore[DET004] -- wall-clock observability of the
        # workload phase (reported as query_wall_s); never reaches the
        # simulation clock or any pinned observable.
        started = time.perf_counter()
        counts = scenario.run_queries(max_results=max_results)
        # detlint: ignore[DET004] -- see above: benchmark-style timing.
        query_wall_s = time.perf_counter() - started
        simulator = runtime.simulator
        stats = scenario.network.stats
        # Finalization sweep: commit records the canonical clock reached
        # (the drive loop's last settle time) and discard the rest —
        # they came from window-overshoot events a serial run leaves
        # queued forever.
        stats.commit_through(simulator.now)
        stats.discard_staged()
        # Ship plain stats: the worker-gated subclass holds a runtime
        # reference that must not cross the pipe.
        plain = NetworkStats()
        plain.merge(stats)
        conn.send({
            "tag": "result",
            "rank": rank,
            "counts": counts,
            "stats": pickle.dumps(plain, protocol=pickle.HIGHEST_PROTOCOL),
            "now": simulator.now,
            "windows": simulator.windows,
            "barriers": simulator.barriers,
            "cross_shard_messages": simulator.cross_shard_messages,
            "events_processed": simulator.events_processed,
            "bytes_shipped": simulator.bytes_shipped,
            "peak_rss_bytes": _peak_rss_bytes(),
            "query_wall_s": query_wall_s,
        })
        conn.recv()  # the coordinator's release, after every rank reported
    except BaseException:  # noqa: BLE001 - ship the traceback, then die
        try:
            conn.send({"tag": "error", "rank": rank,
                       "traceback": traceback.format_exc()})
        except Exception:
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

class ParallelRunReport:
    """What one parallel scenario run produced (merged across workers)."""

    def __init__(self, *, counts: List[int], stats: NetworkStats,
                 workers: int, shards: int, wall_s: float,
                 query_wall_s: float, windows: int, barriers: int,
                 cross_shard_messages: int, events_processed: int,
                 bytes_shipped: int, worker_peak_rss_bytes: List[int],
                 final_now: float) -> None:
        self.counts = counts
        self.stats = stats
        self.workers = workers
        self.shards = shards
        self.wall_s = wall_s
        self.query_wall_s = query_wall_s
        self.windows = windows
        self.barriers = barriers
        self.cross_shard_messages = cross_shard_messages
        self.events_processed = events_processed
        self.bytes_shipped = bytes_shipped
        self.worker_peak_rss_bytes = worker_peak_rss_bytes
        self.final_now = final_now


class ParallelShardRunner:
    """Hosts N worker processes and serves their barrier/sync rounds.

    Strictly lockstep: every round collects exactly one message from
    every worker and requires a single shared tag, so any divergence —
    workers disagreeing about the closed window, unequal replicated
    pending deltas, one worker reaching its result while another still
    barriers — fails loudly instead of silently corrupting the run.
    """

    def __init__(self, *, workers: int, timeout_s: float = 600.0) -> None:
        if workers < 1:
            raise ValueError("need at least one worker process")
        self.workers = workers
        self.timeout_s = timeout_s
        self._conns: List[Any] = []
        self._processes: List[Any] = []
        # Global completion ledger
        self._pending: Dict[int, int] = {}
        self._dec_time: Dict[int, float] = {}
        self._ever: set = set()
        self._completed: set = set()

    # -- lifecycle -------------------------------------------------------

    def _spawn(self, config: Any, max_results: int) -> None:
        context = multiprocessing.get_context("spawn")
        for rank in range(self.workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(rank, self.workers, child_conn, config, max_results),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)

    def _kill(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def _collect(self) -> List[dict]:
        rounds = []
        for rank, conn in enumerate(self._conns):
            if not conn.poll(self.timeout_s):
                self._kill()
                raise RuntimeError(
                    f"parallel barrier deadlock: worker {rank} sent nothing "
                    f"for {self.timeout_s:.0f}s")
            rounds.append(conn.recv())
        for message in rounds:
            if message["tag"] == "error":
                trace = message["traceback"]
                self._kill()
                raise RuntimeError(
                    f"parallel worker {message['rank']} failed:\n{trace}")
        tags = {message["tag"] for message in rounds}
        if len(tags) != 1:
            self._kill()
            raise RuntimeError(
                f"parallel workers desynchronized: one round carried tags "
                f"{sorted(tags)} — the lockstep protocol is broken")
        rounds.sort(key=lambda message: message["rank"])
        return rounds

    # -- rounds ----------------------------------------------------------

    def _serve_barrier(self, requests: List[dict]) -> None:
        closed = requests[0]["closed"]
        for request in requests[1:]:
            if request["closed"] != closed:
                self._kill()
                raise RuntimeError(
                    f"parallel workers desynchronized: closed-window ends "
                    f"differ ({[r['closed'] for r in requests]})")
        probing = bool(requests[0].get("probing"))
        if any(bool(request.get("probing")) != probing
               for request in requests[1:]):
            self._kill()
            raise RuntimeError(
                "parallel workers desynchronized: serving-probe "
                "expectations differ — replicated config diverged")
        candidates = set()
        for request in requests:
            candidates.update(request["pend"].keys())
            self._ever.update(request["active"])
            candidates.update(request["active"])
        for cid in sorted(candidates):
            reported = [request["pend"].get(cid, (0, 0, 0.0))
                        for request in requests]
            ctrl = reported[0][0]
            if any(entry[0] != ctrl for entry in reported):
                self._kill()
                raise RuntimeError(
                    f"parallel workers diverged: replicated pending deltas "
                    f"for context {cid} differ across workers "
                    f"({[entry[0] for entry in reported]}) — the control "
                    f"plane is no longer lockstep")
            self._pending[cid] = (self._pending.get(cid, 0) + ctrl
                                  + sum(entry[1] for entry in reported))
            dec = max(entry[2] for entry in reported)
            if dec > self._dec_time.get(cid, 0.0):
                self._dec_time[cid] = dec
        done = sorted(
            (self._dec_time.get(cid, 0.0), cid)
            for cid in candidates
            if cid in self._ever and cid not in self._completed
            and self._pending.get(cid, 0) == 0
        )
        done_list = [(cid, at_ms) for at_ms, cid in done]
        self._completed.update(cid for cid, _at in done_list)
        min_next = [tuple(request["min_next"]) for request in requests
                    if request["min_next"] is not None]
        start_key = min(min_next) if min_next else None
        start = start_key[0] if start_key is not None else None
        drain_now = max(request["now"] for request in requests)
        for rank, conn in enumerate(self._conns):
            conn.send({
                "start": start,
                "drain_now": drain_now,
                "in": [(request["rank"], request["out"][rank])
                       for request in requests if rank in request["out"]],
                "bcast": [(request["rank"], request["bcast"])
                          for request in requests
                          if request["bcast"] is not None
                          and request["rank"] != rank],
                "ops": [request["ops"] for request in requests
                        if request["ops"] is not None
                        and request["rank"] != rank],
                "done": done_list,
            })
        if probing and start is not None and not done_list:
            self._serve_probe(start_key)

    def _serve_probe(self, start_key: tuple) -> None:
        """The serving-isolation round that follows a window-opening
        barrier when result caching is live.

        Each worker reports the earliest cache-serving candidate it
        found in the proposed window (or None).  If the global earliest
        candidate S *is* the window's opening event, the window becomes
        degenerate — only S executes, alone, with every prior claim
        already applied at the barrier just served.  Otherwise the
        window is truncated exclusively before S, so S opens (and is
        isolated by) the next window instead."""
        probes = self._collect()
        if probes[0]["tag"] != "probe":
            self._kill()
            raise RuntimeError(
                f"parallel workers desynchronized: expected a probe round "
                f"but got tag {probes[0]['tag']!r}")
        serves = [tuple(probe["serve"]) for probe in probes
                  if probe.get("serve") is not None]
        stop: Optional[tuple] = None
        inclusive = False
        if serves:
            stop = min(serves)
            inclusive = stop == start_key
        for conn in self._conns:
            conn.send({"stop": stop, "inclusive": inclusive})

    def _serve_sync(self, requests: List[dict]) -> None:
        cid = requests[0]["cid"]
        if any(request["cid"] != cid for request in requests):
            self._kill()
            raise RuntimeError(
                f"parallel workers desynchronized: sync rendezvous mixes "
                f"contexts ({[r['cid'] for r in requests]})")
        fields: Dict[str, int] = {}
        for name in ("messages_sent", "bytes_sent", "peers_probed"):
            ctrl = requests[0]["ctrl"].get(name, 0)
            if any(request["ctrl"].get(name, 0) != ctrl
                   for request in requests[1:]):
                self._kill()
                raise RuntimeError(
                    f"parallel workers diverged: replicated {name} differs "
                    f"across workers for context {cid}")
            fields[name] = ctrl + sum(request["shard"].get(name, 0)
                                      for request in requests)
        owners = [request for request in requests if request.get("owner")]
        results = owners[0].get("results") if owners else None
        transfer = owners[0].get("transfer") if owners else None
        error = next((request.get("error") for request in requests
                      if request.get("error") is not None), None)
        extra: Dict[str, Any] = {}
        for request in requests:
            for key, value in request.get("extra", {}).items():
                extra[key] = extra.get(key) or value
        for conn in self._conns:
            conn.send({
                "fields": fields,
                "results": results,
                "transfer": transfer,
                "error": error,
                "extra": extra,
            })

    # -- driving ---------------------------------------------------------

    def run(self, config: Any, *, max_results: int = 100) -> ParallelRunReport:
        # detlint: ignore[DET004] -- coordinator wall-clock (wall_s in
        # the report); the simulation clocks live in the workers.
        started = time.perf_counter()
        self._spawn(config, max_results)
        try:
            while True:
                requests = self._collect()
                tag = requests[0]["tag"]
                if tag == "barrier":
                    self._serve_barrier(requests)
                elif tag == "sync":
                    self._serve_sync(requests)
                elif tag == "result":
                    for conn in self._conns:
                        conn.send({"tag": "release"})
                    break
                else:
                    self._kill()
                    raise RuntimeError(
                        f"unknown parallel protocol tag {tag!r}")
            # detlint: ignore[DET004] -- see above: report wall time.
            wall_s = time.perf_counter() - started
            merged = NetworkStats()
            for request in requests:
                merged.merge(pickle.loads(request["stats"]))
            report = ParallelRunReport(
                counts=requests[0]["counts"],
                stats=merged,
                workers=self.workers,
                shards=config.shards,
                wall_s=wall_s,
                query_wall_s=max(r["query_wall_s"] for r in requests),
                windows=requests[0]["windows"],
                barriers=requests[0]["barriers"],
                cross_shard_messages=sum(r["cross_shard_messages"]
                                         for r in requests),
                events_processed=sum(r["events_processed"]
                                     for r in requests),
                bytes_shipped=sum(r["bytes_shipped"] for r in requests),
                worker_peak_rss_bytes=[r["peak_rss_bytes"]
                                       for r in requests],
                final_now=max(r["now"] for r in requests),
            )
            for process in self._processes:
                process.join(timeout=30.0)
            return report
        except BaseException:
            self._kill()
            raise
        finally:
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:
                    pass


def run_parallel_scenario(config: Any, *, workers: int = 2,
                          max_results: int = 100,
                          timeout_s: float = 600.0) -> ParallelRunReport:
    """Run ``config`` once across ``workers`` processes, one connected
    topology, bit-identical observables to the serial ``shards=1`` run.

    The coordinator never builds the scenario itself — every worker
    builds the full replica and the coordinator only merges outboxes,
    pending ledgers and sync payloads.
    """
    import dataclasses
    if config.shards < 2:
        raise ValueError("parallel execution needs shards > 1 "
                         "(one shard has nothing to partition)")
    if getattr(config, "download_chunk_bytes", None) is not None:
        raise ValueError(
            "chunked downloads (download_chunk_bytes) are not supported "
            "under parallel execution yet: mid-stream provider failover "
            "re-arms reliable envelopes from the shard plane, which the "
            "replicated pending ledger cannot account symmetrically")
    if not config.parallel:
        config = dataclasses.replace(config, parallel=True)
    runner = ParallelShardRunner(workers=workers, timeout_s=timeout_s)
    return runner.run(config, max_results=max_results)
