"""Sharded event execution with a conservative time-window barrier.

The :class:`ShardedSimulator` partitions the event queue by shard: each
node id has a home shard (an explicit assignment table, falling back to
a crc32 hash for ids outside it, e.g. virtual nodes), message-delivery
events queue on the *recipient's* shard, and everything else — driver
submissions, churn, untagged timers — queues on a control shard.  The
shards advance together through **conservative synchronization
windows** of width equal to the minimum cross-shard link latency (the
*lookahead*):

* A window ``[start, start + lookahead)`` opens at the global lower
  bound ``start`` — the earliest pending event time across every shard.
* Within the window, each shard may process its local events freely; a
  message sent to *another* shard is not delivered directly but parked
  in an outbox.
* When no shard has an eligible event left, the window closes with a
  barrier: outboxes are exchanged (every parked delivery is pushed onto
  its destination shard's queue) and the next window opens at the new
  global lower bound.

The barrier is safe because every cross-shard delivery carries at least
one link latency, and every link latency is at least the latency
model's ``base_ms`` — the lookahead.  A message sent at time ``t``
inside window ``[start, start + base)`` arrives at ``t + latency ≥
start + base``, i.e. never inside the window it was sent in, so parking
it until the barrier cannot starve an eligible event.  (Reverse-path
query hits and download responses override the link latency, but always
with an *accumulated* forward latency or a transfer time, both ≥ one
link ≥ ``base_ms``; zero-latency self-messages are same-shard by
definition.)  The flush asserts this invariant and raises rather than
silently diverge if a protocol ever sends a cross-shard message below
the lookahead.

Determinism is the point: within a window, eligible events are popped
in global ``(time, sequence)`` order — the exact order the single-queue
:class:`~repro.network.simulator.NetworkSimulator` would pop them — and
deferred cross-shard deliveries are never eligible before the barrier
that releases them.  By induction the sharded execution is therefore
*bit-identical* to the single-kernel execution for a fixed seed,
regardless of shard count, which is what the cross-shard determinism
contract (``tests/network/test_contract.py``) pins for all four
protocol organisations.  Aggregate counters, per-query results, bytes
and latencies all reproduce exactly.

A degenerate latency model (``base_ms == 0``) leaves no safe lookahead;
the simulator then collapses to a single control queue — plain
single-kernel semantics — instead of spinning on zero-width windows.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Optional

from repro.engine.partition import Assignment, shard_of
from repro.network.messages import Message
from repro.network.simulator import (
    _ARGS,
    _CALLBACK,
    _SEQUENCE,
    _TIME,
    EventHandle,
    LatencyModel,
    NetworkSimulator,
    SimulationTruncated,
)

#: shard index of the control queue in observability counters
CONTROL = -1


class ShardedSimulator(NetworkSimulator):
    """A :class:`NetworkSimulator` whose queue is partitioned by shard.

    Drop-in compatible: ``schedule`` / ``post`` / ``step`` / ``run``
    keep their contracts, and a fixed seed reproduces the single-queue
    execution bit-for-bit (see the module docstring for the argument).
    The in-process windowed execution is the determinism mechanism the
    contract suite pins; process-per-shard scale-out reuses the same
    partitioning via :mod:`repro.workloads.scale`.
    """

    def __init__(self, *, latency: Optional[LatencyModel] = None, seed: int = 0,
                 shards: int = 2, assignment: Optional[Assignment] = None) -> None:
        super().__init__(latency=latency, seed=seed)
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self._assignment: Assignment = dict(assignment or {})
        #: the inherited ``_queue`` is the control shard; message
        #: deliveries go to per-shard heaps
        self._shard_queues: list[list[list]] = [[] for _ in range(shards)]
        self._outbox: list[list] = []
        self._lookahead = self.latency_model.base_ms
        #: single-queue fallback when no safe lookahead exists
        self._degenerate = self._lookahead <= 0 or shards == 1
        self._window_start = 0.0
        self._window_end = float("inf") if self._degenerate else float("-inf")
        #: shard of the event currently executing (None between events)
        self._active_shard: Optional[int] = None
        # observability
        self.windows = 0
        self.cross_shard_messages = 0
        self.events_per_shard = [0] * shards
        self.control_events = 0

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def shard_of_node(self, node_id: str) -> int:
        """Home shard of ``node_id`` (assignment table, else crc32)."""
        shard = self._assignment.get(node_id)
        if shard is None:
            shard = shard_of(node_id, self.shards)
        return shard

    def assign(self, node_id: str, shard: int) -> None:
        """Pin ``node_id`` to ``shard`` (new peers joining mid-run)."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range for {self.shards} shards")
        self._assignment[node_id] = shard

    @property
    def lookahead_ms(self) -> float:
        """Width of one synchronization window (0 when degenerate)."""
        return 0.0 if self._degenerate else self._lookahead

    # ------------------------------------------------------------------
    # Scheduling (routing layer over the parent's single queue)
    # ------------------------------------------------------------------
    def schedule(self, delay_ms: float, callback: Callable[..., None],
                 *args: object) -> EventHandle:
        if delay_ms < 0:
            raise ValueError("cannot schedule events in the past")
        entry = [self._now + delay_ms, next(self._sequence), callback, args]
        self._route(entry)
        return EventHandle(entry)

    def post(self, delay_ms: float, callback: Callable[..., None], *args: object) -> None:
        self._route([self._now + delay_ms, next(self._sequence), callback, args])

    def post_keyed(self, key: str, delay_ms: float,
                   callback: Callable[..., None], *args: object) -> None:
        """Post an event with explicit shard affinity (keyed timers)."""
        if self._degenerate or not key:
            heapq.heappush(self._queue,
                           [self._now + delay_ms, next(self._sequence), callback, args])
            return
        entry = [self._now + delay_ms, next(self._sequence), callback, args]
        self._push(entry, self.shard_of_node(key))

    def _route(self, entry: list) -> None:
        """Queue ``entry`` on the shard its event belongs to.

        Message deliveries (the kernel posts ``_deliver, message,
        context``) belong to the recipient's shard; everything else —
        driver submissions, churn, untagged timers — is control-plane
        and runs on the control queue.  The sequence number was already
        assigned at creation, so routing never perturbs global order.
        """
        if self._degenerate:
            heapq.heappush(self._queue, entry)
            return
        args = entry[_ARGS]
        message = args[0] if args else None
        if type(message) is not Message:
            heapq.heappush(self._queue, entry)
            return
        dest = self.shard_of_node(message.recipient)
        if self._active_shard is not None and dest != self._active_shard:
            # Cross-shard delivery: park it for the next barrier.
            self.cross_shard_messages += 1
            self._outbox.append(entry)
        else:
            self._push(entry, dest)

    def _push(self, entry: list, shard: int) -> None:
        heapq.heappush(self._shard_queues[shard], entry)

    # ------------------------------------------------------------------
    # Windowed execution
    # ------------------------------------------------------------------
    def _queues(self) -> Iterator[tuple[int, list]]:
        yield CONTROL, self._queue
        for shard, queue in enumerate(self._shard_queues):
            yield shard, queue

    def _pop_eligible(self) -> Optional[tuple[int, list]]:
        """Pop the globally minimal ``(time, seq)`` entry inside the
        current window, skipping cancelled entries; ``None`` when every
        queue is empty or beyond the window end."""
        window_end = self._window_end
        best_key: Optional[tuple[float, int]] = None
        best_shard = CONTROL
        best_queue: Optional[list] = None
        for shard, queue in self._queues():
            while queue and queue[0][_CALLBACK] is None:
                heapq.heappop(queue)
            if not queue:
                continue
            head = queue[0]
            if head[_TIME] >= window_end:
                continue
            key = (head[_TIME], head[_SEQUENCE])
            if best_key is None or key < best_key:
                best_key = key
                best_shard = shard
                best_queue = queue
        if best_queue is None:
            return None
        return best_shard, heapq.heappop(best_queue)

    def _open_next_window(self) -> bool:
        """Barrier: exchange outboxes, then open a window at the new
        global lower bound.  Returns ``False`` when nothing is pending."""
        if self._outbox:
            closed_end = self._window_end
            for entry in self._outbox:
                if entry[_CALLBACK] is not None and entry[_TIME] < closed_end:
                    raise RuntimeError(
                        f"lookahead violated: cross-shard delivery at "
                        f"t={entry[_TIME]:.3f}ms inside the closed window "
                        f"ending at {closed_end:.3f}ms (lookahead "
                        f"{self._lookahead:.3f}ms)")
                self._push(entry, self.shard_of_node(entry[_ARGS][0].recipient))
            self._outbox.clear()
        start: Optional[float] = None
        for _, queue in self._queues():
            while queue and queue[0][_CALLBACK] is None:
                heapq.heappop(queue)
            if queue and (start is None or queue[0][_TIME] < start):
                start = queue[0][_TIME]
        if start is None:
            return False
        self._window_start = start
        self._window_end = start + self._lookahead
        self.windows += 1
        return True

    def step(self) -> bool:
        if self._degenerate:
            return super().step()
        while True:
            popped = self._pop_eligible()
            if popped is None:
                if not self._open_next_window():
                    return False
                continue
            shard, entry = popped
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            time = entry[_TIME]
            if time > self._now:
                self._now = time
            self._active_shard = shard if shard != CONTROL else None
            try:
                callback(*entry[_ARGS])
            finally:
                self._active_shard = None
            self.events_processed += 1
            if shard == CONTROL:
                self.control_events += 1
            else:
                self.events_per_shard[shard] += 1
            return True

    def _peek_time(self) -> Optional[float]:
        """Earliest pending event time across every queue and the outbox."""
        earliest: Optional[float] = None
        for _, queue in self._queues():
            while queue and queue[0][_CALLBACK] is None:
                heapq.heappop(queue)
            if queue and (earliest is None or queue[0][_TIME] < earliest):
                earliest = queue[0][_TIME]
        for entry in self._outbox:
            if entry[_CALLBACK] is not None and (earliest is None
                                                 or entry[_TIME] < earliest):
                earliest = entry[_TIME]
        return earliest

    def run(self, until_ms: Optional[float] = None, *,
            max_events: int = 1_000_000) -> int:
        if self._degenerate:
            return super().run(until_ms, max_events=max_events)
        processed = 0
        while processed < max_events:
            earliest = self._peek_time()
            if earliest is None:
                break
            if until_ms is not None and earliest > until_ms:
                break
            if not self.step():
                break
            processed += 1
        if processed >= max_events:
            earliest = self._peek_time()
            if earliest is not None and (until_ms is None or earliest <= until_ms):
                raise SimulationTruncated(
                    f"run() hit max_events={max_events} with eligible events "
                    f"still queued at t={self._now:.3f}ms", processed=processed)
        if until_ms is not None and self._now < until_ms:
            self._now = until_ms
        return processed

    def pending_events(self) -> int:
        live = sum(1 for _, queue in self._queues()
                   for entry in queue if entry[_CALLBACK] is not None)
        return live + sum(1 for entry in self._outbox
                          if entry[_CALLBACK] is not None)
