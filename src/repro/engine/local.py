"""Local query evaluation: the one call site the protocol handlers use.

Every handler that answers a query from a peer's repository goes
through :func:`local_matches`, which delegates to
:meth:`~repro.storage.repository.LocalRepository.search` — already a
candidate-set intersection over the peer's
:class:`~repro.storage.index.AttributeIndex` for constrained queries
(empty queries browse the community's document listing).  Centralising
the call keeps the four protocol handler sets on one evaluation path,
so a change to local matching semantics lands in every protocol at
once and can be costed uniformly.

When the caller holds a :class:`~repro.storage.plan.CompiledQuery`
(every kernel :class:`~repro.engine.kernel.QueryContext` compiles one
at search start), passing it here turns each peer visit into pure
index intersection — no re-normalization, no re-tokenization.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.document_store import StoredObject
from repro.storage.plan import CompiledQuery
from repro.storage.query import Query
from repro.storage.repository import LocalRepository


def local_matches(repository: LocalRepository, query: Query,
                  *, plan: Optional[CompiledQuery] = None,
                  limit: Optional[int] = None) -> list[StoredObject]:
    """Objects in ``repository`` matching ``query``, in resource-id order."""
    matched = repository.search(query, plan=plan)
    if limit is not None:
        return matched[:limit]
    return matched
