"""The batched query driver: many searches in flight at once.

``PeerNetwork.search`` submits one query and drains the event queue
until it completes — convenient, but serial.  The driver instead
schedules a whole batch of submissions at staggered virtual times and
then runs the kernel until every query in the batch has quiesced, so
their message cascades interleave on the shared clock (and with churn
events).  This is the load model the latency-distribution and
churn-during-query experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional, Sequence

from repro.engine.kernel import QueryContext
from repro.network.errors import NetworkError
from repro.storage.query import Query


@dataclass
class BatchOutcome:
    """What one driver batch produced."""

    responses: list = field(default_factory=list)   # list[SearchResponse]
    failed: int = 0                                 # submissions refused (origin offline/unknown)

    @property
    def result_counts(self) -> list[int]:
        return [response.result_count for response in self.responses]

    @property
    def latencies_ms(self) -> list[float]:
        return [response.latency_ms for response in self.responses]


class QueryDriver:
    """Keeps a batch of queries concurrently in flight on one network."""

    def __init__(self, network) -> None:
        self.network = network

    def run_batch(self, requests: Sequence[tuple[str, Query]], *,
                  max_results: int = 100, interarrival_ms: float = 0.0,
                  max_events: int = 5_000_000) -> BatchOutcome:
        """Submit ``(origin_id, query)`` pairs and run until all complete.

        Submissions are scheduled ``interarrival_ms`` apart, so later
        queries launch while earlier ones are still flooding.  A
        submission whose origin has churned offline (or vanished) by its
        start time fails softly: it yields an empty response instead of
        raising, because under churn that is an outcome to measure, not
        an error.
        """
        if interarrival_ms < 0:
            raise ValueError("interarrival must be non-negative")
        contexts: list[Optional[QueryContext]] = [None] * len(requests)
        failures: set[int] = set()

        def submit(index: int, origin_id: str, query: Query) -> None:
            try:
                contexts[index] = self.network.start_search(
                    origin_id, query, max_results=max_results)
            except NetworkError:
                failures.add(index)

        for index, (origin_id, query) in enumerate(requests):
            self.network.simulator.schedule(
                index * interarrival_ms, partial(submit, index, origin_id, query))

        def finished() -> bool:
            return all(
                index in failures or (contexts[index] is not None and contexts[index].done)
                for index in range(len(requests))
            )

        processed = 0
        while not finished():
            if not self.network.simulator.step():
                break
            processed += 1
            if processed > max_events:
                raise RuntimeError(f"driver exceeded {max_events} events without quiescing")

        outcome = BatchOutcome()
        from repro.network.base import SearchResponse  # local import: cycle

        for index, (_, query) in enumerate(requests):
            context = contexts[index]
            if context is None:
                outcome.failed += 1
                outcome.responses.append(SearchResponse(query=query))
            else:
                outcome.responses.append(self.network.finish_search(context))
        return outcome
