"""The batched workload driver: searches *and* downloads in flight at once.

``PeerNetwork.search`` and ``PeerNetwork.retrieve`` each submit one
exchange and drain the event queue until it completes — convenient, but
serial.  The driver instead schedules a whole batch of submissions at
staggered virtual times and then runs the kernel until every exchange
in the batch has quiesced, so their message cascades interleave on the
shared clock (and with churn events).  A batch may mix
:class:`SearchOp` and :class:`RetrieveOp` entries — the load model the
paper's download-and-replicate story needs: popular objects are fetched
while queries are still flooding, and the replicas they leave behind
answer later queries of the same batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

from repro.network.errors import NetworkError
from repro.storage.errors import StorageError
from repro.storage.query import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.network.base import PeerNetwork


@dataclass(frozen=True)
class SearchOp:
    """One search submission of a mixed batch."""

    origin_id: str
    query: Query
    max_results: Optional[int] = None  # None -> the batch default


@dataclass(frozen=True)
class RetrieveOp:
    """One download submission of a mixed batch.

    With ``provider_id`` of ``None`` the provider is resolved at
    submission time from the network's replica registry
    (:meth:`PeerNetwork.locate_provider`), so a batch's later downloads
    can be served by replicas its earlier downloads created.
    """

    requester_id: str
    resource_id: str
    provider_id: Optional[str] = None
    bandwidth_kbps: float = 512.0


WorkloadOp = Union[SearchOp, RetrieveOp]


@dataclass
class BatchOutcome:
    """What one driver batch produced."""

    responses: list = field(default_factory=list)   # list[SearchResponse]
    retrieves: list = field(default_factory=list)   # list[Optional[RetrieveResult]]
    failed: int = 0              # search submissions refused (origin offline/unknown)
    retrieve_failures: int = 0   # downloads refused or dropped in flight
    starved: int = 0             # exchanges completed only because the queue drained

    @property
    def result_counts(self) -> list[int]:
        return [response.result_count for response in self.responses]

    @property
    def latencies_ms(self) -> list[float]:
        return [response.latency_ms for response in self.responses]

    @property
    def downloads_completed(self) -> int:
        return sum(1 for result in self.retrieves if result is not None)

    def merge(self, other: "BatchOutcome") -> "BatchOutcome":
        """Fold another batch's outcome into this one (scenario phases)."""
        self.responses.extend(other.responses)
        self.retrieves.extend(other.retrieves)
        self.failed += other.failed
        self.retrieve_failures += other.retrieve_failures
        self.starved += other.starved
        return self


class QueryDriver:
    """Keeps a batch of searches and downloads concurrently in flight."""

    def __init__(self, network: PeerNetwork) -> None:
        self.network = network

    def run_batch(self, requests: Sequence[tuple[str, Query]], *,
                  max_results: int = 100, interarrival_ms: float = 0.0,
                  max_events: int = 5_000_000) -> BatchOutcome:
        """Submit ``(origin_id, query)`` pairs and run until all complete.

        Search-only convenience over :meth:`run_mixed`.
        """
        ops = [SearchOp(origin_id=origin_id, query=query) for origin_id, query in requests]
        return self.run_mixed(ops, max_results=max_results,
                              interarrival_ms=interarrival_ms, max_events=max_events)

    def run_mixed(self, ops: Sequence[WorkloadOp], *, max_results: int = 100,
                  interarrival_ms: float = 0.0,
                  max_events: int = 5_000_000) -> BatchOutcome:
        """Submit a mixed sequence of searches and downloads.

        Submissions are scheduled ``interarrival_ms`` apart, so later
        operations launch while earlier ones are still in flight.  A
        submission whose peer has churned offline (or vanished) by its
        start time fails softly: under churn that is an outcome to
        measure, not an error.  Likewise a download dropped in flight
        (provider or requester churned mid-transfer) yields ``None`` in
        ``retrieves`` and bumps ``retrieve_failures``.  If the event
        queue drains with exchanges still pending, they are completed
        at the drain time and counted in ``starved``.
        """
        if interarrival_ms < 0:
            raise ValueError("interarrival must be non-negative")
        # Entries are QueryContext/RetrieveContext aligned with ops (or
        # None when a submission failed); Any keeps the two finish_* call
        # sites below from needing per-branch casts.
        contexts: list[Any] = [None] * len(ops)
        failures: set[int] = set()
        # Completion is counted by the kernel's per-context watcher hook,
        # so the drive loop below is O(1) per processed event instead of
        # re-scanning every context of the batch after each event.
        settled = 0
        # The latest completion (or failed-submission) time seen — the
        # canonical batch exit clock.  A serial drive loop exits with
        # ``simulator.now`` there already; a parallel worker may have run
        # ahead of (or stopped short of) it inside its window, so the
        # clock is re-pinned through ``align_exit_clock`` below.
        settle_clock = 0.0

        def note_done(context: Any) -> None:
            nonlocal settled, settle_clock
            settled += 1
            if context.completed_at > settle_clock:
                settle_clock = context.completed_at

        def submit(index: int, op: WorkloadOp) -> None:
            nonlocal settled, settle_clock
            try:
                if isinstance(op, SearchOp):
                    context = self.network.start_search(
                        op.origin_id, op.query,
                        max_results=op.max_results if op.max_results is not None else max_results)
                else:
                    provider_id = op.provider_id or self.network.locate_provider(
                        op.resource_id, exclude=op.requester_id)
                    if provider_id is None:
                        failures.add(index)
                        settled += 1
                        settle_clock = max(settle_clock, self.network.simulator.now)
                        return
                    context = self.network.start_retrieve(
                        op.requester_id, provider_id, op.resource_id,
                        bandwidth_kbps=op.bandwidth_kbps)
            except NetworkError:
                failures.add(index)
                settled += 1
                settle_clock = max(settle_clock, self.network.simulator.now)
                return
            contexts[index] = context
            if context.done:
                # Answered purely locally, before a watcher could be
                # attached — count it here instead.
                settled += 1
                settle_clock = max(settle_clock, context.completed_at)
            else:
                context.watcher = note_done

        for index, op in enumerate(ops):
            self.network.simulator.schedule(index * interarrival_ms, submit, index, op)

        expected = len(ops)
        processed = 0
        drained = False
        step = self.network.simulator.step
        while settled < expected:
            if not step():
                # The queue drained with exchanges still pending: their
                # deliveries are lost, so complete them at the drain time
                # instead of leaving a bogus zero completion stamp.
                self.network.kernel.mark_starved(
                    [context for context in contexts if context is not None])
                drained = True
                break
            processed += 1
            if processed > max_events:
                raise RuntimeError(f"driver exceeded {max_events} events without quiescing")
        if not drained and ops:
            self.network.simulator.align_exit_clock(settle_clock)

        outcome = BatchOutcome()
        from repro.network.base import SearchResponse  # local import: cycle

        for index, op in enumerate(ops):
            context = contexts[index]
            if isinstance(op, SearchOp):
                if context is None:
                    outcome.failed += 1
                    outcome.responses.append(SearchResponse(query=op.query))
                    continue
                if context.starved:
                    outcome.starved += 1
                outcome.responses.append(self.network.finish_search(context))
            else:
                if context is None:
                    outcome.retrieve_failures += 1
                    outcome.retrieves.append(None)
                    continue
                if context.starved:
                    outcome.starved += 1
                try:
                    outcome.retrieves.append(self.network.finish_retrieve(context))
                except (NetworkError, StorageError):
                    outcome.retrieve_failures += 1
                    outcome.retrieves.append(None)
        return outcome
