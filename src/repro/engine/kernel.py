"""The event kernel: scheduled message delivery plus per-exchange state.

The kernel sits between the protocol adapters and the
:class:`~repro.network.simulator.NetworkSimulator`.  A protocol sends a
:class:`~repro.network.messages.Message` through :meth:`EventKernel.send`;
the kernel accounts it, schedules its delivery one link latency later,
and, at delivery time, dispatches it to the handler the protocol
registered for that message type.  Handlers typically send further
messages (forwarding a flood, relaying between super-peers, returning a
query hit, streaming a download's attachments), so a whole search or
download unfolds as a cascade of events interleaved — on the same
clock — with churn events and with the events of every other in-flight
exchange.

Completion detection is reference counting: each exchange carries an
:class:`ExchangeContext` whose ``pending`` counter is incremented per
send and decremented per processed delivery.  Because handlers send any
follow-up messages *during* their own delivery, ``pending`` can only
reach zero when no message of the exchange remains in flight, at which
point the context is marked done and stamped with the completion time.

Two concrete context kinds exist: :class:`QueryContext` for searches
and :class:`RetrieveContext` for downloads.  Both ride the same queue,
so a download taken while queries are in flight perturbs neither their
latencies nor their event ordering — the clock only ever moves by
processing events, never by side-effecting mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.network.faults import FaultModel
from repro.network.messages import Message, MessageType, ack_message
from repro.network.simulator import NetworkSimulator
from repro.network.stats import NetworkStats
from repro.storage.query import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.base import SearchResult
    from repro.network.peers import Peer
    from repro.storage.document_store import StoredObject
    from repro.storage.plan import CompiledQuery

#: handler(peer, message, context) — ``peer`` is the recipient (``None``
#: for virtual nodes such as the centralized index server).
Handler = Callable[[Optional["Peer"], Message, Optional["ExchangeContext"]], None]


@dataclass(kw_only=True)
class ExchangeContext:
    """Reference-counted state shared by every in-flight kernel exchange.

    A search and a download are both *exchanges*: a cascade of messages
    whose completion is detected by the ``pending`` counter reaching
    zero.  ``starved`` is set when the event queue drained while the
    exchange still had messages outstanding (a lost delivery that will
    never come) — the context is completed at the drain time instead of
    hanging forever with a bogus zero latency.
    """

    started_at: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    extra: dict = field(default_factory=dict)
    pending: int = 0
    done: bool = False
    finalized: bool = False
    starved: bool = False
    completed_at: float = 0.0
    #: invoked once, with the context, when the exchange completes; the
    #: batch driver uses this to count completions in O(1) instead of
    #: polling every context after every processed event
    watcher: Optional[Callable[["ExchangeContext"], None]] = None

    @property
    def latency_ms(self) -> float:
        """Virtual time between submission and the last delivery."""
        return max(0.0, self.completed_at - self.started_at)


@dataclass
class QueryContext(ExchangeContext):
    """Everything one in-flight query accumulates while its messages fly.

    Results are appended only when a QUERY-HIT *arrives* at an online
    origin; ``claimed`` counts results already promised by generated
    hits still in flight, so flow-control decisions (how far to flood
    or walk) see the same numbers they would if hits were instantaneous.
    """

    query: Query
    origin_id: str
    max_results: int = 100
    results: list["SearchResult"] = field(default_factory=list)
    peers_probed: int = 0
    first_hit_hops: Optional[int] = None
    visited: set[str] = field(default_factory=set)
    claimed: int = 0
    #: the query compiled once at search start; every protocol handler's
    #: ``local_matches`` call reuses it, so per-hop evaluation is pure
    #: index intersection (``None`` when compilation is disabled)
    plan: Optional["CompiledQuery"] = None

    def room(self) -> int:
        """How many more results fit under ``max_results``.

        Counts both arrived results and results claimed by in-flight
        hits, so concurrent generation sites never oversubscribe.
        """
        return self.max_results - max(self.claimed, len(self.results))

    def claim(self, count: int) -> None:
        """Reserve space for ``count`` results riding an in-flight hit."""
        self.claimed += count

    def add_result(self, result: "SearchResult") -> None:
        self.results.append(result)
        if self.first_hit_hops is None or result.hops < self.first_hit_hops:
            self.first_hit_hops = result.hops


@dataclass
class MembershipContext(ExchangeContext):
    """One in-flight lifecycle exchange (live-membership mode).

    A joining peer's discovery ping, a heartbeat round or a lease
    renewal is an exchange like any other: its messages ride the shared
    queue and it quiesces by reference counting.  Nothing *waits* on a
    membership context — lifecycle traffic is background load — but the
    context still provides per-exchange state (``visited`` gives a
    discovery flood its duplicate suppression) and completion stamps.
    ``acquired`` counts what the exchange obtained (e.g. neighbour
    links made from PONGs).
    """

    peer_id: str = ""
    kind: str = ""
    visited: set[str] = field(default_factory=set)
    acquired: int = 0


@dataclass
class RetrieveContext(ExchangeContext):
    """One in-flight download: DOWNLOAD-REQUEST / DOWNLOAD-RESPONSE plus
    per-attachment transfer events, quiescing by reference counting."""

    requester_id: str
    provider_id: str
    resource_id: str
    bandwidth_kbps: float = 512.0
    stored: Optional["StoredObject"] = None
    transfer_bytes: int = 0
    attachments_transferred: int = 0
    replicated: bool = False
    error: Optional[Exception] = None
    # Chunked-transfer state (``download_chunk_bytes`` mode).  The
    # received set is consulted only by length and membership, never
    # iterated, so its order cannot leak into results.
    chunks_received: set[int] = field(default_factory=set)
    chunk_total: int = 0
    #: providers that stalled or crashed out of this download
    failed_providers: list[str] = field(default_factory=list)
    #: re-requests already burned on the current provider
    provider_attempts: int = 0
    #: True while the stall watchdog holds a pending token on this context
    watchdog_held: bool = False

    @property
    def succeeded(self) -> bool:
        return self.stored is not None and self.error is None


class MaintenanceTimer:
    """Handle of one recurring kernel timer (see :meth:`EventKernel.every`).

    Slotted and allocation-light: each firing re-posts through the
    simulator's no-handle fast path, so a long steady-state run costs
    one list per tick and nothing else.
    """

    __slots__ = ("interval_ms", "callback", "args", "cancelled", "affinity")

    def __init__(self, interval_ms: float, callback: Callable[..., None],
                 args: tuple, affinity: Optional[str] = None) -> None:
        self.interval_ms = interval_ms
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: node id whose home shard executes the timer (None = control)
        self.affinity = affinity

    def cancel(self) -> None:
        self.cancelled = True


class EventKernel:
    """Message scheduling, dispatch and per-exchange accounting."""

    def __init__(self, *, simulator: NetworkSimulator, peers: dict[str, "Peer"],
                 stats: NetworkStats) -> None:
        self.simulator = simulator
        self.peers = peers
        self.stats = stats
        # Keyed by the message type's *value string*: string hashing is
        # C-level, while hashing an Enum member goes through a Python
        # __hash__ on every dispatch.
        self._handlers: dict[str, Handler] = {}
        # Bound method of the latency model, resolved once: the send
        # path calls it per message.
        self._link_latency = simulator.latency_model.latency
        #: always-on endpoints that are not peers (e.g. the index server)
        self.virtual_nodes: set[str] = set()
        #: recurring maintenance timers (heartbeats, lease sweeps)
        self.timers: list[MaintenanceTimer] = []
        #: fault injection (``None`` = the perfect-link default; the
        #: send path then takes a single never-taken branch)
        self.faults: Optional[FaultModel] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, message_type: MessageType, handler: Handler) -> None:
        """Install the handler invoked when a ``message_type`` arrives."""
        self._handlers[message_type.value] = handler

    def add_virtual_node(self, node_id: str) -> None:
        """Declare an always-online endpoint (it has no :class:`Peer`)."""
        self.virtual_nodes.add(node_id)

    # ------------------------------------------------------------------
    # Recurring maintenance timers
    # ------------------------------------------------------------------
    def every(self, interval_ms: float, callback: Callable[..., None], *args: object,
              first_delay_ms: Optional[float] = None,
              affinity: Optional[str] = None) -> MaintenanceTimer:
        """Run ``callback(*args)`` every ``interval_ms`` of virtual time.

        Each firing is an ordinary event on the shared queue, so
        maintenance (heartbeats, lease renewal, expiry sweeps)
        interleaves deterministically with in-flight queries, downloads
        and churn — nothing touches the clock except events.  The timer
        keeps rescheduling itself until :meth:`MaintenanceTimer.cancel`;
        drive the simulator with ``run(until_ms=...)`` (an unbounded
        ``run()`` would never drain the queue).

        ``affinity`` names the node the timer maintains (a peer's
        heartbeat, a super-peer's lease sweep): under a sharded
        simulator the firing then executes on that node's home shard
        instead of the control queue, keeping per-peer maintenance
        shard-local.  The single-queue simulator ignores the hint.
        """
        if interval_ms <= 0:
            raise ValueError("the maintenance interval must be positive")
        timer = MaintenanceTimer(interval_ms, callback, args, affinity)
        self.timers.append(timer)
        first = interval_ms if first_delay_ms is None else first_delay_ms
        if affinity is None:
            self.simulator.post(first, self._fire_timer, timer)
        else:
            self.simulator.post_keyed(affinity, first, self._fire_timer, timer)
        return timer

    def _fire_timer(self, timer: MaintenanceTimer) -> None:
        if timer.cancelled:
            return
        timer.callback(*timer.args)
        if timer.affinity is None:
            self.simulator.post(timer.interval_ms, self._fire_timer, timer)
        else:
            self.simulator.post_keyed(timer.affinity, timer.interval_ms,
                                      self._fire_timer, timer)

    def cancel_timers(self) -> None:
        """Stop every recurring timer (ends a live-membership run)."""
        for timer in self.timers:
            timer.cancelled = True
        self.timers.clear()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message, *, context: Optional[ExchangeContext] = None,
             copies: int = 1, latency_ms: Optional[float] = None) -> None:
        """Account ``message`` and schedule its delivery.

        ``copies`` charges the message that many times (a query hit
        travelling N hops back along the reverse path costs N messages)
        while still scheduling a single delivery event.  ``latency_ms``
        overrides the link latency — reverse-path replies pass the
        accumulated forward-path latency here so the round trip costs
        the same virtual time in both directions, and download
        responses pass link latency plus transmission time.
        """
        # ``_value_`` reads the member's slot directly, skipping the
        # DynamicClassAttribute descriptor behind ``.value`` — this line
        # runs once per message.
        size = message.size_bytes
        self.stats.record(message.type._value_, size, copies)
        if context is not None:
            context.messages_sent += copies
            context.bytes_sent += copies * size
            context.pending += 1
        delay = latency_ms if latency_ms is not None else self._link_latency(
            message.sender, message.recipient)
        if self.faults is not None:
            decision = self.faults.decide(message.sender, message.recipient,
                                          self.simulator.now)
            if decision.drop:
                # The delivery is lost, but the exchange's reference
                # count must still fall at the original arrival time —
                # a drop event rides the queue in the delivery's place
                # (and routes to the recipient's shard exactly like it).
                self.stats.record_drop(partition=decision.partitioned)
                self.simulator.post(delay, self._drop, message, context)
                return
            if decision.duplicate:
                self.stats.record_duplicate()
                if context is not None:
                    context.pending += 1
                self.simulator.post(delay + decision.duplicate_lag_ms,
                                    self._deliver, message, context)
            delay += decision.extra_delay_ms
        self.simulator.post(delay, self._deliver, message, context)

    def _drop(self, message: Message, context: Optional[ExchangeContext]) -> None:
        """A faulted delivery's arrival-time bookkeeping (no dispatch)."""
        if context is not None:
            context.pending -= 1
            if context.pending <= 0 and not context.done:
                self._complete(context)

    def release(self, context: ExchangeContext) -> None:
        """Drop one externally-held pending token (reliable envelopes and
        download watchdogs park a token on the context so it cannot
        complete while a retransmission or failover may still extend it)."""
        context.pending -= 1
        if context.pending <= 0 and not context.done:
            self._complete(context)

    def finish_if_idle(self, context: ExchangeContext) -> None:
        """Complete an exchange that sent no messages (purely local answer)."""
        if context.pending == 0 and not context.done:
            self._complete(context)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, message: Message, context: Optional[ExchangeContext]) -> None:
        try:
            recipient = message.recipient
            peer = self.peers.get(recipient)
            if (peer is not None and peer.online) or recipient in self.virtual_nodes:
                handler = self._handlers.get(message.type._value_)
                if handler is not None:
                    handler(peer, message, context)
                if message.ack_to:
                    # Reliable envelope: acknowledge on (handled) arrival.
                    # A recipient that was offline sends nothing, so the
                    # sender's retry timer fires — exactly the semantics
                    # a lost delivery has.
                    self.send(ack_message(recipient, message.ack_to,
                                          message_id=message.message_id),
                              context=context)
        finally:
            if context is not None:
                context.pending -= 1
                if context.pending <= 0 and not context.done:
                    self._complete(context)

    def _complete(self, context: ExchangeContext) -> None:
        context.done = True
        context.completed_at = self.simulator.now
        if context.watcher is not None:
            context.watcher(context)

    def sync_context(self, context: ExchangeContext) -> None:
        """Hook for process-parallel workers (see ``engine/parallel.py``).

        Called at the top of ``finish_search`` / ``finish_retrieve``: a
        parallel worker rendezvouses here to canonicalize the context's
        counters and payloads across the fleet.  Serial execution
        already holds the whole exchange, so this is a no-op."""

    def note_document_completed(self, peer: "Peer", context: RetrieveContext,
                                stored: "StoredObject") -> None:
        """Hook for process-parallel workers (see ``engine/parallel.py``).

        Called when a download's document finishes arriving: a parallel
        worker queues a replication op so every replica's repository and
        provider registry see the new copy.  Serial execution has one
        repository, so this is a no-op."""

    def note_result_claims(self, context: ExchangeContext,
                           identities: "tuple[tuple[str, str], ...]") -> None:
        """Hook for process-parallel workers (see ``engine/parallel.py``).

        Called when a caching-mode answer path registered
        ``(provider, resource)`` identities in the context's promised-
        result set: a parallel worker queues a replication op so every
        replica's registry filters the same claims.  Serial execution
        has one registry, so this is a no-op."""

    def mark_starved(self, contexts: list[ExchangeContext]) -> int:
        """Complete every unfinished context at the current virtual time.

        Called when the event queue drained while exchanges still had
        messages outstanding: their deliveries are lost and will never
        decrement ``pending``, so without this they would keep a
        ``completed_at`` of ``0.0`` and report a bogus clamped latency.
        Returns how many contexts were starved.
        """
        starved = 0
        for context in contexts:
            if not context.done:
                context.starved = True
                self._complete(context)
                starved += 1
        return starved

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_until_complete(self, contexts: list[ExchangeContext], *,
                           max_events: int = 5_000_000) -> int:
        """Process events until every context is done.

        Other events on the shared queue (churn, other exchanges) are
        processed as their times come up — that interleaving is the
        point.  Events scheduled after the last context completes stay
        queued.  If the queue drains while contexts are still pending,
        they are marked ``starved`` and completed at the drain time.
        """
        processed = 0
        drained = False
        while any(not context.done for context in contexts):
            if not self.simulator.step():
                self.mark_starved(contexts)
                drained = True
                break
            processed += 1
            if processed > max_events:
                raise RuntimeError(f"kernel exceeded {max_events} events without quiescing")
        if not drained and contexts:
            # Serial execution exits with the clock already at the last
            # completion; a parallel worker pins its clock to it here so
            # later submissions are stamped identically fleet-wide.
            self.simulator.align_exit_clock(
                max(context.completed_at for context in contexts))
        return processed
