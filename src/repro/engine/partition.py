"""Deterministic partitioning of a peer population into shards.

The sharded kernel (:mod:`repro.engine.sharded`) needs a stable mapping
from node ids to shards.  Two assignment strategies are provided:

* :func:`hash_assignment` — a stateless crc32 hash of the node id.  It
  needs no topology, assigns virtual nodes (the centralized index
  server) a home shard the same way, and is what the sharded simulator
  falls back to for ids outside its explicit assignment table.
* :func:`topology_assignment` — a balanced, locality-aware partition:
  each shard is grown by breadth-first search from the smallest
  unassigned peer id until it reaches its capacity share, so neighbour
  links tend to stay shard-local and cross-shard traffic (the part that
  pays the synchronization barrier) is minimized.

Both are pure functions of their inputs — no randomness, no dependence
on ``PYTHONHASHSEED`` — because the cross-shard determinism contract
requires the partition itself to be reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable
from zlib import crc32

from repro.network.topology import Topology

Assignment = Dict[str, int]


def shard_of(node_id: str, shards: int) -> int:
    """Stable home shard of ``node_id`` under a hash partition.

    crc32 rather than ``hash()``: the builtin string hash is salted per
    process (``PYTHONHASHSEED``), which would make the partition — and
    therefore the event interleaving — unreproducible across runs.
    """
    if shards <= 1:
        return 0
    return crc32(node_id.encode("utf-8")) % shards


def hash_assignment(node_ids: Iterable[str], shards: int) -> Assignment:
    """Assign every id its crc32 home shard."""
    return {node_id: shard_of(node_id, shards) for node_id in node_ids}


def topology_assignment(topology: Topology, shards: int) -> Assignment:
    """Balanced BFS partition of ``topology`` into ``shards`` parts.

    Shards are grown one at a time: seed with the smallest unassigned
    peer id, expand breadth-first over sorted neighbour lists until the
    shard holds its capacity share (⌈peers / shards⌉), then start the
    next shard.  Peers left over (disconnected components, capacity
    spill) go to the lightest shard, lowest index winning ties.  The
    whole procedure is deterministic.
    """
    ids = sorted(topology.adjacency)
    if shards <= 1 or len(ids) <= 1:
        return {peer_id: 0 for peer_id in ids}
    capacity = -(-len(ids) // shards)  # ceil division
    assignment: Assignment = {}
    counts = [0] * shards
    unassigned = set(ids)
    for shard in range(shards):
        if not unassigned:
            break
        frontier: deque[str] = deque([min(unassigned)])
        while frontier and counts[shard] < capacity:
            node = frontier.popleft()
            if node not in unassigned:
                continue
            unassigned.discard(node)
            assignment[node] = shard
            counts[shard] += 1
            for neighbor in sorted(topology.neighbors(node)):
                if neighbor in unassigned:
                    frontier.append(neighbor)
    for node in sorted(unassigned):
        shard = min(range(shards), key=lambda index: (counts[index], index))
        assignment[node] = shard
        counts[shard] += 1
    return assignment


def cross_shard_edges(topology: Topology, assignment: Assignment) -> int:
    """Number of overlay edges whose endpoints live on different shards."""
    return sum(1 for a, b in topology.edges()
               if assignment.get(a, 0) != assignment.get(b, 0))


def shard_sizes(assignment: Assignment, shards: int) -> list[int]:
    """Peer count per shard (observability for tests and benchmarks)."""
    sizes = [0] * shards
    for shard in assignment.values():
        sizes[shard] += 1
    return sizes
