"""U-P2P reproduction package.

This package reproduces the system described in *U-P2P: A Peer-to-Peer
System for Description and Discovery of Resource-Sharing Communities*
(Mukherjee, Esfandiari, Arthorne — ICDCS 2002).

Sub-packages
------------
``repro.xmlkit``
    Hand-written XML substrate: tokenizer, parser, DOM, serializer and a
    minimal XPath engine.
``repro.schema``
    XML Schema subset: object model, XSD parser, instance validator,
    built-in datatypes and a programmatic schema builder.
``repro.xslt``
    XSLT subset: stylesheet parser and transformation engine with HTML
    output, used to generate the Create / Search / View functions.
``repro.storage``
    Local XML object store with an inverted attribute index and a
    CMIP-like structured query language (the Magenta substitute).
``repro.network``
    Discrete-event peer-to-peer network simulator with centralized
    (Napster-style), flooding (Gnutella-style) and super-peer
    (FastTrack-style) protocol adapters.
``repro.core``
    The U-P2P contribution itself: resources, communities, the root
    community bootstrap, the servent with its Create / Search / View
    functions and the generated application facade.
``repro.communities``
    Bundled example communities (MP3, molecules, species, genes, design
    patterns) and synthetic corpus generators.
``repro.workloads``
    Workload generators used by the benchmark harness.

The most frequently used classes are re-exported lazily at the package
root (``repro.Servent``, ``repro.Community`` …) so that importing a leaf
substrate does not drag in the whole system.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

# name -> (module, attribute) for lazy re-export.
_EXPORTS = {
    "Servent": ("repro.core.servent", "Servent"),
    "Community": ("repro.core.community", "Community"),
    "CommunityDescriptor": ("repro.core.community", "CommunityDescriptor"),
    "Resource": ("repro.core.resource", "Resource"),
    "Application": ("repro.core.application", "Application"),
    "PeerNetwork": ("repro.network.base", "PeerNetwork"),
    "NetworkSimulator": ("repro.network.simulator", "NetworkSimulator"),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str) -> Any:
    """Lazily import the public façade classes on first access."""
    if name in _EXPORTS:
        module_name, attribute = _EXPORTS[name]
        module = importlib.import_module(module_name)
        value = getattr(module, attribute)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
